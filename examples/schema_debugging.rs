//! Schema debugging: detect an unsatisfiable class, extract a *minimal*
//! unsatisfiable constraint set (the Section 5 future-work feature), repair
//! the schema, and confirm the fix — the workflow the paper envisions for
//! CASE tools.
//!
//! Run with `cargo run --example schema_debugging`.

use cr_core::expansion::ExpansionConfig;
use cr_core::explain::minimal_unsat_core;
use cr_core::sat::Reasoner;

/// A project-staffing schema with a subtle bug: contractors are employees,
/// employees need at least two assignments, but contractor assignments are
/// capped at one *and* every assignment consumes a unique badge, of which
/// each contractor holds exactly one. The interaction — not any single
/// constraint — kills the Contractor class.
const BROKEN: &str = r#"
    class Employee;
    class Contractor isa Employee;
    class Project;

    relationship AssignedTo (worker: Employee, proj: Project);
    card Employee in AssignedTo.worker: 2..*;
    card Contractor in AssignedTo.worker: 0..1;
    card Project in AssignedTo.proj: 1..*;
"#;

fn main() {
    let schema = cr_lang::parse_schema(BROKEN).unwrap();
    let reasoner = Reasoner::new(&schema).unwrap();

    println!("== checking the draft schema ==");
    let unsat = reasoner.unsatisfiable_classes();
    for c in schema.classes() {
        println!(
            "  {:<11} {}",
            schema.class_name(c),
            if reasoner.is_class_satisfiable(c) {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            }
        );
    }
    assert!(!unsat.is_empty(), "the draft is intentionally broken");

    let contractor = schema.class_by_name("Contractor").unwrap();
    let config = ExpansionConfig::default();
    println!("\n== minimal unsatisfiable core for Contractor ==");
    let core = minimal_unsat_core(&schema, contractor, &config)
        .unwrap()
        .expect("Contractor is unsatisfiable");
    for c in &core {
        println!("  {}", c.describe(&schema));
    }
    println!("  (removing any single one restores satisfiability)");

    // The designer decides the refinement was wrong: contractors may take
    // two assignments after all.
    println!("\n== applying the fix: Contractor window (0,1) -> (0,2) ==");
    let fixed_src = BROKEN.replace(
        "card Contractor in AssignedTo.worker: 0..1;",
        "card Contractor in AssignedTo.worker: 0..2;",
    );
    let fixed = cr_lang::parse_schema(&fixed_src).unwrap();
    let reasoner = Reasoner::new(&fixed).unwrap();
    for c in fixed.classes() {
        println!(
            "  {:<11} {}",
            fixed.class_name(c),
            if reasoner.is_class_satisfiable(c) {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            }
        );
    }
    assert!(reasoner.is_schema_fully_satisfiable());
    println!("\nschema repaired — every class can now be populated");
}
