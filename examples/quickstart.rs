//! Quickstart: build the paper's meeting schema programmatically, check
//! satisfiability, ask implication questions, and materialize a verified
//! finite database state.
//!
//! Run with `cargo run --example quickstart`.

use cr_core::expansion::ExpansionConfig;
use cr_core::implication::{implied_maxc, ImpliedBound};
use cr_core::model::ModelConfig;
use cr_core::sat::Reasoner;
use cr_core::schema::{Card, SchemaBuilder};

fn main() {
    // --- declare the schema (Figures 2/3 of the paper) -------------------
    let mut b = SchemaBuilder::new();
    let speaker = b.class("Speaker");
    let discussant = b.class("Discussant");
    let talk = b.class("Talk");
    b.isa(discussant, speaker); // every discussant is a speaker

    let holds = b
        .relationship("Holds", [("U1", speaker), ("U2", talk)])
        .unwrap();
    let participates = b
        .relationship("Participates", [("U3", discussant), ("U4", talk)])
        .unwrap();

    // Speakers hold at least one talk; discussants (being busy) at most 2.
    b.card(speaker, b.role(holds, 0), Card::at_least(1))
        .unwrap();
    b.card(discussant, b.role(holds, 0), Card::at_most(2))
        .unwrap();
    // Each talk has exactly one holder and at least one discussant.
    b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
    b.card(talk, b.role(participates, 1), Card::at_least(1))
        .unwrap();
    // Each discussant participates in exactly one talk.
    b.card(discussant, b.role(participates, 0), Card::exactly(1))
        .unwrap();
    let schema = b.build().unwrap();

    // --- reason -----------------------------------------------------------
    let reasoner = Reasoner::new(&schema).unwrap();
    println!("class satisfiability:");
    for c in schema.classes() {
        println!(
            "  {:<12} {}",
            schema.class_name(c),
            if reasoner.is_class_satisfiable(c) {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            }
        );
    }

    // A non-obvious consequence (the paper's Figure 7): the constraints
    // force every speaker to also be a discussant.
    println!(
        "\nimplied: Speaker ≼ Discussant? {}",
        reasoner.implies_isa(speaker, discussant)
    );

    // And although Discussant declares (0,2) on Holds.U1, the tightest
    // implied maximum is 1.
    let bound = implied_maxc(
        &schema,
        speaker,
        schema.role_by_name(holds, "U1").unwrap(),
        &ExpansionConfig::default(),
        1 << 16,
    )
    .unwrap();
    assert_eq!(bound, ImpliedBound::Bound(1));
    println!("tightest implied maxc(Speaker, Holds, U1) = 1 (declared: ∞)");

    // --- materialize a database state -------------------------------------
    let model = reasoner
        .construct_model(&ModelConfig::default())
        .unwrap()
        .expect("schema is satisfiable");
    println!(
        "\nconstructed + verified a model with {} individuals:",
        model.domain_size()
    );
    for c in schema.classes() {
        println!(
            "  |{}| = {}",
            schema.class_name(c),
            model.class_extension(c).len()
        );
    }
    assert!(model.is_model_of(&schema));
}
