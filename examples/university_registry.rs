//! Conceptual database design for a university registry — the CASE-tool
//! scenario that motivates the paper's introduction: an ER-style schema with
//! deep ISA hierarchies and cardinality refinements, where the *interaction*
//! between the two produces consequences no per-constraint check finds.
//!
//! Run with `cargo run --example university_registry`.

use cr_core::expansion::ExpansionConfig;
use cr_core::implication::{implied_maxc, implied_minc};
use cr_core::model::ModelConfig;
use cr_core::sat::Reasoner;

const SCHEMA: &str = r#"
    // People.
    class Person;
    class Student isa Person;
    class Employee isa Person;
    class TA isa Student, Employee;      // teaching assistants are both

    // Courses.
    class Course;
    class Seminar isa Course;

    // Every student enrolls in 1 to 5 courses; TAs, short on time,
    // refine that to at most 2.
    relationship Enrolls (who: Student, what: Course);
    card Student in Enrolls.who: 1..5;
    card TA in Enrolls.who: 0..2;
    // Every course must have at least 3 enrolled students to run.
    card Course in Enrolls.what: 3..*;

    // Teaching: employees teach between 0 and 3 courses; every course is
    // taught by exactly one employee; every seminar's teacher also refines
    // nothing special here, but TAs must teach exactly 1 course.
    relationship Teaches (teacher: Employee, taught: Course);
    card Employee in Teaches.teacher: 0..3;
    card TA in Teaches.teacher: 1..1;
    card Course in Teaches.taught: 1..1;

    // Mentoring: each student has exactly one mentor, employees mentor at
    // most 4 students.
    relationship Mentors (mentor: Employee, mentee: Student);
    card Student in Mentors.mentee: 1..1;
    card Employee in Mentors.mentor: 0..4;
"#;

fn main() {
    let schema = cr_lang::parse_schema(SCHEMA).unwrap();
    let reasoner = Reasoner::new(&schema).unwrap();

    println!("== satisfiability ==");
    for c in schema.classes() {
        println!(
            "  {:<10} {}",
            schema.class_name(c),
            if reasoner.is_class_satisfiable(c) {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            }
        );
    }
    assert!(reasoner.is_schema_fully_satisfiable());

    // What does the design actually entail for TAs?
    let ta = schema.class_by_name("TA").unwrap();
    let enrolls = schema.rel_by_name("Enrolls").unwrap();
    let who = schema.role_by_name(enrolls, "who").unwrap();
    let config = ExpansionConfig::default();
    println!("\n== tightest implied windows for TA in Enrolls.who ==");
    let min = implied_minc(&schema, ta, who, &config).unwrap();
    let max = implied_maxc(&schema, ta, who, &config, 1 << 12).unwrap();
    // Declared (0,2) for TA, but TAs are Students, so the inherited
    // minimum 1 applies: the tightest window is (1, 2).
    println!("  declared: (0,2) on TA, (1,5) on Student");
    println!("  implied:  min = {min:?}, max = {max:?}");

    // Implied ISA pairs: is anything forced to coincide?
    println!("\n== implied (undeclared) ISA ==");
    let pairs = reasoner.implied_isa_pairs();
    if pairs.is_empty() {
        println!("  none — the hierarchy is not collapsed by the cardinalities");
    }
    for (sub, sup) in pairs {
        println!("  {} ≼ {}", schema.class_name(sub), schema.class_name(sup));
    }

    // Sizing: the smallest populations a consistent registry needs.
    let model = reasoner
        .construct_model(&ModelConfig::default())
        .unwrap()
        .expect("satisfiable");
    println!("\n== a verified sample state ==");
    println!("  domain: {} individuals", model.domain_size());
    for c in schema.classes() {
        println!(
            "  |{}| = {}",
            schema.class_name(c),
            model.class_extension(c).len()
        );
    }
    for r in schema.rels() {
        println!(
            "  |{}| = {} tuples",
            schema.rel_name(r),
            model.rel_extension(r).len()
        );
    }
    assert!(model.is_model_of(&schema));
}
