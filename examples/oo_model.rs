//! Object-oriented data model reasoning — the paper's Section 1 remark that
//! "by interpreting relationships as attributes, we directly derive a method
//! applicable to object oriented data models".
//!
//! Each OO attribute `A: T (multiplicity lo..hi)` on class `C` becomes a
//! binary relationship `C_A(owner: C, value: T)` with `card C in
//! C_A.owner: lo..hi` — attribute refinement in a subclass is cardinality
//! refinement, and "is this subtype hierarchy coherent?" becomes class
//! satisfiability. The Section 5 extensions (disjointness, covering) model
//! sealed hierarchies.
//!
//! Run with `cargo run --example oo_model`.

use cr_core::model::ModelConfig;
use cr_core::sat::Reasoner;

const CLASS_DIAGRAM: &str = r#"
    // A sealed shape hierarchy: every Shape is a Circle or a Polygon,
    // never both.
    class Shape;
    class Circle isa Shape;
    class Polygon isa Shape;
    class Triangle isa Polygon;
    disjoint Circle, Polygon;
    cover Shape by Circle | Polygon;

    class Point;

    // Attribute: every shape stores 1..* control points; circles store
    // exactly 1 (the center), triangles exactly 3.
    relationship ControlPoints (owner: Shape, value: Point);
    card Shape in ControlPoints.owner: 1..*;
    card Circle in ControlPoints.owner: 1..1;
    card Triangle in ControlPoints.owner: 3..3;
"#;

/// A broken refinement: a subclass widening an attribute multiplicity its
/// sealed siblings cannot absorb.
const BROKEN_DIAGRAM: &str = r#"
    class Shape;
    class Circle isa Shape;
    class Polygon isa Shape;
    disjoint Circle, Polygon;
    cover Shape by Circle | Polygon;

    class Point;
    relationship ControlPoints (owner: Shape, value: Point);
    // The base class promises exactly one control point...
    card Shape in ControlPoints.owner: 1..1;
    // ...but Polygon demands at least three: Polygon can never be
    // instantiated.
    card Polygon in ControlPoints.owner: 3..*;
"#;

fn main() {
    println!("== sealed shape hierarchy (coherent) ==");
    let schema = cr_lang::parse_schema(CLASS_DIAGRAM).unwrap();
    let reasoner = Reasoner::new(&schema).unwrap();
    for c in schema.classes() {
        println!(
            "  {:<9} {}",
            schema.class_name(c),
            if reasoner.is_class_satisfiable(c) {
                "instantiable"
            } else {
                "NOT instantiable"
            }
        );
    }
    assert!(reasoner.is_schema_fully_satisfiable());

    // The sealed (disjoint + covering) declaration also shrinks the
    // reasoning problem — the paper's Section 5 efficiency remark.
    println!(
        "  expansion: {} consistent compound classes (of {} subsets)",
        reasoner.expansion().compound_classes().len(),
        reasoner.expansion().total_compound_classes()
    );

    // Instantiate the whole hierarchy at once.
    let model = reasoner
        .construct_model(&ModelConfig::default())
        .unwrap()
        .expect("coherent hierarchy");
    assert!(model.is_model_of(&schema));
    println!(
        "  sample object graph: {} objects, {} attribute slots",
        model.domain_size(),
        model
            .rel_extension(schema.rel_by_name("ControlPoints").unwrap())
            .len()
    );

    println!("\n== broken refinement (Polygon widens a sealed promise) ==");
    let broken = cr_lang::parse_schema(BROKEN_DIAGRAM).unwrap();
    let reasoner = Reasoner::new(&broken).unwrap();
    for c in broken.classes() {
        println!(
            "  {:<9} {}",
            broken.class_name(c),
            if reasoner.is_class_satisfiable(c) {
                "instantiable"
            } else {
                "NOT instantiable"
            }
        );
    }
    let polygon = broken.class_by_name("Polygon").unwrap();
    assert!(!reasoner.is_class_satisfiable(polygon));
    println!("  the subtype checker caught the incoherent refinement");
}
