//! Property tests: field laws and agreement with exact fraction arithmetic
//! computed independently over i128.

use cr_rational::Rational;
use proptest::prelude::*;

fn arb_rational() -> impl Strategy<Value = Rational> {
    (-1_000_000i64..1_000_000, 1i64..1_000_000).prop_map(|(n, d)| Rational::new(n, d))
}

fn nonzero_rational() -> impl Strategy<Value = Rational> {
    arb_rational().prop_filter("nonzero", |r| !r.is_zero())
}

proptest! {
    #[test]
    fn field_laws(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + Rational::zero(), a.clone());
        prop_assert_eq!(&a * Rational::one(), a.clone());
        prop_assert_eq!(&a + (-&a), Rational::zero());
    }

    #[test]
    fn mul_inverse(a in nonzero_rational()) {
        prop_assert_eq!(&a * a.recip(), Rational::one());
        prop_assert_eq!(&a / &a, Rational::one());
    }

    #[test]
    fn normalization_invariants(a in arb_rational(), b in arb_rational()) {
        for v in [&a + &b, &a - &b, &a * &b] {
            prop_assert!(v.denom().is_positive());
            prop_assert!(v.numer().gcd(v.denom()).is_one() || v.is_zero());
        }
    }

    #[test]
    fn cmp_matches_cross_multiplication(an in -1000i128..1000, ad in 1i128..1000,
                                        bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an as i64, ad as i64);
        let b = Rational::new(bn as i64, bd as i64);
        prop_assert_eq!(a.cmp(&b), (an * bd).cmp(&(bn * ad)));
    }

    #[test]
    fn floor_ceil_bracket(a in arb_rational()) {
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn display_parse_roundtrip(a in arb_rational()) {
        prop_assert_eq!(a.to_string().parse::<Rational>().unwrap(), a);
    }

    #[test]
    fn to_f64_close(n in -10_000i64..10_000, d in 1i64..10_000) {
        let r = Rational::new(n, d);
        let expected = n as f64 / d as f64;
        prop_assert!((r.to_f64() - expected).abs() <= 1e-9 * expected.abs().max(1.0));
    }
}
