//! The normalized [`Rational`] type.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use cr_bigint::BigInt;

/// An exact rational number.
///
/// Invariants: `den > 0` and `gcd(|num|, den) == 1`; zero is `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The value zero.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Builds `num/den` from primitive integers; panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        Rational::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Builds `num/den` from big integers, normalizing sign and common
    /// factors; panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational {
                num: &num / &g,
                den: &den / &g,
            }
        }
    }

    /// Builds an integer rational.
    pub fn from_int(v: impl Into<BigInt>) -> Self {
        Rational {
            num: v.into(),
            den: BigInt::one(),
        }
    }

    /// The (sign-carrying) numerator.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (strictly positive) denominator.
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Whether this is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// The multiplicative inverse; panics if zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        if self.num.is_negative() {
            Rational {
                num: -&self.den,
                den: -&self.num,
            }
        } else {
            Rational {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Floor: the greatest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling: the least integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Returns the integer value if this is an integer.
    pub fn to_integer(&self) -> Option<&BigInt> {
        self.is_integer().then_some(&self.num)
    }

    /// Approximate `f64` value (for reporting only — never used in
    /// decisions).
    pub fn to_f64(&self) -> f64 {
        // Shift both operands down to <= 62 bits so they fit a u64 exactly,
        // then correct with a power-of-two factor:
        // num/den ~= (num >> a) / (den >> b) * 2^(a-b).
        let nb = self.num.bit_len() as i64;
        let db = self.den.bit_len() as i64;
        let a = (nb - 62).max(0) as u64;
        let b = (db - 62).max(0) as u64;
        let n = self
            .num
            .magnitude()
            .shr_bits(a)
            .to_u64()
            .unwrap_or(u64::MAX) as f64;
        let d = self
            .den
            .magnitude()
            .shr_bits(b)
            .to_u64()
            .unwrap_or(u64::MAX) as f64;
        let base = n / d * 2f64.powi((a as i64 - b as i64) as i32);
        if self.num.is_negative() {
            -base
        } else {
            base
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational::from_int(v)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

/// Error from parsing a [`Rational`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(pub(crate) String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"` or `"a/b"` in decimal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mk_err = || ParseRationalError(s.to_string());
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|_| mk_err())?;
                Ok(Rational::from_int(n))
            }
            Some((ns, ds)) => {
                let n: BigInt = ns.parse().map_err(|_| mk_err())?;
                let d: BigInt = ds.parse().map_err(|_| mk_err())?;
                if d.is_zero() {
                    return Err(mk_err());
                }
                Ok(Rational::from_bigints(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::zero());
        assert!(Rational::new(-1, 2).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(-1, 2) < Rational::zero());
        assert_eq!(Rational::new(3, 9), Rational::new(1, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), BigInt::from(3));
        assert_eq!(Rational::new(7, 2).ceil(), BigInt::from(4));
        assert_eq!(Rational::new(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(Rational::new(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(Rational::new(6, 2).floor(), BigInt::from(3));
        assert_eq!(Rational::new(6, 2).ceil(), BigInt::from(3));
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
        assert!(Rational::new(-2, 3).recip().denom().is_positive());
    }

    #[test]
    fn parse() {
        assert_eq!("3/6".parse::<Rational>().unwrap(), Rational::new(1, 2));
        assert_eq!("-3/6".parse::<Rational>().unwrap(), Rational::new(-1, 2));
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::from_int(5));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn to_f64_rough() {
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((Rational::new(-7, 2).to_f64() + 3.5).abs() < 1e-12);
        assert_eq!(Rational::zero().to_f64(), 0.0);
    }

    #[test]
    fn to_integer() {
        assert_eq!(Rational::new(6, 3).to_integer(), Some(&BigInt::from(2)));
        assert_eq!(Rational::new(5, 3).to_integer(), None);
    }
}
