//! Arithmetic operators for [`Rational`].

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::ratio::Rational;

fn add_impl(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(
        a.numer() * b.denom() + b.numer() * a.denom(),
        a.denom() * b.denom(),
    )
}

fn sub_impl(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(
        a.numer() * b.denom() - b.numer() * a.denom(),
        a.denom() * b.denom(),
    )
}

fn mul_impl(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(a.numer() * b.numer(), a.denom() * b.denom())
}

fn div_impl(a: &Rational, b: &Rational) -> Rational {
    assert!(!b.is_zero(), "rational division by zero");
    Rational::from_bigints(a.numer() * b.denom(), a.denom() * b.numer())
}

macro_rules! binop {
    ($trait:ident, $method:ident, $f:ident) => {
        impl $trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                $f(self, rhs)
            }
        }
        impl $trait<Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                $f(&self, &rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                $f(&self, rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                $f(self, &rhs)
            }
        }
    };
}

binop!(Add, add, add_impl);
binop!(Sub, sub, sub_impl);
binop!(Mul, mul, mul_impl);
binop!(Div, div, div_impl);

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::from_bigints(-self.numer().clone(), self.denom().clone())
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::from_bigints(-self.numer(), self.denom().clone())
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = add_impl(self, rhs);
    }
}

impl AddAssign<Rational> for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = add_impl(self, &rhs);
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = sub_impl(self, rhs);
    }
}

impl SubAssign<Rational> for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = sub_impl(self, &rhs);
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = mul_impl(self, rhs);
    }
}

impl MulAssign<Rational> for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = mul_impl(self, &rhs);
    }
}

impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        *self = div_impl(self, rhs);
    }
}

impl DivAssign<Rational> for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = div_impl(self, &rhs);
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn add_sub() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 2), Rational::zero());
        assert_eq!(r(1, 6) + r(1, 6), r(1, 3));
        assert_eq!(r(-1, 2) + r(1, 3), r(-1, 6));
    }

    #[test]
    fn mul_div() {
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(r(-2, 3) * r(3, 2), r(-1, 1));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = r(1, 2) / Rational::zero();
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 3);
        x -= r(1, 6);
        x *= r(3, 2);
        x /= r(1, 2);
        assert_eq!(x, r(2, 1));
    }

    #[test]
    fn neg_and_sum() {
        assert_eq!(-r(1, 2), r(-1, 2));
        let total: Rational = (1..=4).map(|d| r(1, d)).sum();
        assert_eq!(total, r(25, 12));
    }
}
