//! Exact rational arithmetic.
//!
//! [`Rational`] is a normalized fraction of [`cr_bigint::BigInt`]s: the
//! denominator is always strictly positive and `gcd(num, den) == 1`. All
//! operations are exact; this is the scalar type of the exact simplex in
//! `cr-linear`, where any rounding would make the Calvanese–Lenzerini
//! decision procedure unsound.
//!
//! # Example
//!
//! ```
//! use cr_rational::Rational;
//!
//! let a = Rational::new(1, 3);
//! let b = Rational::new(1, 6);
//! assert_eq!(&a + &b, Rational::new(1, 2));
//! assert_eq!((&a - &b).to_string(), "1/6");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt;
mod ops;
mod ratio;

pub use ratio::{ParseRationalError, Rational};
