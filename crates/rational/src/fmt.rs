//! Formatting for [`Rational`]: integers print bare, fractions as `a/b`.

use std::fmt;

use crate::ratio::Rational;

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.numer())
        } else {
            write!(f, "{}/{}", self.numer(), self.denom())
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Rational::new(1, 2).to_string(), "1/2");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
        assert_eq!(Rational::new(4, 2).to_string(), "2");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn roundtrip_through_display() {
        for (n, d) in [(3, 7), (-3, 7), (22, 11), (0, 5)] {
            let r = Rational::new(n, d);
            assert_eq!(r.to_string().parse::<Rational>().unwrap(), r);
        }
    }
}
