//! Exact linear constraint systems over the rationals.
//!
//! This crate is the reduction target of the Calvanese–Lenzerini decision
//! procedure (`cr-core`): the cardinality constraints of a CR schema become a
//! *system of linear homogeneous disequations* (Section 3.2 of the paper),
//! and satisfiability questions become feasibility questions. Two engines are
//! provided:
//!
//! * [`solve`] / [`optimize`] — an exact two-phase primal **simplex** over
//!   [`cr_rational::Rational`] with Bland's anti-cycling rule. This is the
//!   production engine.
//! * [`solve_fm`] — **Fourier–Motzkin** elimination. Doubly exponential, but
//!   handles strict inequalities natively and is implemented independently,
//!   which makes it a cross-validation oracle and an ablation baseline
//!   (experiment E7).
//!
//! Strict inequalities in [`solve`] are decided exactly with the standard
//! interior-point trick: add a slack variable `t ∈ [0, 1]`, relax every
//! strict row by `t`, and maximize `t`; the original system is feasible iff
//! the optimum is positive.
//!
//! # Example
//!
//! ```
//! use cr_linear::{Cmp, LinExpr, LinSystem, VarKind, solve, Feasibility};
//! use cr_rational::Rational;
//!
//! let mut sys = LinSystem::new();
//! let x = sys.add_var(VarKind::Nonneg);
//! let y = sys.add_var(VarKind::Nonneg);
//! // x + y >= 3, x - y = 1
//! sys.push(LinExpr::from_terms([(x, 1), (y, 1)]), Cmp::Ge, Rational::from_int(3));
//! sys.push(LinExpr::from_terms([(x, 1), (y, -1)]), Cmp::Eq, Rational::from_int(1));
//! match solve(&sys) {
//!     Feasibility::Feasible(sol) => {
//!         assert_eq!(sol.value(x) - sol.value(y), Rational::from_int(1));
//!     }
//!     Feasibility::Infeasible => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod certificate;
mod error;
mod expr;
mod fm;
mod simplex;
mod solution;
mod system;

pub use budget::{Unlimited, WorkBudget};
pub use certificate::{
    farkas_certificate, farkas_certificate_governed, CertificateError, FarkasCertificate,
};
pub use error::LinearError;
pub use expr::{LinExpr, VarId};
pub use fm::{solve_fm, FmConfig};
pub use simplex::{optimize, optimize_governed, solve, solve_governed, Direction, OptOutcome};
pub use solution::{Feasibility, Solution};
pub use system::{Cmp, Constraint, LinSystem, VarKind};
