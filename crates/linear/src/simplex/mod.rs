//! Conversion of [`LinSystem`]s to standard form and the public solver
//! entry points.

mod tableau;

use cr_rational::Rational;

use crate::budget::{Unlimited, WorkBudget};
use crate::error::LinearError;
use crate::expr::{LinExpr, VarId};
use crate::solution::{Feasibility, Solution};
use crate::system::{Cmp, LinSystem, VarKind};
use tableau::{PivotOutcome, Tableau};

/// Optimization direction for [`optimize`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Outcome of [`optimize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptOutcome {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// An optimum exists; attached are the optimal value and a witness.
    Optimal {
        /// Optimal objective value.
        value: Rational,
        /// An assignment attaining it.
        solution: Solution,
    },
}

/// How user variables map onto standard-form columns.
struct StandardForm {
    /// `col_of[v] = (positive column, optional negative column)`; free
    /// variables get both (`x = pos - neg`), nonnegative variables only the
    /// first.
    col_of: Vec<(usize, Option<usize>)>,
    /// Column of the strictness slack `t`, if strict rows were present.
    t_col: Option<usize>,
    tableau: Tableau,
    ncols: usize,
}

/// Builds the standard-form tableau for `sys`. When `with_t` is set, a
/// variable `t ∈ [0, 1]` is introduced, strict rows are relaxed by `t`
/// (`< rhs` becomes `+ t <= rhs`, `> rhs` becomes `- t >= rhs`), and the
/// caller is expected to maximize `t`.
fn build_standard_form(sys: &LinSystem, with_t: bool) -> StandardForm {
    // --- structural columns ---
    let mut next_col = 0usize;
    let mut col_of = Vec::with_capacity(sys.num_vars());
    for i in 0..sys.num_vars() {
        match sys.var_kind(VarId(i as u32)) {
            VarKind::Nonneg => {
                col_of.push((next_col, None));
                next_col += 1;
            }
            VarKind::Free => {
                col_of.push((next_col, Some(next_col + 1)));
                next_col += 2;
            }
        }
    }
    let t_col = with_t.then(|| {
        let c = next_col;
        next_col += 1;
        c
    });
    let struct_cols = next_col;

    // --- assemble rows over structural columns, tracking op and rhs ---
    struct RawRow {
        coeffs: Vec<Rational>,
        cmp: Cmp, // Le / Ge / Eq only after strict relaxation
        rhs: Rational,
    }
    let mut raw: Vec<RawRow> = Vec::with_capacity(sys.constraints().len() + 1);
    for c in sys.constraints() {
        let mut coeffs = vec![Rational::zero(); struct_cols];
        for (v, coef) in c.expr.iter() {
            let (pos, neg) = col_of[v.index()];
            coeffs[pos] += coef;
            if let Some(neg) = neg {
                coeffs[neg] -= coef;
            }
        }
        let cmp = match c.cmp {
            Cmp::Le => Cmp::Le,
            Cmp::Ge => Cmp::Ge,
            Cmp::Eq => Cmp::Eq,
            Cmp::Lt => {
                let t = t_col.expect("strict row without t variable");
                coeffs[t] += Rational::one();
                Cmp::Le
            }
            Cmp::Gt => {
                let t = t_col.expect("strict row without t variable");
                coeffs[t] -= Rational::one();
                Cmp::Ge
            }
        };
        raw.push(RawRow {
            coeffs,
            cmp,
            rhs: c.rhs.clone(),
        });
    }
    if let Some(t) = t_col {
        // t <= 1 keeps the phase-2 objective bounded.
        let mut coeffs = vec![Rational::zero(); struct_cols];
        coeffs[t] = Rational::one();
        raw.push(RawRow {
            coeffs,
            cmp: Cmp::Le,
            rhs: Rational::one(),
        });
    }

    // --- add slacks, normalize RHS sign, decide basis / artificials ---
    let n_slack = raw
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();
    // Worst case every row needs an artificial.
    let max_cols = struct_cols + n_slack + raw.len();
    let mut rows: Vec<Vec<Rational>> = Vec::with_capacity(raw.len());
    let mut basis: Vec<usize> = Vec::with_capacity(raw.len());
    let mut slack_cursor = struct_cols;
    let mut art_cursor = struct_cols + n_slack;
    for r in &mut raw {
        let mut row = std::mem::take(&mut r.coeffs);
        row.resize(max_cols + 1, Rational::zero());
        let negate = r.rhs.is_negative();
        let mut slack_col = None;
        match r.cmp {
            Cmp::Le => {
                row[slack_cursor] = Rational::one();
                slack_col = Some(slack_cursor);
                slack_cursor += 1;
            }
            Cmp::Ge => {
                row[slack_cursor] = -Rational::one();
                slack_col = Some(slack_cursor);
                slack_cursor += 1;
            }
            Cmp::Eq => {}
            Cmp::Lt | Cmp::Gt => unreachable!("strict rows relaxed above"),
        }
        *row.last_mut().expect("row has rhs cell") = r.rhs.clone();
        if negate {
            for v in row.iter_mut() {
                *v = -v.clone();
            }
        }
        // The slack can seed the basis iff its coefficient ended up +1.
        let slack_basic = slack_col.filter(|&s| row[s] == Rational::one()).is_some();
        if slack_basic {
            basis.push(slack_col.expect("slack column present"));
        } else {
            row[art_cursor] = Rational::one();
            basis.push(art_cursor);
            art_cursor += 1;
        }
        rows.push(row);
    }

    // Trim unused artificial columns.
    let ncols = art_cursor;
    for row in &mut rows {
        let rhs = row[max_cols].clone();
        row.truncate(ncols);
        row.push(rhs);
    }
    let art_start = struct_cols + n_slack;
    StandardForm {
        col_of,
        t_col,
        tableau: Tableau::new(rows, basis, ncols, art_start),
        ncols,
    }
}

impl StandardForm {
    /// Reads user-variable values out of the current basic solution.
    fn extract(&self, sys: &LinSystem) -> Solution {
        let mut values = Vec::with_capacity(sys.num_vars());
        for &(pos, neg) in &self.col_of {
            let mut v = self.tableau.column_value(pos);
            if let Some(neg) = neg {
                v -= self.tableau.column_value(neg);
            }
            values.push(v);
        }
        Solution::new(values)
    }

    /// Expands a user-level objective onto standard-form columns.
    fn expand_objective(&self, obj: &LinExpr) -> Vec<Rational> {
        let mut out = vec![Rational::zero(); self.ncols];
        for (v, c) in obj.iter() {
            let (pos, neg) = self.col_of[v.index()];
            out[pos] += c;
            if let Some(neg) = neg {
                out[neg] -= c;
            }
        }
        out
    }
}

/// Decides feasibility of `sys` exactly, returning a rational witness when
/// feasible. Strict inequalities are fully supported (see the crate docs for
/// the interior-point reduction).
pub fn solve(sys: &LinSystem) -> Feasibility {
    match solve_governed(sys, &Unlimited) {
        Ok(f) => f,
        // An injected fault must not masquerade as an answer; the panic is
        // contained by the chaos harness's catch_unwind.
        Err(e @ LinearError::FaultInjected { .. }) => panic!("{e} in ungoverned solve"),
        Err(_) => unreachable!("the unlimited budget never interrupts"),
    }
}

/// [`solve`] under a caller-supplied [`WorkBudget`]: each simplex pivot
/// charges one unit, and a refused charge aborts the solve with
/// [`LinearError::Interrupted`]. No partial answer is reported — an
/// interrupted feasibility question is unanswered, not infeasible.
pub fn solve_governed(
    sys: &LinSystem,
    budget: &dyn WorkBudget,
) -> Result<Feasibility, LinearError> {
    cr_faults::point!("linear.tableau", |_| Err(LinearError::FaultInjected {
        site: "linear.tableau"
    }));
    if !sys.has_strict() {
        let mut sf = build_standard_form(sys, false);
        budget.note_tableau(sf.tableau.num_rows(), sf.ncols);
        return if sf.tableau.phase_one(budget)? {
            let sol = sf.extract(sys);
            debug_assert_eq!(sys.check(sol.values()), Ok(()));
            Ok(Feasibility::Feasible(sol))
        } else {
            Ok(Feasibility::Infeasible)
        };
    }
    // Strict rows present: maximize the uniform strictness slack t.
    let mut sf = build_standard_form(sys, true);
    budget.note_tableau(sf.tableau.num_rows(), sf.ncols);
    if !sf.tableau.phase_one(budget)? {
        return Ok(Feasibility::Infeasible);
    }
    let t = sf.t_col.expect("strict path always has t");
    let mut objective = vec![Rational::zero(); sf.ncols];
    objective[t] = -Rational::one(); // maximize t == minimize -t
    let outcome = sf.tableau.phase_two(&objective, budget)?;
    debug_assert_eq!(outcome, PivotOutcome::Optimal, "t <= 1 bounds phase 2");
    if sf.tableau.column_value(t).is_positive() {
        let sol = sf.extract(sys);
        debug_assert_eq!(sys.check(sol.values()), Ok(()));
        Ok(Feasibility::Feasible(sol))
    } else {
        Ok(Feasibility::Infeasible)
    }
}

/// Optimizes `objective` over the feasible region of `sys`.
///
/// Strict inequalities are rejected with
/// [`LinearError::StrictInOptimize`]: over an open set the optimum need not
/// be attained.
pub fn optimize(
    sys: &LinSystem,
    objective: &LinExpr,
    direction: Direction,
) -> Result<OptOutcome, LinearError> {
    optimize_governed(sys, objective, direction, &Unlimited)
}

/// [`optimize`] under a caller-supplied [`WorkBudget`] (one unit per pivot;
/// refusal surfaces as [`LinearError::Interrupted`]).
pub fn optimize_governed(
    sys: &LinSystem,
    objective: &LinExpr,
    direction: Direction,
    budget: &dyn WorkBudget,
) -> Result<OptOutcome, LinearError> {
    if sys.has_strict() {
        return Err(LinearError::StrictInOptimize);
    }
    cr_faults::point!("linear.tableau", |_| Err(LinearError::FaultInjected {
        site: "linear.tableau"
    }));
    let mut sf = build_standard_form(sys, false);
    budget.note_tableau(sf.tableau.num_rows(), sf.ncols);
    if !sf.tableau.phase_one(budget)? {
        return Ok(OptOutcome::Infeasible);
    }
    let mut cols = sf.expand_objective(objective);
    if direction == Direction::Maximize {
        for c in &mut cols {
            *c = -c.clone();
        }
    }
    match sf.tableau.phase_two(&cols, budget)? {
        PivotOutcome::Unbounded => Ok(OptOutcome::Unbounded),
        PivotOutcome::Optimal => {
            let solution = sf.extract(sys);
            debug_assert_eq!(sys.check(solution.values()), Ok(()));
            let value = objective.eval(solution.values());
            Ok(OptOutcome::Optimal { value, solution })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn rq(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn empty_system_is_feasible() {
        let sys = LinSystem::new();
        assert!(solve(&sys).is_feasible());
    }

    #[test]
    fn trivial_contradiction() {
        let mut sys = LinSystem::new();
        sys.push(LinExpr::new(), Cmp::Le, r(-1)); // 0 <= -1
        assert_eq!(solve(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn trivial_tautology() {
        let mut sys = LinSystem::new();
        sys.push(LinExpr::new(), Cmp::Le, r(1)); // 0 <= 1
        assert!(solve(&sys).is_feasible());
    }

    #[test]
    fn basic_feasible_with_witness() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let y = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::from_terms([(x, 1), (y, 2)]), Cmp::Ge, r(4));
        sys.push(LinExpr::from_terms([(x, 1), (y, -1)]), Cmp::Eq, r(1));
        let Feasibility::Feasible(sol) = solve(&sys) else {
            panic!("expected feasible");
        };
        assert_eq!(sys.check(sol.values()), Ok(()));
    }

    #[test]
    fn infeasible_equalities() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        sys.push(LinExpr::var(x), Cmp::Eq, r(1));
        sys.push(LinExpr::var(x), Cmp::Eq, r(2));
        assert_eq!(solve(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn free_variable_can_go_negative() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        sys.push(LinExpr::var(x), Cmp::Le, r(-5));
        let Feasibility::Feasible(sol) = solve(&sys) else {
            panic!("expected feasible");
        };
        assert!(sol.value(x) <= r(-5));
    }

    #[test]
    fn nonneg_variable_cannot() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Le, r(-5));
        assert_eq!(solve(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn strict_feasible() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Gt, r(0));
        sys.push(LinExpr::var(x), Cmp::Lt, r(1));
        let Feasibility::Feasible(sol) = solve(&sys) else {
            panic!("expected feasible");
        };
        assert!(sol.value(x).is_positive() && sol.value(x) < r(1));
    }

    #[test]
    fn strict_infeasible_boundary_only() {
        // x >= 1, x <= 1, x > 1: closure feasible (x = 1) but strict not.
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(1));
        sys.push(LinExpr::var(x), Cmp::Le, r(1));
        sys.push(LinExpr::var(x), Cmp::Gt, r(1));
        assert_eq!(solve(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn strict_homogeneous_cone() {
        // The paper's shape: x > 0 with 2x <= y and y <= 3x.
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let y = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::from_terms([(x, 2), (y, -1)]), Cmp::Le, r(0));
        sys.push(LinExpr::from_terms([(y, 1), (x, -3)]), Cmp::Le, r(0));
        sys.push(LinExpr::var(x), Cmp::Gt, r(0));
        let Feasibility::Feasible(sol) = solve(&sys) else {
            panic!("expected feasible");
        };
        assert_eq!(sys.check(sol.values()), Ok(()));
        assert!(sol.value(x).is_positive());
    }

    #[test]
    fn optimize_bounded() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6  =>  optimum at (8/5, 6/5).
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let y = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::from_terms([(x, 1), (y, 2)]), Cmp::Le, r(4));
        sys.push(LinExpr::from_terms([(x, 3), (y, 1)]), Cmp::Le, r(6));
        let obj = LinExpr::from_terms([(x, 1), (y, 1)]);
        let out = optimize(&sys, &obj, Direction::Maximize).unwrap();
        let OptOutcome::Optimal { value, solution } = out else {
            panic!("expected optimal");
        };
        assert_eq!(value, rq(14, 5));
        assert_eq!(solution.value(x), rq(8, 5));
        assert_eq!(solution.value(y), rq(6, 5));
    }

    #[test]
    fn optimize_minimize() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(3));
        let out = optimize(&sys, &LinExpr::var(x), Direction::Minimize).unwrap();
        let OptOutcome::Optimal { value, .. } = out else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(3));
    }

    #[test]
    fn optimize_unbounded() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(0));
        let out = optimize(&sys, &LinExpr::var(x), Direction::Maximize).unwrap();
        assert_eq!(out, OptOutcome::Unbounded);
    }

    #[test]
    fn optimize_infeasible() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Le, r(-1));
        let out = optimize(&sys, &LinExpr::var(x), Direction::Maximize).unwrap();
        assert_eq!(out, OptOutcome::Infeasible);
    }

    #[test]
    fn optimize_rejects_strict() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Gt, r(0));
        let err = optimize(&sys, &LinExpr::var(x), Direction::Maximize).unwrap_err();
        assert_eq!(err, LinearError::StrictInOptimize);
    }

    #[test]
    fn degenerate_cycling_guard() {
        // A classically degenerate LP (Beale-like); Bland's rule must
        // terminate. max 10x1 - 57x2 - 9x3 - 24x4 over the Beale cube.
        let mut sys = LinSystem::new();
        let v: Vec<_> = (0..4).map(|_| sys.add_var(VarKind::Nonneg)).collect();
        sys.push(
            LinExpr::from_terms([(v[0], 1), (v[1], -2), (v[2], -1), (v[3], 9)]),
            Cmp::Le,
            r(0),
        );
        sys.push(
            LinExpr::from_terms([(v[0], 1), (v[1], -3), (v[2], -1), (v[3], 2)]),
            Cmp::Le,
            r(0),
        );
        sys.push(LinExpr::var(v[0]), Cmp::Le, r(1));
        let obj = LinExpr::from_terms([(v[0], 10), (v[1], -57), (v[2], -9), (v[3], -24)]);
        let out = optimize(&sys, &obj, Direction::Maximize).unwrap();
        assert!(matches!(out, OptOutcome::Optimal { .. }));
    }

    #[test]
    fn governed_solve_matches_ungoverned_and_interrupts_when_starved() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Capped(AtomicU64);
        impl WorkBudget for Capped {
            fn consume(&self, units: u64) -> bool {
                self.0
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                        left.checked_sub(units)
                    })
                    .is_ok()
            }
        }
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let y = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::from_terms([(x, 1), (y, 2)]), Cmp::Ge, r(4));
        sys.push(LinExpr::from_terms([(x, 1), (y, -1)]), Cmp::Eq, r(1));
        let generous = Capped(AtomicU64::new(10_000));
        assert_eq!(solve_governed(&sys, &generous).unwrap(), solve(&sys));
        let starved = Capped(AtomicU64::new(0));
        assert_eq!(
            solve_governed(&sys, &starved),
            Err(LinearError::Interrupted)
        );
        assert_eq!(
            optimize_governed(&sys, &LinExpr::var(x), Direction::Minimize, &starved),
            Err(LinearError::Interrupted)
        );
    }

    #[test]
    fn redundant_constraints_fine() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Eq, r(2));
        sys.push(LinExpr::var(x), Cmp::Eq, r(2));
        sys.push(LinExpr::from_terms([(x, 2)]), Cmp::Eq, r(4));
        let Feasibility::Feasible(sol) = solve(&sys) else {
            panic!("expected feasible");
        };
        assert_eq!(sol.value(x), r(2));
    }
}
