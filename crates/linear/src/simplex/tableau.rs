//! Dense exact-rational simplex tableau with Bland's anti-cycling rule.
//!
//! The tableau solves problems already in standard form:
//! `min c·y  s.t.  A y = b,  y >= 0,  b >= 0`, with an initial basis of
//! artificial (and lucky slack) columns supplied by the caller.

use cr_rational::Rational;

use crate::budget::WorkBudget;
use crate::error::LinearError;

/// Result of running the pivot loop on one objective.
#[derive(Debug, PartialEq, Eq)]
pub(super) enum PivotOutcome {
    /// No improving column remains; the current basis is optimal.
    Optimal,
    /// An improving column had no positive entry: the objective is
    /// unbounded below.
    Unbounded,
}

pub(super) struct Tableau {
    /// Row-major constraint matrix; each row has `ncols + 1` entries, the
    /// last being the right-hand side.
    rows: Vec<Vec<Rational>>,
    /// `basis[i]` is the column currently basic in row `i`.
    basis: Vec<usize>,
    /// Reduced-cost row (`ncols + 1` entries; the last is minus the current
    /// objective value).
    cost: Vec<Rational>,
    /// Number of variable columns (excluding the RHS).
    ncols: usize,
    /// Columns at or beyond this index are artificial: banned from entering
    /// the basis once phase 1 completes.
    art_start: usize,
    phase_one_done: bool,
}

impl Tableau {
    /// Builds a tableau from prepared rows. Every `rows[i]` must have
    /// `ncols + 1` entries with a nonnegative RHS, and `basis[i]` must index
    /// a column whose entry in row `i` is `1` and `0` elsewhere.
    pub(super) fn new(
        rows: Vec<Vec<Rational>>,
        basis: Vec<usize>,
        ncols: usize,
        art_start: usize,
    ) -> Self {
        debug_assert_eq!(rows.len(), basis.len());
        debug_assert!(rows.iter().all(|r| r.len() == ncols + 1));
        debug_assert!(rows.iter().all(|r| !r[ncols].is_negative()));
        Tableau {
            rows,
            basis,
            cost: vec![Rational::zero(); ncols + 1],
            ncols,
            art_start,
            phase_one_done: false,
        }
    }

    /// Number of constraint rows currently in the tableau.
    pub(super) fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Runs phase 1 (minimize the sum of artificial variables). Returns
    /// `Ok(true)` iff the underlying system is feasible. Afterwards all
    /// artificial variables are out of the basis (redundant rows are
    /// dropped) and banned from re-entering. Each pivot iteration charges
    /// one unit against `budget`; a refused charge aborts with
    /// [`LinearError::Interrupted`].
    pub(super) fn phase_one(&mut self, budget: &dyn WorkBudget) -> Result<bool, LinearError> {
        assert!(!self.phase_one_done, "phase_one run twice");
        self.phase_one_done = true;
        if self.art_start == self.ncols {
            // No artificials: the supplied slack basis is already feasible.
            return Ok(true);
        }
        // Objective: sum of artificial columns. Express it over the
        // nonbasic columns by subtracting every artificial-basic row.
        let mut cost = vec![Rational::zero(); self.ncols + 1];
        for c in &mut cost[self.art_start..self.ncols] {
            *c = Rational::one();
        }
        for (row, &b) in self.rows.iter().zip(&self.basis) {
            if !cost[b].is_zero() {
                let scale = cost[b].clone();
                for (c, r) in cost.iter_mut().zip(row) {
                    *c -= &scale * r;
                }
            }
        }
        self.cost = cost;

        let outcome = self.pivot_loop(self.ncols, budget)?; // artificials may enter in phase 1
        debug_assert_eq!(
            outcome,
            PivotOutcome::Optimal,
            "phase 1 cannot be unbounded"
        );

        if self.objective_value().is_positive() {
            return Ok(false);
        }
        self.evict_artificials();
        Ok(true)
    }

    /// Installs `objective` (to be minimized; entries indexed by column) and
    /// runs phase 2. Requires a feasible basis from [`phase_one`].
    pub(super) fn phase_two(
        &mut self,
        objective: &[Rational],
        budget: &dyn WorkBudget,
    ) -> Result<PivotOutcome, LinearError> {
        assert!(self.phase_one_done, "phase_two before phase_one");
        let mut cost = vec![Rational::zero(); self.ncols + 1];
        cost[..objective.len()].clone_from_slice(objective);
        for (row, &b) in self.rows.iter().zip(&self.basis) {
            if !cost[b].is_zero() {
                let scale = cost[b].clone();
                for (c, r) in cost.iter_mut().zip(row) {
                    *c -= &scale * r;
                }
            }
        }
        self.cost = cost;
        self.pivot_loop(self.art_start, budget)
    }

    /// The current objective value (meaningful after a phase).
    pub(super) fn objective_value(&self) -> Rational {
        -self.cost[self.ncols].clone()
    }

    /// The value of column `j` in the current basic solution.
    pub(super) fn column_value(&self, j: usize) -> Rational {
        for (i, &b) in self.basis.iter().enumerate() {
            if b == j {
                return self.rows[i][self.ncols].clone();
            }
        }
        Rational::zero()
    }

    /// Bland's-rule pivot loop: entering column is the smallest-index column
    /// below `col_limit` with negative reduced cost; leaving row attains the
    /// minimum ratio, ties broken by smallest basic column index. Charges
    /// one budget unit per iteration — Bland's rule guarantees termination
    /// but not *when*, and exact rationals make each pivot arbitrarily
    /// expensive, so this is the cancellation point for the whole solver.
    fn pivot_loop(
        &mut self,
        col_limit: usize,
        budget: &dyn WorkBudget,
    ) -> Result<PivotOutcome, LinearError> {
        loop {
            if !budget.consume(1) {
                return Err(LinearError::Interrupted);
            }
            cr_faults::point!("linear.pivot", |_| Err(LinearError::FaultInjected {
                site: "linear.pivot"
            }));
            let Some(enter) = (0..col_limit).find(|&j| self.cost[j].is_negative()) else {
                return Ok(PivotOutcome::Optimal);
            };
            let mut leave: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                let a = &self.rows[i][enter];
                if !a.is_positive() {
                    continue;
                }
                let ratio = &self.rows[i][self.ncols] / a;
                match &leave {
                    None => leave = Some((i, ratio)),
                    Some((best_i, best)) => {
                        if ratio < *best || (ratio == *best && self.basis[i] < self.basis[*best_i])
                        {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Ok(PivotOutcome::Unbounded);
            };
            self.pivot(row, enter);
        }
    }

    /// Pivots: column `enter` becomes basic in `row`.
    fn pivot(&mut self, row: usize, enter: usize) {
        let pivot = self.rows[row][enter].clone();
        debug_assert!(!pivot.is_zero(), "pivot on zero entry");
        let inv = pivot.recip();
        for v in self.rows[row].iter_mut() {
            *v *= &inv;
        }
        let pivot_row = self.rows[row].clone();
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][enter].clone();
            if factor.is_zero() {
                continue;
            }
            for (v, p) in self.rows[i].iter_mut().zip(&pivot_row) {
                *v -= &factor * p;
            }
        }
        let factor = self.cost[enter].clone();
        if !factor.is_zero() {
            for (c, p) in self.cost.iter_mut().zip(&pivot_row) {
                *c -= &factor * p;
            }
        }
        self.basis[row] = enter;
    }

    /// Drives any artificial variable still basic (necessarily at value 0)
    /// out of the basis, dropping rows that turn out to be redundant.
    fn evict_artificials(&mut self) {
        let mut i = 0;
        while i < self.rows.len() {
            if self.basis[i] < self.art_start {
                i += 1;
                continue;
            }
            debug_assert!(self.rows[i][self.ncols].is_zero());
            // A degenerate pivot (rhs = 0) is feasibility-preserving on any
            // nonzero entry, positive or negative.
            match (0..self.art_start).find(|&j| !self.rows[i][j].is_zero()) {
                Some(j) => {
                    self.pivot(i, j);
                    i += 1;
                }
                None => {
                    // 0 = 0 row: the original constraint was redundant.
                    self.rows.swap_remove(i);
                    self.basis.swap_remove(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Unlimited;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// x + y = 2 with artificial a:   [1, 1, 1 | 2], basis {a}.
    #[test]
    fn phase_one_finds_feasible_basis() {
        let rows = vec![vec![r(1), r(1), r(1), r(2)]];
        let mut t = Tableau::new(rows, vec![2], 3, 2);
        assert!(t.phase_one(&Unlimited).unwrap());
        // x (col 0) should have entered by Bland's rule; x = 2.
        assert_eq!(t.column_value(0), r(2));
        assert_eq!(t.column_value(2), r(0));
    }

    /// x = 1 and x = 2 simultaneously (two artificial rows): infeasible.
    #[test]
    fn phase_one_detects_infeasible() {
        let rows = vec![vec![r(1), r(1), r(0), r(1)], vec![r(1), r(0), r(1), r(2)]];
        let mut t = Tableau::new(rows, vec![1, 2], 3, 1);
        assert!(!t.phase_one(&Unlimited).unwrap());
    }

    /// min -x s.t. x + s = 5 (slack basis, no artificials): optimum x = 5.
    #[test]
    fn phase_two_optimizes() {
        let rows = vec![vec![r(1), r(1), r(5)]];
        let mut t = Tableau::new(rows, vec![1], 2, 2);
        assert!(t.phase_one(&Unlimited).unwrap());
        let outcome = t.phase_two(&[r(-1), r(0)], &Unlimited).unwrap();
        assert_eq!(outcome, PivotOutcome::Optimal);
        assert_eq!(t.objective_value(), r(-5));
        assert_eq!(t.column_value(0), r(5));
    }

    /// min -x s.t. x - s = 0 (x unbounded above).
    #[test]
    fn phase_two_detects_unbounded() {
        let rows = vec![vec![r(1), r(-1), r(1), r(0)]];
        let mut t = Tableau::new(rows, vec![2], 3, 2);
        assert!(t.phase_one(&Unlimited).unwrap());
        let outcome = t.phase_two(&[r(-1), r(0)], &Unlimited).unwrap();
        assert_eq!(outcome, PivotOutcome::Unbounded);
    }

    /// Redundant duplicated row: x = 1, x = 1. Second artificial can't be
    /// pivoted out and its row must be dropped.
    #[test]
    fn redundant_rows_are_dropped() {
        let rows = vec![vec![r(1), r(1), r(0), r(1)], vec![r(1), r(0), r(1), r(1)]];
        let mut t = Tableau::new(rows, vec![1, 2], 3, 1);
        assert!(t.phase_one(&Unlimited).unwrap());
        assert_eq!(t.column_value(0), r(1));
        assert!(t.rows.len() <= 2);
        assert!(t
            .basis
            .iter()
            .all(|&b| b < 1 || t.column_value(b).is_zero()));
    }

    /// A starved budget interrupts phase 1 instead of looping or panicking.
    #[test]
    fn starved_budget_interrupts() {
        struct Refuse;
        impl WorkBudget for Refuse {
            fn consume(&self, _: u64) -> bool {
                false
            }
        }
        let rows = vec![vec![r(1), r(1), r(1), r(2)]];
        let mut t = Tableau::new(rows, vec![2], 3, 2);
        assert_eq!(t.phase_one(&Refuse), Err(LinearError::Interrupted));
    }
}
