//! Error type for the solvers.

use std::fmt;

/// Errors reported by the linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearError {
    /// [`optimize`](crate::optimize) was asked to optimize over a system with
    /// strict inequalities; the supremum over an open set need not be
    /// attained, so the operation is rejected.
    StrictInOptimize,
    /// Fourier–Motzkin elimination exceeded the configured constraint budget
    /// (the method is doubly exponential; see [`FmConfig`](crate::FmConfig)).
    FmBudgetExceeded {
        /// Budget that was exceeded.
        limit: usize,
    },
    /// A [`WorkBudget`](crate::WorkBudget) refused a charge mid-solve: the
    /// caller's deadline, step limit, or cancellation flag tripped. The
    /// partial tableau is discarded; the computation carries no answer.
    Interrupted,
    /// A `cr-faults` failpoint injected a failure at the named site (only
    /// reachable in builds with `--features faults`). Like
    /// [`Interrupted`](LinearError::Interrupted), the computation carries
    /// no answer — callers must propagate, never treat it as a verdict.
    FaultInjected {
        /// The failpoint site that fired.
        site: &'static str,
    },
}

impl fmt::Display for LinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearError::StrictInOptimize => {
                write!(
                    f,
                    "cannot optimize over strict inequalities (open feasible set)"
                )
            }
            LinearError::FmBudgetExceeded { limit } => {
                write!(
                    f,
                    "Fourier-Motzkin exceeded the constraint budget of {limit}"
                )
            }
            LinearError::Interrupted => {
                write!(f, "solve interrupted by the caller's work budget")
            }
            LinearError::FaultInjected { site } => {
                write!(f, "fault injected at {site}")
            }
        }
    }
}

impl std::error::Error for LinearError {}
