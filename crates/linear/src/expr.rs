//! Sparse linear expressions.

use std::collections::BTreeMap;
use std::fmt;

use cr_rational::Rational;

/// Index of a variable in a [`LinSystem`](crate::LinSystem).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A sparse linear expression `Σ coeff_i · x_i` with rational coefficients.
///
/// Zero coefficients are never stored; two expressions compare equal iff
/// they are the same linear form.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct LinExpr {
    terms: BTreeMap<VarId, Rational>,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Builds an expression from integer coefficients.
    pub fn from_terms<I: IntoIterator<Item = (VarId, i64)>>(terms: I) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in terms {
            e.add_term(v, Rational::from_int(c));
        }
        e
    }

    /// A single-variable expression `1 · v`.
    pub fn var(v: VarId) -> Self {
        LinExpr::from_terms([(v, 1)])
    }

    /// Adds `coeff · v`, merging with any existing term (and dropping the
    /// term if the merged coefficient is zero).
    pub fn add_term(&mut self, v: VarId, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.entry(v) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(coeff);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get() + &coeff;
                if merged.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = merged;
                }
            }
        }
    }

    /// Adds `scale · other` into `self`.
    pub fn add_scaled(&mut self, other: &LinExpr, scale: &Rational) {
        for (v, c) in &other.terms {
            self.add_term(*v, c * scale);
        }
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: VarId) -> Rational {
        self.terms.get(&v).cloned().unwrap_or_else(Rational::zero)
    }

    /// Whether the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of nonzero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Rational)> {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// Evaluates the expression under an assignment `values[var.index()]`.
    pub fn eval(&self, values: &[Rational]) -> Rational {
        let mut acc = Rational::zero();
        for (v, c) in &self.terms {
            acc += c * &values[v.index()];
        }
        acc
    }

    /// Returns `-self`.
    pub fn negated(&self) -> LinExpr {
        let mut out = LinExpr::new();
        for (v, c) in &self.terms {
            out.terms.insert(*v, -c);
        }
        out
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.terms.keys().next_back().copied()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (v, c)) in self.terms.iter().enumerate() {
            if i == 0 {
                if c.is_negative() {
                    write!(f, "-")?;
                }
            } else if c.is_negative() {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            if a == Rational::one() {
                write!(f, "x{}", v.0)?;
            } else {
                write!(f, "{a}·x{}", v.0)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn zero_coefficients_vanish() {
        let mut e = LinExpr::var(VarId(0));
        e.add_term(VarId(0), r(-1));
        assert!(e.is_empty());
        e.add_term(VarId(1), Rational::zero());
        assert!(e.is_empty());
    }

    #[test]
    fn merge_terms() {
        let mut e = LinExpr::from_terms([(VarId(0), 2), (VarId(1), 3)]);
        e.add_term(VarId(0), r(5));
        assert_eq!(e.coeff(VarId(0)), r(7));
        assert_eq!(e.coeff(VarId(1)), r(3));
        assert_eq!(e.coeff(VarId(9)), Rational::zero());
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn add_scaled() {
        let mut a = LinExpr::from_terms([(VarId(0), 1), (VarId(1), 1)]);
        let b = LinExpr::from_terms([(VarId(1), 2), (VarId(2), 4)]);
        a.add_scaled(&b, &Rational::new(1, 2));
        assert_eq!(a.coeff(VarId(0)), r(1));
        assert_eq!(a.coeff(VarId(1)), r(2));
        assert_eq!(a.coeff(VarId(2)), r(2));
    }

    #[test]
    fn eval() {
        let e = LinExpr::from_terms([(VarId(0), 2), (VarId(2), -1)]);
        let vals = vec![r(3), r(100), r(4)];
        assert_eq!(e.eval(&vals), r(2));
    }

    #[test]
    fn negated() {
        let e = LinExpr::from_terms([(VarId(0), 2), (VarId(1), -3)]);
        let n = e.negated();
        assert_eq!(n.coeff(VarId(0)), r(-2));
        assert_eq!(n.coeff(VarId(1)), r(3));
    }

    #[test]
    fn display() {
        let e = LinExpr::from_terms([(VarId(0), 1), (VarId(1), -2), (VarId(3), 1)]);
        assert_eq!(e.to_string(), "x0 - 2·x1 + x3");
        assert_eq!(LinExpr::new().to_string(), "0");
        assert_eq!(LinExpr::from_terms([(VarId(2), -1)]).to_string(), "-x2");
    }

    #[test]
    fn max_var() {
        assert_eq!(LinExpr::new().max_var(), None);
        let e = LinExpr::from_terms([(VarId(5), 1), (VarId(2), 1)]);
        assert_eq!(e.max_var(), Some(VarId(5)));
    }
}
