//! Constraint systems: a set of variables plus comparisons of linear
//! expressions against rational constants.

use std::fmt;

use cr_rational::Rational;

use crate::expr::{LinExpr, VarId};

/// Comparison operator of a [`Constraint`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr < rhs` (strict)
    Lt,
    /// `expr == rhs`
    Eq,
    /// `expr >= rhs`
    Ge,
    /// `expr > rhs` (strict)
    Gt,
}

impl Cmp {
    /// Whether the comparison is strict.
    pub fn is_strict(self) -> bool {
        matches!(self, Cmp::Lt | Cmp::Gt)
    }

    /// The comparison satisfied by `-expr` against `-rhs`.
    pub fn flipped(self) -> Cmp {
        match self {
            Cmp::Le => Cmp::Ge,
            Cmp::Lt => Cmp::Gt,
            Cmp::Eq => Cmp::Eq,
            Cmp::Ge => Cmp::Le,
            Cmp::Gt => Cmp::Lt,
        }
    }

    /// Evaluates `lhs cmp rhs`.
    pub fn eval(self, lhs: &Rational, rhs: &Rational) -> bool {
        match self {
            Cmp::Le => lhs <= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Gt => lhs > rhs,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Le => "<=",
            Cmp::Lt => "<",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// Domain of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// Unrestricted sign (internally split into a difference of two
    /// nonnegative variables by the simplex).
    Free,
    /// Constrained to `x >= 0` implicitly.
    Nonneg,
}

/// A single constraint `expr cmp rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side constant.
    pub rhs: Rational,
}

impl Constraint {
    /// Whether `values` satisfies the constraint.
    pub fn holds(&self, values: &[Rational]) -> bool {
        self.cmp.eval(&self.expr.eval(values), &self.rhs)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.cmp, self.rhs)
    }
}

/// A system of linear constraints over declared variables.
#[derive(Clone, Default, Debug)]
pub struct LinSystem {
    kinds: Vec<VarKind>,
    constraints: Vec<Constraint>,
}

impl LinSystem {
    /// An empty system with no variables.
    pub fn new() -> Self {
        LinSystem::default()
    }

    /// Declares a fresh variable and returns its id.
    pub fn add_var(&mut self, kind: VarKind) -> VarId {
        let id = VarId(u32::try_from(self.kinds.len()).expect("too many variables"));
        self.kinds.push(kind);
        id
    }

    /// Declares `n` fresh nonnegative variables.
    pub fn add_nonneg_vars(&mut self, n: usize) -> Vec<VarId> {
        (0..n).map(|_| self.add_var(VarKind::Nonneg)).collect()
    }

    /// Adds the constraint `expr cmp rhs`.
    ///
    /// # Panics
    /// Panics if `expr` mentions an undeclared variable.
    pub fn push(&mut self, expr: LinExpr, cmp: Cmp, rhs: Rational) {
        if let Some(v) = expr.max_var() {
            assert!(
                v.index() < self.kinds.len(),
                "constraint mentions undeclared variable x{}",
                v.0
            );
        }
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of variable `v`.
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.kinds[v.index()]
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether any constraint is strict.
    pub fn has_strict(&self) -> bool {
        self.constraints.iter().any(|c| c.cmp.is_strict())
    }

    /// Checks an explicit assignment against every constraint *and* the
    /// nonnegativity of [`VarKind::Nonneg`] variables; returns the index of
    /// the first violated constraint (`Err(None)` for a violated variable
    /// bound).
    pub fn check(&self, values: &[Rational]) -> Result<(), Option<usize>> {
        assert_eq!(values.len(), self.kinds.len(), "assignment arity mismatch");
        for (i, kind) in self.kinds.iter().enumerate() {
            if *kind == VarKind::Nonneg && values[i].is_negative() {
                return Err(None);
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if !c.holds(values) {
                return Err(Some(i));
            }
        }
        Ok(())
    }
}

impl fmt::Display for LinSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vars: {}", self.kinds.len())?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Le.eval(&r(1), &r(1)));
        assert!(!Cmp::Lt.eval(&r(1), &r(1)));
        assert!(Cmp::Eq.eval(&r(1), &r(1)));
        assert!(Cmp::Ge.eval(&r(2), &r(1)));
        assert!(Cmp::Gt.eval(&r(2), &r(1)));
        assert!(!Cmp::Gt.eval(&r(1), &r(2)));
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(Cmp::Le.flipped(), Cmp::Ge);
        assert_eq!(Cmp::Gt.flipped(), Cmp::Lt);
        assert_eq!(Cmp::Eq.flipped(), Cmp::Eq);
    }

    #[test]
    fn system_check() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let y = sys.add_var(VarKind::Free);
        sys.push(LinExpr::from_terms([(x, 1), (y, 1)]), Cmp::Le, r(10));
        sys.push(LinExpr::from_terms([(x, 1)]), Cmp::Gt, r(0));

        assert_eq!(sys.check(&[r(1), r(2)]), Ok(()));
        assert_eq!(sys.check(&[r(0), r(2)]), Err(Some(1))); // x > 0 violated
        assert_eq!(sys.check(&[r(-1), r(2)]), Err(None)); // nonneg violated
        assert_eq!(sys.check(&[r(5), r(6)]), Err(Some(0)));
        // free var may be negative
        assert_eq!(sys.check(&[r(1), r(-100)]), Ok(()));
    }

    #[test]
    #[should_panic(expected = "undeclared variable")]
    fn undeclared_variable_panics() {
        let mut sys = LinSystem::new();
        sys.push(LinExpr::var(VarId(3)), Cmp::Le, r(0));
    }

    #[test]
    fn has_strict() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(0));
        assert!(!sys.has_strict());
        sys.push(LinExpr::var(x), Cmp::Lt, r(5));
        assert!(sys.has_strict());
    }

    #[test]
    fn display() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(2));
        let s = sys.to_string();
        assert!(s.contains("x0 >= 2"));
    }
}
