//! Farkas-style infeasibility certificates.
//!
//! An infeasible [`LinSystem`] can *prove* its own infeasibility: by the
//! affine Farkas lemma (Motzkin transposition for the strict case), the
//! system `{expr_i cmp_i rhs_i, x_j ≥ 0 for Nonneg j}` has no solution iff
//! there are multipliers λ — one per constraint, nonnegative on inequality
//! rows, unrestricted on equality rows — whose combination is manifestly
//! contradictory. Normalize every row to the shape `g_i · x ≥ d_i` (flip
//! `Le`/`Lt` by negation, keep `Eq` with a free multiplier) and let
//!
//! * `combo = Σ λ_i g_i` (a linear form),
//! * `D = Σ λ_i d_i`,
//! * `strict = Σ λ_i` over strict rows.
//!
//! If `combo` has only nonpositive coefficients on nonnegative variables
//! and zero coefficients on free variables, then `combo · x ≤ 0` for every
//! candidate `x` — yet any solution would give `combo · x ≥ D` (strictly,
//! when `strict > 0`). So `D > 0`, or `D ≥ 0` together with `strict > 0`,
//! is an outright contradiction, checkable with a few exact-rational dot
//! products and **no trust in any solver**.
//!
//! [`FarkasCertificate::check`] performs exactly that arithmetic.
//! [`farkas_certificate_governed`] *finds* the multipliers by solving the
//! dual feasibility problem with the crate's own simplex — the point is
//! that a consumer only needs to trust `check`, which is independent of
//! (and vastly simpler than) the search.

use std::fmt;

use cr_rational::Rational;

use crate::budget::{Unlimited, WorkBudget};
use crate::error::LinearError;
use crate::expr::{LinExpr, VarId};
use crate::simplex::solve_governed;
use crate::solution::Feasibility;
use crate::system::{Cmp, LinSystem, VarKind};

/// Why a certificate failed [`FarkasCertificate::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// Multiplier count differs from the system's constraint count.
    ArityMismatch {
        /// Constraints in the system.
        expected: usize,
        /// Multipliers in the certificate.
        got: usize,
    },
    /// An inequality row carries a negative multiplier.
    NegativeMultiplier {
        /// Constraint index.
        row: usize,
    },
    /// The combined form has a coefficient of the wrong sign: positive on a
    /// nonnegative variable, or nonzero on a free variable.
    BadCombination {
        /// The offending variable.
        var: VarId,
    },
    /// The combination is sign-correct but not contradictory (`D < 0`, or
    /// `D = 0` with no strict mass) — it proves nothing.
    NotContradictory,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "certificate has {got} multipliers for {expected} constraints"
                )
            }
            CertificateError::NegativeMultiplier { row } => {
                write!(f, "negative multiplier on inequality row {row}")
            }
            CertificateError::BadCombination { var } => {
                write!(
                    f,
                    "combined form has a wrong-signed coefficient on x{}",
                    var.0
                )
            }
            CertificateError::NotContradictory => {
                write!(f, "multiplier combination is not contradictory")
            }
        }
    }
}

/// The sign-normalized shape of row `i`: `g · x ≥ d`, possibly strict.
fn normalized(c: &crate::system::Constraint) -> (LinExpr, Rational, bool) {
    match c.cmp {
        Cmp::Ge | Cmp::Gt | Cmp::Eq => (c.expr.clone(), c.rhs.clone(), c.cmp == Cmp::Gt),
        Cmp::Le | Cmp::Lt => (c.expr.negated(), -&c.rhs, c.cmp == Cmp::Lt),
    }
}

/// A Farkas/Motzkin infeasibility certificate: one rational multiplier per
/// constraint of the system it refutes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FarkasCertificate {
    multipliers: Vec<Rational>,
}

impl FarkasCertificate {
    /// Wraps explicit multipliers (one per constraint, in system order).
    pub fn new(multipliers: Vec<Rational>) -> FarkasCertificate {
        FarkasCertificate { multipliers }
    }

    /// The multipliers, in constraint order.
    pub fn multipliers(&self) -> &[Rational] {
        &self.multipliers
    }

    /// Verifies that this certificate proves `sys` infeasible, using only
    /// exact-rational arithmetic — no simplex, no pivoting, nothing shared
    /// with the code path that produced the verdict being certified.
    pub fn check(&self, sys: &LinSystem) -> Result<(), CertificateError> {
        let constraints = sys.constraints();
        if self.multipliers.len() != constraints.len() {
            return Err(CertificateError::ArityMismatch {
                expected: constraints.len(),
                got: self.multipliers.len(),
            });
        }
        let mut combo = LinExpr::new();
        let mut d_total = Rational::zero();
        let mut strict_mass = Rational::zero();
        for (i, (c, lambda)) in constraints.iter().zip(&self.multipliers).enumerate() {
            if c.cmp != Cmp::Eq && lambda.is_negative() {
                return Err(CertificateError::NegativeMultiplier { row: i });
            }
            if lambda.is_zero() {
                continue;
            }
            let (g, d, strict) = normalized(c);
            combo.add_scaled(&g, lambda);
            d_total += &d * lambda;
            if strict {
                strict_mass += lambda;
            }
        }
        for (v, coeff) in combo.iter() {
            let ok = match sys.var_kind(v) {
                VarKind::Nonneg => !coeff.is_positive(),
                VarKind::Free => coeff.is_zero(),
            };
            if !ok {
                return Err(CertificateError::BadCombination { var: v });
            }
        }
        if d_total.is_positive() || (!d_total.is_negative() && strict_mass.is_positive()) {
            Ok(())
        } else {
            Err(CertificateError::NotContradictory)
        }
    }
}

/// Builds the dual feasibility system over multiplier variables λ.
///
/// `want`: the contradiction to aim for — `D ≥ 1` (plain Farkas) or
/// `D ≥ 0 ∧ strict-mass ≥ 1` (Motzkin, for systems whose only
/// contradiction runs through a strict row).
fn dual_system(sys: &LinSystem, strict_goal: bool) -> Option<LinSystem> {
    let constraints = sys.constraints();
    let mut dual = LinSystem::new();
    let lambdas: Vec<VarId> = constraints
        .iter()
        .map(|c| {
            dual.add_var(if c.cmp == Cmp::Eq {
                VarKind::Free
            } else {
                VarKind::Nonneg
            })
        })
        .collect();
    // Column constraints: Σ_i λ_i g_i[j] ≤ 0 (nonneg x_j) or = 0 (free x_j).
    let mut columns: Vec<LinExpr> = vec![LinExpr::new(); sys.num_vars()];
    let mut d_expr = LinExpr::new();
    let mut strict_expr = LinExpr::new();
    for (i, c) in constraints.iter().enumerate() {
        let (g, d, strict) = normalized(c);
        for (v, coeff) in g.iter() {
            columns[v.index()].add_term(lambdas[i], coeff.clone());
        }
        d_expr.add_term(lambdas[i], d);
        if strict {
            strict_expr.add_term(lambdas[i], Rational::one());
        }
    }
    for (j, col) in columns.into_iter().enumerate() {
        let cmp = match sys.var_kind(VarId(j as u32)) {
            VarKind::Nonneg => Cmp::Le,
            VarKind::Free => Cmp::Eq,
        };
        dual.push(col, cmp, Rational::zero());
    }
    if strict_goal {
        if strict_expr.is_empty() {
            return None; // no strict rows: the Motzkin goal is unreachable
        }
        dual.push(d_expr, Cmp::Ge, Rational::zero());
        dual.push(strict_expr, Cmp::Ge, Rational::one());
    } else {
        dual.push(d_expr, Cmp::Ge, Rational::one());
    }
    Some(dual)
}

/// Searches for a Farkas/Motzkin certificate of infeasibility for `sys`
/// under a caller-supplied [`WorkBudget`].
///
/// Returns `Ok(Some(cert))` with a certificate that is **guaranteed** to
/// pass [`FarkasCertificate::check`] (checked before returning), or
/// `Ok(None)` when no certificate exists — which, by Farkas completeness,
/// means `sys` is feasible. The search runs the crate's simplex on the
/// dual system; an exhausted budget surfaces as
/// [`LinearError::Interrupted`].
pub fn farkas_certificate_governed(
    sys: &LinSystem,
    budget: &dyn WorkBudget,
) -> Result<Option<FarkasCertificate>, LinearError> {
    // The multiplier cone is scale-invariant, so "D > 0" is reachable iff
    // "D ≥ 1" is; try the plain Farkas goal first, then the Motzkin goal
    // that routes the contradiction through a strict row.
    for strict_goal in [false, true] {
        let Some(dual) = dual_system(sys, strict_goal) else {
            continue;
        };
        if let Feasibility::Feasible(sol) = solve_governed(&dual, budget)? {
            let cert = FarkasCertificate::new(
                (0..sys.constraints().len())
                    .map(|i| sol.value(VarId(i as u32)))
                    .collect(),
            );
            // The construction above is exactly the dual reading of
            // `check`; failing here would be a solver bug, which is the
            // very thing certificates exist to catch.
            cert.check(sys)
                .expect("freshly derived certificate must verify");
            return Ok(Some(cert));
        }
    }
    Ok(None)
}

/// [`farkas_certificate_governed`] with an unlimited budget.
pub fn farkas_certificate(sys: &LinSystem) -> Option<FarkasCertificate> {
    match farkas_certificate_governed(sys, &Unlimited) {
        Ok(c) => c,
        Err(e @ LinearError::FaultInjected { .. }) => panic!("{e} in ungoverned certificate"),
        Err(_) => unreachable!("the unlimited budget never interrupts"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn certifies_a_plain_contradiction() {
        // x ≥ 3 and x ≤ 1.
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(3));
        sys.push(LinExpr::var(x), Cmp::Le, r(1));
        assert_eq!(solve(&sys), Feasibility::Infeasible);
        let cert = farkas_certificate(&sys).expect("infeasible system must certify");
        assert_eq!(cert.check(&sys), Ok(()));
    }

    #[test]
    fn certifies_equality_clash_with_free_variable() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        sys.push(LinExpr::var(x), Cmp::Eq, r(1));
        sys.push(LinExpr::var(x), Cmp::Eq, r(2));
        let cert = farkas_certificate(&sys).expect("must certify");
        assert_eq!(cert.check(&sys), Ok(()));
    }

    #[test]
    fn certifies_strict_boundary_infeasibility() {
        // x ≤ 1 ∧ x > 1: the closure is feasible, so only the Motzkin goal
        // (strict mass) can certify this.
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Le, r(1));
        sys.push(LinExpr::var(x), Cmp::Gt, r(1));
        let cert = farkas_certificate(&sys).expect("must certify");
        assert_eq!(cert.check(&sys), Ok(()));
    }

    #[test]
    fn certifies_homogeneous_strict_cone() {
        // The CR reduction's shape: y ≥ 2x, y ≤ x, x > 0 — homogeneous, so
        // every d_i is zero and the strict row carries the contradiction.
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let y = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::from_terms([(y, 1), (x, -2)]), Cmp::Ge, r(0));
        sys.push(LinExpr::from_terms([(y, 1), (x, -1)]), Cmp::Le, r(0));
        sys.push(LinExpr::var(x), Cmp::Gt, r(0));
        assert_eq!(solve(&sys), Feasibility::Infeasible);
        let cert = farkas_certificate(&sys).expect("must certify");
        assert_eq!(cert.check(&sys), Ok(()));
    }

    #[test]
    fn feasible_systems_have_no_certificate() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(1));
        sys.push(LinExpr::var(x), Cmp::Le, r(2));
        assert!(farkas_certificate(&sys).is_none());
    }

    #[test]
    fn check_rejects_forged_certificates() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        let free = sys.add_var(VarKind::Free);
        sys.push(LinExpr::var(x), Cmp::Ge, r(3));
        sys.push(LinExpr::var(x), Cmp::Le, r(1));
        sys.push(LinExpr::var(free), Cmp::Ge, r(0));

        let wrong_arity = FarkasCertificate::new(vec![r(1)]);
        assert!(matches!(
            wrong_arity.check(&sys),
            Err(CertificateError::ArityMismatch {
                expected: 3,
                got: 1
            })
        ));

        let negative = FarkasCertificate::new(vec![r(-1), r(1), r(0)]);
        assert!(matches!(
            negative.check(&sys),
            Err(CertificateError::NegativeMultiplier { row: 0 })
        ));

        // Leaves the free variable's coefficient nonzero in the combo.
        let leaks_free = FarkasCertificate::new(vec![r(1), r(1), r(1)]);
        assert!(matches!(
            leaks_free.check(&sys),
            Err(CertificateError::BadCombination { .. })
        ));

        // All-zero multipliers combine to 0 ≥ 0: proves nothing.
        let vacuous = FarkasCertificate::new(vec![r(0), r(0), r(0)]);
        assert_eq!(vacuous.check(&sys), Err(CertificateError::NotContradictory));

        // And the genuine article passes: x≥3 plus x≤1 (times 1 each)
        // gives 0 ≥ 2.
        let genuine = FarkasCertificate::new(vec![r(1), r(1), r(0)]);
        assert_eq!(genuine.check(&sys), Ok(()));
    }

    #[test]
    fn governed_search_respects_the_budget() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Capped(AtomicU64);
        impl WorkBudget for Capped {
            fn consume(&self, units: u64) -> bool {
                self.0
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                        left.checked_sub(units)
                    })
                    .is_ok()
            }
        }
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Ge, r(3));
        sys.push(LinExpr::var(x), Cmp::Le, r(1));
        let starved = Capped(AtomicU64::new(0));
        assert_eq!(
            farkas_certificate_governed(&sys, &starved),
            Err(LinearError::Interrupted)
        );
    }
}
