//! Cooperative work budgets for the solvers.
//!
//! Exact-rational simplex has no useful a-priori bound on pivot count, so
//! callers that must meet deadlines (interactive tools, CI, servers) need a
//! way to interrupt a solve that is taking too long. The [`WorkBudget`]
//! trait is the hook: the pivot loop charges one unit per iteration and
//! stops with [`LinearError::Interrupted`](crate::LinearError::Interrupted)
//! as soon as a charge is refused. The trait is deliberately minimal so
//! higher layers (deadlines, step counters, cancellation flags — see
//! `cr-core`'s `Budget`) can implement it without this crate knowing about
//! clocks or atomics.

/// A cooperative work meter threaded through the solvers' inner loops.
///
/// Implementations must be cheap (called once per simplex pivot) and
/// idempotent on refusal: once `consume` returns `false` it should keep
/// returning `false` so interrupted solves stay interrupted.
pub trait WorkBudget {
    /// Charges `units` of work against the budget. Returning `false`
    /// signals exhaustion: the solver abandons the computation and
    /// reports [`LinearError::Interrupted`](crate::LinearError::Interrupted).
    fn consume(&self, units: u64) -> bool;

    /// Observability hook: the solver reports the dimensions of each
    /// standard-form tableau it builds (rows × columns, before any row
    /// elimination). Purely informational — the default does nothing, and
    /// implementations must not refuse work here. Higher layers use it to
    /// record peak problem sizes without this crate depending on their
    /// metrics machinery.
    fn note_tableau(&self, _rows: usize, _cols: usize) {}
}

/// The budget that never runs out — used by the ungoverned entry points
/// ([`solve`](crate::solve), [`optimize`](crate::optimize)).
#[derive(Clone, Copy, Debug, Default)]
pub struct Unlimited;

impl WorkBudget for Unlimited {
    fn consume(&self, _units: u64) -> bool {
        true
    }
}

impl<B: WorkBudget + ?Sized> WorkBudget for &B {
    fn consume(&self, units: u64) -> bool {
        (**self).consume(units)
    }

    fn note_tableau(&self, rows: usize, cols: usize) {
        (**self).note_tableau(rows, cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Capped {
        left: AtomicU64,
    }

    impl WorkBudget for Capped {
        fn consume(&self, units: u64) -> bool {
            // fetch_update returns Err when the closure declines.
            self.left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                    left.checked_sub(units)
                })
                .is_ok()
        }
    }

    #[test]
    fn unlimited_never_refuses() {
        assert!(Unlimited.consume(u64::MAX));
        assert!(Unlimited.consume(0));
    }

    #[test]
    fn capped_refuses_after_exhaustion() {
        let b = Capped {
            left: AtomicU64::new(3),
        };
        assert!(b.consume(2));
        assert!(b.consume(1));
        assert!(!b.consume(1));
        assert!(!b.consume(1), "stays refused");
    }

    #[test]
    fn reference_delegates() {
        let b = Capped {
            left: AtomicU64::new(1),
        };
        let r: &dyn WorkBudget = &b;
        assert!(r.consume(1));
        assert!(!(&r).consume(1));
    }
}
