//! Solver results.

use cr_bigint::BigInt;
use cr_rational::Rational;

use crate::expr::VarId;

/// A satisfying assignment, one rational per declared variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    values: Vec<Rational>,
}

impl Solution {
    /// Wraps an explicit assignment.
    pub fn new(values: Vec<Rational>) -> Self {
        Solution { values }
    }

    /// The value of variable `v`.
    pub fn value(&self, v: VarId) -> Rational {
        self.values[v.index()].clone()
    }

    /// All values, indexed by variable.
    pub fn values(&self) -> &[Rational] {
        &self.values
    }

    /// Scales every value by the least common multiple of the denominators,
    /// returning an all-integer assignment together with the factor used.
    ///
    /// For a *homogeneous* system (every right-hand side zero, as produced by
    /// the CR-schema reduction) any positive multiple of a solution is again
    /// a solution, so the scaled assignment still satisfies the system.
    pub fn scale_to_integers(&self) -> (Vec<BigInt>, BigInt) {
        let mut lcm = BigInt::one();
        for v in &self.values {
            lcm = lcm.lcm(v.denom());
        }
        let ints = self
            .values
            .iter()
            .map(|v| {
                let scaled = v * &Rational::from_int(lcm.clone());
                scaled
                    .to_integer()
                    .expect("lcm scaling must clear denominators")
                    .clone()
            })
            .collect();
        (ints, lcm)
    }
}

/// Outcome of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// The system has a solution; a witness is attached.
    Feasible(Solution),
    /// The system has no solution.
    Infeasible,
}

impl Feasibility {
    /// Whether the system was feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }

    /// The witness, if feasible.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Feasibility::Feasible(s) => Some(s),
            Feasibility::Infeasible => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_to_integers() {
        let sol = Solution::new(vec![
            Rational::new(1, 2),
            Rational::new(2, 3),
            Rational::from_int(5),
        ]);
        let (ints, factor) = sol.scale_to_integers();
        assert_eq!(factor, BigInt::from(6));
        assert_eq!(
            ints,
            vec![BigInt::from(3), BigInt::from(4), BigInt::from(30)]
        );
    }

    #[test]
    fn scale_all_integers_is_identity() {
        let sol = Solution::new(vec![Rational::from_int(2), Rational::zero()]);
        let (ints, factor) = sol.scale_to_integers();
        assert_eq!(factor, BigInt::one());
        assert_eq!(ints, vec![BigInt::from(2), BigInt::zero()]);
    }

    #[test]
    fn feasibility_accessors() {
        let f = Feasibility::Feasible(Solution::new(vec![]));
        assert!(f.is_feasible());
        assert!(f.solution().is_some());
        assert!(!Feasibility::Infeasible.is_feasible());
        assert!(Feasibility::Infeasible.solution().is_none());
    }
}
