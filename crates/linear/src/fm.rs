//! Fourier–Motzkin elimination: an independent (and doubly exponential)
//! feasibility oracle used to cross-validate the simplex and as the E7
//! ablation baseline.
//!
//! Unlike the simplex, FM handles strict inequalities natively, and it yields
//! a witness by back-substitution through the elimination stack.

use cr_rational::Rational;

use crate::error::LinearError;
use crate::expr::VarId;
use crate::solution::{Feasibility, Solution};
use crate::system::{Cmp, LinSystem, VarKind};

/// Budget knobs for [`solve_fm`].
#[derive(Clone, Copy, Debug)]
pub struct FmConfig {
    /// Hard cap on the number of live inequalities; elimination aborts with
    /// [`LinearError::FmBudgetExceeded`] beyond it.
    pub max_constraints: usize,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            max_constraints: 200_000,
        }
    }
}

/// An inequality `coeffs · x (<|<=) rhs` in dense form.
#[derive(Clone, Debug)]
struct Ineq {
    coeffs: Vec<Rational>,
    strict: bool,
    rhs: Rational,
}

impl Ineq {
    fn is_trivially_decided(&self) -> Option<bool> {
        if self.coeffs.iter().any(|c| !c.is_zero()) {
            return None;
        }
        let zero = Rational::zero();
        Some(if self.strict {
            zero < self.rhs
        } else {
            zero <= self.rhs
        })
    }
}

/// Decides feasibility of `sys` by Fourier–Motzkin elimination.
pub fn solve_fm(sys: &LinSystem, config: FmConfig) -> Result<Feasibility, LinearError> {
    let n = sys.num_vars();
    // Normalize everything to `coeffs · x (<|<=) rhs`.
    let mut ineqs: Vec<Ineq> = Vec::new();
    let mut push = |coeffs: Vec<Rational>, strict: bool, rhs: Rational| {
        ineqs.push(Ineq {
            coeffs,
            strict,
            rhs,
        });
    };
    for c in sys.constraints() {
        let mut coeffs = vec![Rational::zero(); n];
        for (v, coef) in c.expr.iter() {
            coeffs[v.index()] = coef.clone();
        }
        let neg = || coeffs.iter().map(|x| -x).collect::<Vec<_>>();
        match c.cmp {
            Cmp::Le => push(coeffs.clone(), false, c.rhs.clone()),
            Cmp::Lt => push(coeffs.clone(), true, c.rhs.clone()),
            Cmp::Ge => push(neg(), false, -c.rhs.clone()),
            Cmp::Gt => push(neg(), true, -c.rhs.clone()),
            Cmp::Eq => {
                push(coeffs.clone(), false, c.rhs.clone());
                push(neg(), false, -c.rhs.clone());
            }
        }
    }
    for i in 0..n {
        if sys.var_kind(VarId(i as u32)) == VarKind::Nonneg {
            let mut coeffs = vec![Rational::zero(); n];
            coeffs[i] = -Rational::one();
            push(coeffs, false, Rational::zero());
        }
    }

    // Eliminate variables n-1 .. 0, remembering each variable's live
    // constraint set for back-substitution.
    let mut stack: Vec<Vec<Ineq>> = Vec::with_capacity(n);
    for var in (0..n).rev() {
        // Constraints mentioning `var` are consumed; the rest pass through.
        let (mentioning, mut rest): (Vec<_>, Vec<_>) =
            ineqs.into_iter().partition(|q| !q.coeffs[var].is_zero());
        let mut uppers = Vec::new(); // coeff > 0:  var <= (rhs - rest)/coeff
        let mut lowers = Vec::new(); // coeff < 0:  var >= ...
        for q in &mentioning {
            if q.coeffs[var].is_positive() {
                uppers.push(q);
            } else {
                lowers.push(q);
            }
        }
        for lo in &lowers {
            for up in &uppers {
                // Combine: eliminate var from a*var + L <= r1 (a<0) and
                // b*var + U <= r2 (b>0) by scaling to cancel var.
                let a = &lo.coeffs[var]; // negative
                let b = &up.coeffs[var]; // positive
                let mut coeffs = Vec::with_capacity(n);
                for k in 0..n {
                    // b * lo - a * up has zero coefficient on var.
                    coeffs.push(b * &lo.coeffs[k] - a * &up.coeffs[k]);
                }
                debug_assert!(coeffs[var].is_zero());
                let rhs = b * &lo.rhs - a * &up.rhs;
                let combined = Ineq {
                    coeffs,
                    strict: lo.strict || up.strict,
                    rhs,
                };
                match combined.is_trivially_decided() {
                    Some(true) => {}
                    Some(false) => return Ok(Feasibility::Infeasible),
                    None => rest.push(combined),
                }
                if rest.len() > config.max_constraints {
                    return Err(LinearError::FmBudgetExceeded {
                        limit: config.max_constraints,
                    });
                }
            }
        }
        stack.push(mentioning);
        ineqs = rest;
    }

    // All variables eliminated: remaining constraints are constants.
    for q in &ineqs {
        if q.is_trivially_decided() == Some(false) {
            return Ok(Feasibility::Infeasible);
        }
    }

    // Back-substitute a witness, assigning variables 0 .. n-1 in order
    // (stack entries were pushed for var n-1 first).
    let mut values = vec![Rational::zero(); n];
    for var in 0..n {
        let mentioning = &stack[n - 1 - var];
        let mut lower: Option<(Rational, bool)> = None; // (bound, strict)
        let mut upper: Option<(Rational, bool)> = None;
        for q in mentioning {
            // q: c*var + Σ_{k>var} coeffs[k]*x_k (+ already-assigned part)
            //    (<|<=) rhs, with all k < var eliminated already and all
            //    k > var assigned.
            let mut rest = q.rhs.clone();
            for (k, coef) in q.coeffs.iter().enumerate() {
                if k != var && !coef.is_zero() {
                    rest -= coef * &values[k];
                }
            }
            let bound = &rest / &q.coeffs[var];
            if q.coeffs[var].is_positive() {
                // var <= bound
                if upper
                    .as_ref()
                    .is_none_or(|(b, s)| bound < *b || (bound == *b && q.strict && !*s))
                {
                    upper = Some((bound, q.strict));
                }
            } else {
                // var >= bound
                if lower
                    .as_ref()
                    .is_none_or(|(b, s)| bound > *b || (bound == *b && q.strict && !*s))
                {
                    lower = Some((bound, q.strict));
                }
            }
        }
        values[var] = match (&lower, &upper) {
            (None, None) => Rational::zero(),
            (Some((lo, false)), None) => lo.clone(),
            (Some((lo, true)), None) => lo + Rational::one(),
            (None, Some((hi, false))) => hi.clone(),
            (None, Some((hi, true))) => hi - Rational::one(),
            (Some((lo, _)), Some((hi, _))) => {
                debug_assert!(lo <= hi, "FM back-substitution bounds crossed");
                (lo + hi) / Rational::from_int(2)
            }
        };
    }
    debug_assert_eq!(sys.check(&values), Ok(()), "FM witness must satisfy system");
    Ok(Feasibility::Feasible(Solution::new(values)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn fm(sys: &LinSystem) -> Feasibility {
        solve_fm(sys, FmConfig::default()).unwrap()
    }

    #[test]
    fn empty_feasible() {
        assert!(fm(&LinSystem::new()).is_feasible());
    }

    #[test]
    fn simple_box() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        let y = sys.add_var(VarKind::Free);
        sys.push(LinExpr::from_terms([(x, 1), (y, 1)]), Cmp::Le, r(4));
        sys.push(LinExpr::var(x), Cmp::Ge, r(1));
        sys.push(LinExpr::var(y), Cmp::Ge, r(2));
        let Feasibility::Feasible(sol) = fm(&sys) else {
            panic!("expected feasible");
        };
        assert_eq!(sys.check(sol.values()), Ok(()));
    }

    #[test]
    fn infeasible_box() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        sys.push(LinExpr::var(x), Cmp::Ge, r(3));
        sys.push(LinExpr::var(x), Cmp::Le, r(2));
        assert_eq!(fm(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn strict_boundary() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        sys.push(LinExpr::var(x), Cmp::Ge, r(1));
        sys.push(LinExpr::var(x), Cmp::Le, r(1));
        sys.push(LinExpr::var(x), Cmp::Gt, r(0));
        let Feasibility::Feasible(sol) = fm(&sys) else {
            panic!("expected feasible");
        };
        assert_eq!(sol.value(x), r(1));

        sys.push(LinExpr::var(x), Cmp::Lt, r(1));
        assert_eq!(fm(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn equality_chains() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Free);
        let y = sys.add_var(VarKind::Free);
        let z = sys.add_var(VarKind::Free);
        sys.push(LinExpr::from_terms([(x, 1), (y, -1)]), Cmp::Eq, r(0));
        sys.push(LinExpr::from_terms([(y, 1), (z, -1)]), Cmp::Eq, r(0));
        sys.push(LinExpr::var(x), Cmp::Eq, r(7));
        let Feasibility::Feasible(sol) = fm(&sys) else {
            panic!("expected feasible");
        };
        assert_eq!(sol.value(z), r(7));
    }

    #[test]
    fn nonneg_vars_respected() {
        let mut sys = LinSystem::new();
        let x = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(x), Cmp::Le, r(-1));
        assert_eq!(fm(&sys), Feasibility::Infeasible);
    }

    #[test]
    fn budget_is_enforced() {
        // A dense system engineered to blow up; with a tiny budget FM must
        // abort rather than churn.
        let mut sys = LinSystem::new();
        let vars: Vec<_> = (0..8).map(|_| sys.add_var(VarKind::Free)).collect();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    sys.push(
                        LinExpr::from_terms([(vars[i], 1), (vars[j], -2)]),
                        Cmp::Le,
                        r(1),
                    );
                }
            }
        }
        let out = solve_fm(
            &sys,
            FmConfig {
                max_constraints: 10,
            },
        );
        assert!(matches!(out, Err(LinearError::FmBudgetExceeded { .. })));
    }
}
