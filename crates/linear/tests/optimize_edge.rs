//! Edge cases of the exact simplex optimizer: degenerate bases, equality-only
//! systems, zero objectives, and the support-maximization pattern the
//! cr-core fixpoint relies on.

use cr_linear::{
    optimize, solve, Cmp, Direction, Feasibility, LinExpr, LinSystem, OptOutcome, VarKind,
};
use cr_rational::Rational;

fn r(n: i64) -> Rational {
    Rational::from_int(n)
}

#[test]
fn zero_objective_returns_any_feasible_point() {
    let mut sys = LinSystem::new();
    let x = sys.add_var(VarKind::Nonneg);
    sys.push(LinExpr::var(x), Cmp::Ge, r(3));
    sys.push(LinExpr::var(x), Cmp::Le, r(7));
    let out = optimize(&sys, &LinExpr::new(), Direction::Minimize).unwrap();
    let OptOutcome::Optimal { value, solution } = out else {
        panic!("expected optimal");
    };
    assert_eq!(value, r(0));
    assert!(solution.value(x) >= r(3) && solution.value(x) <= r(7));
}

#[test]
fn equality_only_system() {
    // x + y = 10, x - y = 4  =>  x = 7, y = 3.
    let mut sys = LinSystem::new();
    let x = sys.add_var(VarKind::Free);
    let y = sys.add_var(VarKind::Free);
    sys.push(LinExpr::from_terms([(x, 1), (y, 1)]), Cmp::Eq, r(10));
    sys.push(LinExpr::from_terms([(x, 1), (y, -1)]), Cmp::Eq, r(4));
    let out = optimize(&sys, &LinExpr::var(x), Direction::Maximize).unwrap();
    let OptOutcome::Optimal { value, solution } = out else {
        panic!("expected optimal");
    };
    assert_eq!(value, r(7));
    assert_eq!(solution.value(y), r(3));
}

#[test]
fn objective_on_unconstrained_free_variable_is_unbounded_both_ways() {
    let mut sys = LinSystem::new();
    let x = sys.add_var(VarKind::Free);
    sys.push(LinExpr::var(x), Cmp::Ge, r(-100)); // still unbounded above
    assert_eq!(
        optimize(&sys, &LinExpr::var(x), Direction::Maximize).unwrap(),
        OptOutcome::Unbounded
    );
    let mut sys2 = LinSystem::new();
    let y = sys2.add_var(VarKind::Free);
    sys2.push(LinExpr::var(y), Cmp::Le, r(100)); // unbounded below
    assert_eq!(
        optimize(&sys2, &LinExpr::var(y), Direction::Minimize).unwrap(),
        OptOutcome::Unbounded
    );
}

#[test]
fn support_maximization_pattern() {
    // The cr-core fixpoint shape: homogeneous cone rows plus capped
    // indicators; the optimum must reveal exactly the supportable vars.
    // Cone: a <= 2b, b <= 2a (a, b tied together); c forced to 0 by c <= 0.
    let mut sys = LinSystem::new();
    let a = sys.add_var(VarKind::Nonneg);
    let b = sys.add_var(VarKind::Nonneg);
    let c = sys.add_var(VarKind::Nonneg);
    sys.push(LinExpr::from_terms([(a, 1), (b, -2)]), Cmp::Le, r(0));
    sys.push(LinExpr::from_terms([(b, 1), (a, -2)]), Cmp::Le, r(0));
    sys.push(LinExpr::var(c), Cmp::Le, r(0));

    let mut objective = LinExpr::new();
    for &v in &[a, b, c] {
        let t = sys.add_var(VarKind::Nonneg);
        sys.push(LinExpr::var(t), Cmp::Le, r(1));
        let mut e = LinExpr::var(v);
        e.add_term(t, -Rational::one());
        sys.push(e, Cmp::Ge, r(0));
        objective.add_term(t, Rational::one());
    }
    let out = optimize(&sys, &objective, Direction::Maximize).unwrap();
    let OptOutcome::Optimal { value, solution } = out else {
        panic!("expected optimal");
    };
    assert_eq!(value, r(2), "exactly a and b are supportable");
    assert!(solution.value(a) >= r(1));
    assert!(solution.value(b) >= r(1));
    assert_eq!(solution.value(c), r(0));
}

#[test]
fn alternating_tight_constraints_degeneracy() {
    // Many constraints active at the optimum (degenerate vertex); Bland's
    // rule must terminate and agree with the hand solution.
    let mut sys = LinSystem::new();
    let x = sys.add_var(VarKind::Nonneg);
    let y = sys.add_var(VarKind::Nonneg);
    for k in 1..=6i64 {
        // k*x + y <= k (all pass through (1, 0)).
        sys.push(LinExpr::from_terms([(x, k), (y, 1)]), Cmp::Le, r(k));
    }
    let obj = LinExpr::from_terms([(x, 1), (y, 1)]);
    let out = optimize(&sys, &obj, Direction::Maximize).unwrap();
    let OptOutcome::Optimal { value, .. } = out else {
        panic!("expected optimal");
    };
    // max x+y: candidates (1,0) -> 1 and (0,1) -> 1; both optimal.
    assert_eq!(value, r(1));
}

#[test]
fn rational_coefficients_exactness() {
    // 1/3 x + 1/7 y = 1 with x = y  =>  x = 21/10: exact arithmetic only.
    let mut sys = LinSystem::new();
    let x = sys.add_var(VarKind::Nonneg);
    let y = sys.add_var(VarKind::Nonneg);
    let mut e = LinExpr::new();
    e.add_term(x, Rational::new(1, 3));
    e.add_term(y, Rational::new(1, 7));
    sys.push(e, Cmp::Eq, r(1));
    sys.push(LinExpr::from_terms([(x, 1), (y, -1)]), Cmp::Eq, r(0));
    let Feasibility::Feasible(sol) = solve(&sys) else {
        panic!("expected feasible");
    };
    assert_eq!(sol.value(x), Rational::new(21, 10));
}

#[test]
fn redundant_equalities_dropped_not_fatal() {
    let mut sys = LinSystem::new();
    let x = sys.add_var(VarKind::Nonneg);
    for _ in 0..5 {
        sys.push(LinExpr::var(x), Cmp::Eq, r(4));
    }
    let out = optimize(&sys, &LinExpr::var(x), Direction::Minimize).unwrap();
    let OptOutcome::Optimal { value, .. } = out else {
        panic!("expected optimal");
    };
    assert_eq!(value, r(4));
}
