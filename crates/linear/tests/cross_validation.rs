//! Cross-validation: the exact simplex and Fourier–Motzkin are independent
//! implementations and must agree on feasibility of random small systems;
//! every witness must check out against the original constraints.

use cr_linear::{
    optimize, solve, solve_fm, Cmp, Direction, Feasibility, FmConfig, LinExpr, LinSystem,
    OptOutcome, VarKind,
};
use cr_rational::Rational;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomSystem {
    sys: LinSystem,
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Le),
        Just(Cmp::Lt),
        Just(Cmp::Eq),
        Just(Cmp::Ge),
        Just(Cmp::Gt),
    ]
}

fn arb_system(max_vars: usize, max_cons: usize) -> impl Strategy<Value = RandomSystem> {
    (1..=max_vars).prop_flat_map(move |nv| {
        let constraint = (
            proptest::collection::vec((-4i64..=4, 0..nv), 1..=nv.min(3)),
            cmp_strategy(),
            -6i64..=6,
        );
        (
            proptest::collection::vec(any::<bool>(), nv),
            proptest::collection::vec(constraint, 0..=max_cons),
        )
            .prop_map(move |(kinds, cons)| {
                let mut sys = LinSystem::new();
                let vars: Vec<_> = kinds
                    .iter()
                    .map(|&nn| sys.add_var(if nn { VarKind::Nonneg } else { VarKind::Free }))
                    .collect();
                for (terms, cmp, rhs) in cons {
                    let mut e = LinExpr::new();
                    for (c, vi) in terms {
                        e.add_term(vars[vi], Rational::from_int(c));
                    }
                    sys.push(e, cmp, Rational::from_int(rhs));
                }
                RandomSystem { sys }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn simplex_agrees_with_fm(rs in arb_system(4, 6)) {
        let fm = solve_fm(&rs.sys, FmConfig::default())
            .expect("budget ample for 4-var systems");
        let sx = solve(&rs.sys);
        prop_assert_eq!(
            fm.is_feasible(),
            sx.is_feasible(),
            "engines disagree on:\n{}",
            rs.sys
        );
        if let Feasibility::Feasible(sol) = &sx {
            prop_assert_eq!(rs.sys.check(sol.values()), Ok(()));
        }
        if let Feasibility::Feasible(sol) = &fm {
            prop_assert_eq!(rs.sys.check(sol.values()), Ok(()));
        }
    }

    #[test]
    fn optimum_is_feasible_and_bounds_hold(rs in arb_system(3, 5)) {
        prop_assume!(!rs.sys.has_strict());
        let mut obj = LinExpr::new();
        for i in 0..rs.sys.num_vars() {
            obj.add_term(cr_linear::VarId(i as u32), Rational::from_int(1));
        }
        match optimize(&rs.sys, &obj, Direction::Maximize).unwrap() {
            OptOutcome::Infeasible => {
                prop_assert!(!solve(&rs.sys).is_feasible());
            }
            OptOutcome::Unbounded => {
                prop_assert!(solve(&rs.sys).is_feasible());
            }
            OptOutcome::Optimal { value, solution } => {
                prop_assert_eq!(rs.sys.check(solution.values()), Ok(()));
                prop_assert_eq!(obj.eval(solution.values()), value.clone());
                // Any feasible point found by the other engine must not
                // beat the claimed optimum.
                if let Ok(Feasibility::Feasible(other)) =
                    solve_fm(&rs.sys, FmConfig::default())
                {
                    prop_assert!(obj.eval(other.values()) <= value);
                }
            }
        }
    }

    #[test]
    fn homogeneous_scaling_preserves(rs in arb_system(4, 6)) {
        // Rebuild the system with all RHS forced to zero: for homogeneous
        // systems, integer scaling of a witness is again a witness.
        let mut hom = LinSystem::new();
        for i in 0..rs.sys.num_vars() {
            hom.add_var(rs.sys.var_kind(cr_linear::VarId(i as u32)));
        }
        for c in rs.sys.constraints() {
            hom.push(c.expr.clone(), c.cmp, Rational::zero());
        }
        if let Feasibility::Feasible(sol) = solve(&hom) {
            let (ints, _factor) = sol.scale_to_integers();
            let as_rat: Vec<Rational> =
                ints.into_iter().map(Rational::from_int).collect();
            prop_assert_eq!(hom.check(&as_rat), Ok(()));
        }
    }
}
