//! Minimal, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses (`StdRng::seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this tiny deterministic implementation instead. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for workload
//! generation and property tests, **not** cryptographic. Streams are stable
//! across platforms and releases, which the benches rely on for reproducible
//! workloads (identical seeds must describe identical schemas forever).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `i128` (every supported type fits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the value is guaranteed to be in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Low bound and span (number of values) of the range. Panics when
    /// empty. The span is computed with wrapping arithmetic so ranges near
    /// the `i128` extremes stay representable.
    fn bounds(&self) -> (i128, u128);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (i128, u128) {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample from empty range");
        (lo, hi.wrapping_sub(lo) as u128)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (i128, u128) {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = (hi.wrapping_sub(lo) as u128)
            .checked_add(1)
            .expect("full i128 range is not supported");
        (lo, span)
    }
}

/// Types [`Rng::gen`] can sample uniformly over their whole domain
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// A uniform sample built from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform sample from `range`.
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, span) = range.bounds();
        // The tiny modulo bias of a 128-bit reduction is irrelevant for
        // workload generation.
        let wide = (self.next_u64() as u128) | ((self.next_u64() as u128) << 64);
        T::from_i128(lo.wrapping_add((wide % span) as i128))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for `rand`'s
    /// `StdRng`; streams differ from upstream, which nothing here relies
    /// on).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let u = rng.gen_range(0u64..=0);
            assert_eq!(u, 0);
            let huge = rng.gen_range(-(1i128 << 100)..(1i128 << 100));
            assert!((-(1i128 << 100)..(1i128 << 100)).contains(&huge));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn next_u64_import_works_via_rng_trait() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(3);
        let _ = RngCore::next_u64(&mut rng);
    }
}
