//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
//!
//! The store is zero-dep by design, so the checksum is hand-rolled. The
//! algorithm is the ubiquitous one used by zlib/gzip/PNG: any external
//! tool can therefore validate record frames written by [`crate::log`].

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (full init/finalize — equivalent to zlib's
/// `crc32(0, bytes)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"payload under test".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupt),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
