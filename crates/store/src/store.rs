//! Durable key→value store over the append-only [`RecordLog`].
//!
//! Each `put` appends one record (`klen:u32le key value`); the latest
//! record for a key wins on replay. When the log grows past the
//! compaction threshold *and* carries more than ~2× the live payload, the
//! store snapshots the live set to a staged sibling file and renames it
//! over the log — the rename is the commit point, so a crash during
//! compaction leaves either the old log or the complete snapshot, never a
//! mix.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::atomic;
use crate::log::{self, RecordLog, Replay, FRAME_OVERHEAD, MAGIC};
use crate::vfs::{std_vfs, Vfs};

/// Default compaction threshold: don't bother below 1 MiB of log.
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

/// Outcome of a [`Store::put`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// True when this put triggered a snapshot compaction.
    pub compacted: bool,
}

/// Counters describing the store's life so far (monotonic per open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records replayed intact at open.
    pub recovered_records: u64,
    /// Bytes discarded from the tail at open (torn/corrupt frames).
    pub truncated_bytes: u64,
    /// True when the file header was unrecognized and the log rebuilt.
    pub rebuilt: bool,
    /// `put` calls since open.
    pub appends: u64,
    /// Snapshot compactions since open.
    pub compactions: u64,
}

/// A single-writer durable map. Thread safety is the caller's concern
/// (the server wraps it in a `Mutex`); the store itself is deliberately
/// free of locking so it can be exercised deterministically in tests.
#[derive(Debug)]
pub struct Store {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    log: RecordLog,
    index: HashMap<Vec<u8>, Vec<u8>>,
    /// Bytes the live set would occupy if compacted now.
    live_bytes: u64,
    compact_threshold: u64,
    stats: StoreStats,
}

impl Store {
    /// Opens (creating if needed) the store at `path` with the default
    /// compaction threshold.
    pub fn open(path: &Path) -> io::Result<Store> {
        Store::open_with_threshold(path, DEFAULT_COMPACT_THRESHOLD)
    }

    /// Opens with an explicit compaction threshold (tests use tiny ones).
    pub fn open_with_threshold(path: &Path, compact_threshold: u64) -> io::Result<Store> {
        Store::open_on(std_vfs(), path, compact_threshold)
    }

    /// Opens against an explicit filesystem (the simulation swaps in a
    /// virtual disk here; the other constructors delegate with
    /// [`crate::vfs::StdVfs`]).
    pub fn open_on(vfs: Arc<dyn Vfs>, path: &Path, compact_threshold: u64) -> io::Result<Store> {
        let (log, replay) = RecordLog::open_on(vfs.as_ref(), path)?;
        let mut store = Store {
            vfs,
            path: path.to_path_buf(),
            log,
            index: HashMap::new(),
            live_bytes: 0,
            compact_threshold,
            stats: StoreStats {
                recovered_records: replay.payloads.len() as u64,
                truncated_bytes: replay.truncated_bytes,
                rebuilt: replay.rebuilt,
                ..StoreStats::default()
            },
        };
        store.replay(replay);
        Ok(store)
    }

    fn replay(&mut self, replay: Replay) {
        for payload in replay.payloads {
            if let Some((key, value)) = decode_entry(&payload) {
                self.index_insert(key.to_vec(), value.to_vec());
            }
            // An undecodable payload passed its CRC, so it is not
            // corruption but a future format we don't understand; skip it
            // rather than discard the records after it.
        }
    }

    fn index_insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let key_len = key.len() as u64;
        self.live_bytes += entry_bytes(&key, &value);
        if let Some(old) = self.index.insert(key, value) {
            self.live_bytes -= FRAME_OVERHEAD + 4 + key_len + old.len() as u64;
        }
    }

    /// Looks up the latest value for `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.index.get(key).map(Vec::as_slice)
    }

    /// Iterates the live entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.index.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Durable upsert. The record is appended (and the in-memory index
    /// updated) immediately; call [`Store::sync`] to force it to disk.
    /// May trigger a compaction when the log has outgrown its live set.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<PutOutcome> {
        let mut payload = Vec::with_capacity(4 + key.len() + value.len());
        encode_entry(key, value, &mut payload);
        self.log.append(&payload)?;
        self.stats.appends += 1;
        self.index_insert(key.to_vec(), value.to_vec());
        let compacted = self.maybe_compact()?;
        Ok(PutOutcome { compacted })
    }

    /// Forces all appended records to stable storage (fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync()
    }

    /// Compacts when the log exceeds the threshold and more than half of
    /// it is dead weight (overwritten records).
    fn maybe_compact(&mut self) -> io::Result<bool> {
        if self.log.len() <= self.compact_threshold || self.log.len() < self.live_bytes * 2 {
            return Ok(false);
        }
        self.compact()?;
        Ok(true)
    }

    /// Snapshots the live set to a staged file and renames it over the
    /// log. On any error the old log (and the in-memory index) remain
    /// authoritative.
    pub fn compact(&mut self) -> io::Result<()> {
        let mut image = Vec::with_capacity(MAGIC.len() + self.live_bytes as usize);
        image.extend_from_slice(MAGIC);
        for (key, value) in &self.index {
            let mut payload = Vec::with_capacity(4 + key.len() + value.len());
            encode_entry(key, value, &mut payload);
            log::encode_record(&payload, &mut image);
        }
        let snapshot_len = image.len() as u64;
        let (file, staged) = atomic::write_staged_on(self.vfs.as_ref(), &self.path, &image)?;
        atomic::commit_rename_on(self.vfs.as_ref(), &staged, &self.path)?;
        // The staged handle is now the live log (rename preserves the
        // inode); keep appending to it.
        self.log = RecordLog::from_parts(file, snapshot_len)?;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Bytes currently occupied by the on-disk log.
    pub fn log_bytes(&self) -> u64 {
        self.log.len()
    }

    /// Replication epoch: compaction rewrites the log in place, so byte
    /// offsets from before a compaction are meaningless after it. A
    /// standby echoes the epoch it is streaming under; a mismatch tells
    /// the primary to order a full resync instead of serving bytes that
    /// would splice two incompatible log images.
    pub fn epoch(&self) -> u64 {
        self.stats.compactions
    }

    /// Reads up to `max_len` raw log bytes starting at byte `offset`
    /// (0 = start of file, magic included), for shipping to a standby.
    /// Returns the bytes and the current log length. Reads through a
    /// fresh handle so the append position is untouched; only bytes
    /// below the recovered/appended length are served (a torn tail past
    /// it is never shipped).
    pub fn read_range(&self, offset: u64, max_len: usize) -> io::Result<(Vec<u8>, u64)> {
        let len = self.log.len();
        if offset >= len {
            return Ok((Vec::new(), len));
        }
        let take = usize::try_from(len - offset)
            .unwrap_or(usize::MAX)
            .min(max_len);
        let buf = self.vfs.read_range(&self.path, offset, take)?;
        Ok((buf, len))
    }

    /// Lifetime counters for this open.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// On-disk footprint of one framed entry.
fn entry_bytes(key: &[u8], value: &[u8]) -> u64 {
    FRAME_OVERHEAD + 4 + key.len() as u64 + value.len() as u64
}

fn encode_entry(key: &[u8], value: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
}

/// Decodes one store record payload (`klen:u32le key value`) back into
/// its key and value. Public for replication: a standby decodes the
/// payloads streamed off the primary's log to warm its own cache.
pub fn decode_entry(payload: &[u8]) -> Option<(&[u8], &[u8])> {
    let klen = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
    let key = payload.get(4..4 + klen)?;
    let value = payload.get(4 + klen..)?;
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-store-kv-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("store.log")
    }

    #[test]
    fn put_get_survives_reopen() {
        let path = tmp("reopen");
        {
            let mut store = Store::open(&path).expect("open");
            store.put(b"k1", b"v1").expect("put");
            store.put(b"k2", b"v2").expect("put");
            store.put(b"k1", b"v1-updated").expect("overwrite");
            store.sync().expect("sync");
        }
        let store = Store::open(&path).expect("reopen");
        assert_eq!(store.get(b"k1"), Some(b"v1-updated".as_ref()));
        assert_eq!(store.get(b"k2"), Some(b"v2".as_ref()));
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().recovered_records, 3);
        assert_eq!(store.stats().truncated_bytes, 0);
    }

    #[test]
    fn overwrites_trigger_compaction_past_threshold() {
        let path = tmp("compact");
        let mut store = Store::open_with_threshold(&path, 256).expect("open");
        let mut compactions = 0;
        for round in 0..64u32 {
            let out = store
                .put(b"hot-key", format!("value-{round:04}").as_bytes())
                .expect("put");
            if out.compacted {
                compactions += 1;
            }
        }
        assert!(compactions >= 1, "threshold crossing must compact");
        assert_eq!(store.stats().compactions, compactions);
        // The compacted log holds exactly the live set.
        assert!(store.log_bytes() < 256 + 64);
        store.sync().expect("sync");
        let reopened = Store::open(&path).expect("reopen after compaction");
        assert_eq!(reopened.get(b"hot-key"), Some(b"value-0063".as_ref()));
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_compact_needlessly() {
        let path = tmp("nodead");
        let mut store = Store::open_with_threshold(&path, 64).expect("open");
        for i in 0..32u32 {
            let out = store
                .put(format!("key-{i}").as_bytes(), b"payload-payload")
                .expect("put");
            // All entries are live: compaction would save nothing, so the
            // 2x dead-weight guard must keep it off even past threshold.
            assert!(!out.compacted, "compacted a log with no dead records");
        }
        assert_eq!(store.stats().compactions, 0);
    }

    #[test]
    fn torn_tail_loses_only_the_last_record() {
        let path = tmp("torn");
        {
            let mut store = Store::open(&path).expect("open");
            store.put(b"a", b"1").expect("put");
            store.put(b"b", b"2").expect("put");
            store.put(b"c", b"3").expect("put");
            store.sync().expect("sync");
        }
        // Tear the final record by chopping 2 bytes off the file.
        let image = std::fs::read(&path).expect("read");
        std::fs::write(&path, &image[..image.len() - 2]).expect("tear");

        let store = Store::open(&path).expect("recover");
        assert_eq!(store.get(b"a"), Some(b"1".as_ref()));
        assert_eq!(store.get(b"b"), Some(b"2".as_ref()));
        assert_eq!(store.get(b"c"), None, "torn record must not resurrect");
        assert!(store.stats().truncated_bytes > 0);
    }

    #[test]
    fn binary_keys_and_values_roundtrip() {
        let path = tmp("binary");
        let key: Vec<u8> = (0..=255u8).collect();
        let value = vec![0u8, 10, 13, 34, 92, 255];
        {
            let mut store = Store::open(&path).expect("open");
            store.put(&key, &value).expect("put");
            store.sync().expect("sync");
        }
        let store = Store::open(&path).expect("reopen");
        assert_eq!(store.get(&key), Some(value.as_slice()));
    }

    #[test]
    fn compaction_preserves_every_live_entry() {
        let path = tmp("compact-all");
        let mut store = Store::open_with_threshold(&path, 64).expect("open");
        for i in 0..24u32 {
            store
                .put(format!("k{}", i % 6).as_bytes(), format!("v{i}").as_bytes())
                .expect("put");
        }
        store.compact().expect("explicit compaction");
        store.sync().expect("sync");
        let reopened = Store::open(&path).expect("reopen");
        assert_eq!(reopened.len(), 6);
        for i in 0..6u32 {
            assert_eq!(
                reopened.get(format!("k{i}").as_bytes()),
                Some(format!("v{}", 18 + i).as_bytes()),
                "key k{i} lost or stale after compaction"
            );
        }
    }
}
