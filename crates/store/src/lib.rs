//! Crash-safe persistence primitives for the reasoning stack.
//!
//! Zero external dependencies (only the in-tree [`cr_faults`] failpoints),
//! `std`-only, no `unsafe`. Three layers:
//!
//! * [`crc`] — hand-rolled CRC-32 (IEEE), the integrity check on every
//!   record frame;
//! * [`vfs`] — the filesystem seam: every byte the crate persists flows
//!   through a [`vfs::Vfs`], so the deterministic simulation (`cr-sim`)
//!   can substitute a virtual disk with scheduled faults while
//!   production runs on [`vfs::StdVfs`];
//! * [`atomic`] — write-temp-then-rename whole-file replacement, the
//!   commit primitive for compaction snapshots, checkpoints, and the
//!   CLI's `--port-file`;
//! * [`log`] / [`store`] — an append-only CRC-framed record log with
//!   torn-tail recovery, and a durable key→value map on top of it with
//!   size-triggered snapshot compaction.
//!
//! Design rules (see DESIGN.md §13):
//!
//! * **Tolerate, never trust.** Recovery truncates at the first frame
//!   that fails its length or CRC check instead of erroring: a crashed
//!   writer costs at most the record it was writing.
//! * **Rename is the only commit.** Compaction and checkpoint writes go
//!   through a staged sibling file + `rename(2)`, so readers observe the
//!   old image or the new one, never a mix.
//! * **Callers decide what is safe to persist.** The store moves opaque
//!   bytes; the server only hands it verdicts that passed
//!   `cr_core::certify`, which is what makes a recovered log trustworthy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod crc;
pub mod log;
pub mod replica;
pub mod store;
pub mod vfs;

pub use atomic::{write_atomic, write_atomic_on};
pub use crc::crc32;
pub use log::{scrub_image, RecordLog, Replay};
pub use replica::{ApplyOutcome, Replica};
pub use store::{decode_entry, PutOutcome, Store, StoreStats, DEFAULT_COMPACT_THRESHOLD};
pub use vfs::{std_vfs, StdVfs, Vfs, VfsFile};
