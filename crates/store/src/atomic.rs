//! Atomic whole-file replacement: write a temp file, fsync, rename.
//!
//! Readers of the target path either see the complete old contents or the
//! complete new contents, never a partial write — the guarantee the CLI
//! relies on for `--port-file` and checkpoint files, and the store for
//! snapshot compaction.

use std::io;
use std::path::{Path, PathBuf};

use crate::vfs::{StdVfs, Vfs, VfsFile};

/// The sibling temp path used for the staged write. Kept deterministic
/// (no PID/timestamp) so a crashed writer's leftovers are simply
/// overwritten by the next attempt instead of accumulating.
pub fn staging_path(target: &Path) -> PathBuf {
    let mut name = target
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "atomic".into());
    name.push(".tmp");
    target.with_file_name(name)
}

/// Writes `bytes` to `target` atomically: stage in a sibling temp file,
/// fsync it, then rename over the target. The rename is the commit point.
pub fn write_atomic(target: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_on(&StdVfs, target, bytes)
}

/// [`write_atomic`] against an explicit filesystem.
pub fn write_atomic_on(vfs: &dyn Vfs, target: &Path, bytes: &[u8]) -> io::Result<()> {
    let staged = write_staged_on(vfs, target, bytes)?;
    commit_rename_on(vfs, &staged.1, target)?;
    Ok(())
}

/// Stage-only half of [`write_atomic`]: returns the synced open file and
/// its temp path so callers (compaction) can keep the handle after the
/// rename — the renamed file is the same inode.
pub fn write_staged(target: &Path, bytes: &[u8]) -> io::Result<(Box<dyn VfsFile>, PathBuf)> {
    write_staged_on(&StdVfs, target, bytes)
}

/// [`write_staged`] against an explicit filesystem.
pub fn write_staged_on(
    vfs: &dyn Vfs,
    target: &Path,
    bytes: &[u8],
) -> io::Result<(Box<dyn VfsFile>, PathBuf)> {
    let tmp = staging_path(target);
    let mut file = vfs.open_truncated(&tmp)?;
    file.write_all(bytes)?;
    cr_faults::point!("store.append.sync", |p: Option<String>| Err(injected(p)));
    file.sync_all()?;
    Ok((file, tmp))
}

/// Commit half of [`write_atomic`]: rename the staged file over the
/// target. Carries the `store.compact.rename` failpoint.
pub fn commit_rename(staged: &Path, target: &Path) -> io::Result<()> {
    commit_rename_on(&StdVfs, staged, target)
}

/// [`commit_rename`] against an explicit filesystem.
pub fn commit_rename_on(vfs: &dyn Vfs, staged: &Path, target: &Path) -> io::Result<()> {
    cr_faults::point!("store.compact.rename", |p: Option<String>| Err(injected(p)));
    vfs.rename(staged, target)
}

/// The error produced when a failpoint fires on a store I/O site.
/// (Only referenced from `point!` expansions, which compile away in
/// inert builds.)
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
pub(crate) fn injected(payload: Option<String>) -> io::Error {
    io::Error::other(format!(
        "injected fault: {}",
        payload.unwrap_or_else(|| "store".to_string())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cr-store-atomic-{tag}-{:x}", seed(tag)));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn seed(tag: &str) -> u64 {
        // Derive a stable per-test dir name without wall-clock entropy.
        tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        })
    }

    #[test]
    fn replaces_existing_contents_atomically() {
        let dir = tmp_dir("replace");
        let target = dir.join("port");
        write_atomic(&target, b"old\n").expect("first write");
        write_atomic(&target, b"new\n").expect("second write");
        assert_eq!(std::fs::read(&target).expect("read back"), b"new\n");
        // The staging file must not linger after a successful commit.
        assert!(!staging_path(&target).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_staging_leftovers_are_overwritten() {
        let dir = tmp_dir("stale");
        let target = dir.join("out");
        std::fs::write(staging_path(&target), b"crashed writer leftovers").expect("plant stale");
        write_atomic(&target, b"fresh").expect("write over stale staging");
        assert_eq!(std::fs::read(&target).expect("read back"), b"fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
