//! Standby-side mirror of a primary's record log.
//!
//! A [`Replica`] receives raw byte ranges of the primary's verdict log
//! (shipped by the `replicate` protocol op) and appends them verbatim to
//! a local file, so the mirror is byte-identical to the primary's log up
//! to the replicated offset. Because the log format is self-validating
//! (CRC-framed records, torn-tail recovery), the mirror can be opened as
//! a normal [`crate::Store`] at promotion time with no extra bookkeeping:
//! a partially shipped frame at the tail is truncated exactly like a
//! torn write would be.
//!
//! While streaming, the replica also decodes every *complete* frame it
//! receives and hands the payloads back to the caller, so a standby can
//! warm its in-memory cache continuously instead of replaying the whole
//! log at promotion.
//!
//! Resync rules (any of these forces a restart from offset 0):
//!
//! * the primary reports a different epoch than the one we are streaming
//!   under (it compacted, so our offsets are meaningless);
//! * the primary's log is shorter than our mirror (it restarted or
//!   compacted);
//! * a received frame fails its CRC or length check (we spliced into an
//!   incompatible image — the CRC backstop catches what the epoch check
//!   misses).

use std::io;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::log::{scan_frames, FRAME_OVERHEAD, MAGIC, MAX_RECORD_LEN};
use crate::vfs::{StdVfs, Vfs, VfsFile};

/// What applying one shipped chunk produced.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Payloads of every frame completed by this chunk, in log order.
    pub payloads: Vec<Vec<u8>>,
    /// True when the replica discarded its mirror and restarted from
    /// offset 0 (epoch change, shrunken primary log, or CRC mismatch).
    /// The caller should also drop any state derived from the old
    /// mirror— the next poll re-streams everything.
    pub resynced: bool,
}

/// A byte-level mirror of a primary's record log.
#[derive(Debug)]
pub struct Replica {
    path: PathBuf,
    file: Box<dyn VfsFile>,
    /// Mirrored bytes so far (= the next offset to request).
    len: u64,
    /// Bytes received but not yet forming a complete frame.
    undecoded: Vec<u8>,
    /// Whether the 8-byte magic is still owed at the head of the stream.
    need_magic: bool,
    /// The primary epoch the current mirror was streamed under (`None`
    /// until the first chunk arrives, or after a local restart).
    epoch: Option<u64>,
}

impl Replica {
    /// Opens (creating if absent) the mirror file at `path`, validates
    /// the existing image frame-by-frame, truncates any torn tail, and
    /// returns the replica plus the payloads of every intact record (for
    /// cache rehydration).
    pub fn open(path: &Path) -> io::Result<(Replica, Vec<Vec<u8>>)> {
        Replica::open_on(&StdVfs, path)
    }

    /// [`Replica::open`] against an explicit filesystem.
    pub fn open_on(vfs: &dyn Vfs, path: &Path) -> io::Result<(Replica, Vec<Vec<u8>>)> {
        let mut file = vfs.open_rw(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut payloads = Vec::new();
        let valid = if bytes.is_empty() || !bytes.starts_with(MAGIC) {
            // An unrecognized image cannot be a mirror of any primary;
            // restart from nothing (the magic arrives over the wire).
            file.set_len(0)?;
            0
        } else {
            let valid = scan_frames(&bytes, &mut payloads);
            if valid < bytes.len() as u64 {
                file.set_len(valid)?;
            }
            valid
        };
        file.seek_to(valid)?;
        Ok((
            Replica {
                path: path.to_path_buf(),
                file,
                len: valid,
                undecoded: Vec::new(),
                need_magic: valid == 0,
                epoch: None,
            },
            payloads,
        ))
    }

    /// The next byte offset this replica wants from the primary.
    pub fn offset(&self) -> u64 {
        self.len
    }

    /// The epoch the current mirror is streamed under, if known.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// The mirror file's path (the store opened at promotion).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Applies one shipped chunk. `offset`/`epoch` are the primary's
    /// claims for this chunk; `reset` is the primary ordering a resync
    /// (it detected our offset or epoch is stale).
    pub fn apply(
        &mut self,
        offset: u64,
        epoch: u64,
        reset: bool,
        bytes: &[u8],
    ) -> io::Result<ApplyOutcome> {
        cr_faults::point!("server.repl.apply", |p: Option<String>| Err(
            crate::atomic::injected(p)
        ));
        if reset || self.epoch.is_some_and(|e| e != epoch) {
            self.restart()?;
            self.epoch = Some(epoch);
            return Ok(ApplyOutcome {
                payloads: Vec::new(),
                resynced: true,
            });
        }
        self.epoch = Some(epoch);
        if offset != self.len || bytes.is_empty() {
            // Stale or duplicate chunk: ignore; the caller re-requests at
            // `offset()`.
            return Ok(ApplyOutcome::default());
        }
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        self.undecoded.extend_from_slice(bytes);
        match self.drain_frames() {
            Some(payloads) => Ok(ApplyOutcome {
                payloads,
                resynced: false,
            }),
            None => {
                // Frame-level corruption: we spliced into an incompatible
                // image. Discard the mirror; next poll restarts at 0.
                self.restart()?;
                Ok(ApplyOutcome {
                    payloads: Vec::new(),
                    resynced: true,
                })
            }
        }
    }

    /// Forces mirrored bytes to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn restart(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek_to(0)?;
        self.len = 0;
        self.undecoded.clear();
        self.need_magic = true;
        self.epoch = None;
        Ok(())
    }

    /// Extracts complete frames from the undecoded buffer. `None` means
    /// the stream is corrupt (bad magic, implausible length, CRC fail).
    fn drain_frames(&mut self) -> Option<Vec<Vec<u8>>> {
        let mut payloads = Vec::new();
        let mut pos = 0usize;
        if self.need_magic {
            if self.undecoded.len() < MAGIC.len() {
                return Some(payloads);
            }
            if &self.undecoded[..MAGIC.len()] != MAGIC {
                return None;
            }
            self.need_magic = false;
            pos = MAGIC.len();
        }
        while let Some(header) = self.undecoded.get(pos..pos + FRAME_OVERHEAD as usize) {
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                return None;
            }
            let body_start = pos + FRAME_OVERHEAD as usize;
            let Some(payload) = self.undecoded.get(body_start..body_start + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                return None;
            }
            payloads.push(payload.to_vec());
            pos = body_start + len as usize;
        }
        self.undecoded.drain(..pos);
        Some(payloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{decode_entry, Store};

    fn tmp(tag: &str) -> PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-store-replica-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// Ship the primary's whole log to the replica in `chunk`-byte slices.
    fn ship_all(primary: &Store, replica: &mut Replica, chunk: usize) -> Vec<Vec<u8>> {
        let mut decoded = Vec::new();
        loop {
            let (bytes, _len) = primary.read_range(replica.offset(), chunk).expect("read");
            if bytes.is_empty() {
                break;
            }
            let out = replica
                .apply(replica.offset(), primary.epoch(), false, &bytes)
                .expect("apply");
            assert!(!out.resynced, "in-sync shipping must not resync");
            decoded.extend(out.payloads);
        }
        decoded
    }

    #[test]
    fn mirror_is_byte_identical_and_promotable() {
        let dir = tmp("mirror");
        let primary_path = dir.join("primary.log");
        let mirror_path = dir.join("mirror.log");
        let mut primary = Store::open(&primary_path).expect("open primary");
        for i in 0..20u32 {
            primary
                .put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .expect("put");
        }
        primary.sync().expect("sync");

        let (mut replica, warm) = Replica::open(&mirror_path).expect("open replica");
        assert!(warm.is_empty());
        // Odd chunk size: frames arrive split across chunk boundaries.
        let decoded = ship_all(&primary, &mut replica, 37);
        assert_eq!(decoded.len(), 20);
        replica.sync().expect("sync");
        assert_eq!(
            std::fs::read(&primary_path).unwrap(),
            std::fs::read(&mirror_path).unwrap(),
            "mirror must be byte-identical"
        );

        // Promotion: the mirror opens as a normal store with every entry.
        let promoted = Store::open(&mirror_path).expect("promote");
        assert_eq!(promoted.len(), 20);
        assert_eq!(promoted.get(b"k7"), Some(b"v7".as_ref()));
    }

    #[test]
    fn reopen_resumes_from_the_valid_prefix() {
        let dir = tmp("resume");
        let primary_path = dir.join("primary.log");
        let mirror_path = dir.join("mirror.log");
        let mut primary = Store::open(&primary_path).expect("open primary");
        for i in 0..8u32 {
            primary
                .put(format!("k{i}").as_bytes(), b"value")
                .expect("put");
        }

        let (mut replica, _) = Replica::open(&mirror_path).expect("open");
        // Ship only part of the log, splitting the final frame.
        let (bytes, _) = primary.read_range(0, 100).expect("read");
        replica.apply(0, 0, false, &bytes).expect("apply");
        let resumed_at = replica.offset();
        drop(replica);

        let (mut replica, warm) = Replica::open(&mirror_path).expect("reopen");
        // The torn tail (partial frame) is truncated; complete frames stay.
        assert!(replica.offset() <= resumed_at);
        assert!(!warm.is_empty());
        for payload in &warm {
            assert!(decode_entry(payload).is_some());
        }
        // Resume shipping from the recovered offset to full sync.
        loop {
            let (bytes, _) = primary.read_range(replica.offset(), 64).expect("read");
            if bytes.is_empty() {
                break;
            }
            replica
                .apply(replica.offset(), primary.epoch(), false, &bytes)
                .expect("apply");
        }
        let promoted = Store::open(&mirror_path).expect("promote");
        assert_eq!(promoted.len(), 8);
    }

    #[test]
    fn epoch_change_forces_resync() {
        let dir = tmp("epoch");
        let mirror_path = dir.join("mirror.log");
        let (mut replica, _) = Replica::open(&mirror_path).expect("open");
        let mut primary = Store::open(&dir.join("primary.log")).expect("open primary");
        for i in 0..64u32 {
            primary
                .put(b"hot", format!("v{i}").as_bytes())
                .expect("put");
        }
        ship_all(&primary, &mut replica, 4096);
        let before = replica.offset();
        assert!(before > 0);

        primary.compact().expect("compact");
        assert_eq!(primary.epoch(), 1);
        let (bytes, _) = primary.read_range(0, 4096).expect("read");
        // The primary would answer a stale-epoch request with reset=true;
        // even a plain chunk under the new epoch must trigger the resync.
        let out = replica
            .apply(before, primary.epoch(), false, &bytes)
            .expect("apply");
        assert!(out.resynced);
        assert_eq!(replica.offset(), 0);
        ship_all(&primary, &mut replica, 4096);
        let promoted = Store::open(&mirror_path).expect("promote");
        assert_eq!(promoted.get(b"hot"), Some(b"v63".as_ref()));
    }

    #[test]
    fn corrupt_chunk_is_detected_and_resyncs() {
        let dir = tmp("corrupt");
        let (mut replica, _) = Replica::open(&dir.join("mirror.log")).expect("open");
        let mut primary = Store::open(&dir.join("primary.log")).expect("open primary");
        primary.put(b"k", b"v").expect("put");
        let (mut bytes, _) = primary.read_range(0, 4096).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload bit: CRC must catch it
        let out = replica.apply(0, 0, false, &bytes).expect("apply");
        assert!(out.resynced, "CRC mismatch must force a resync");
        assert!(out.payloads.is_empty());
        assert_eq!(replica.offset(), 0);
    }

    #[test]
    fn stale_offset_chunks_are_ignored() {
        let dir = tmp("stale");
        let (mut replica, _) = Replica::open(&dir.join("mirror.log")).expect("open");
        let mut primary = Store::open(&dir.join("primary.log")).expect("open primary");
        primary.put(b"k", b"v").expect("put");
        let (bytes, _) = primary.read_range(0, 4096).expect("read");
        replica.apply(0, 0, false, &bytes).expect("apply");
        let offset = replica.offset();
        // A duplicate of the first chunk must not be re-appended.
        let out = replica.apply(0, 0, false, &bytes).expect("apply dup");
        assert!(out.payloads.is_empty());
        assert!(!out.resynced);
        assert_eq!(replica.offset(), offset);
    }
}
