//! Append-only record log with CRC-framed records and torn-tail recovery.
//!
//! File layout:
//!
//! ```text
//! file   := magic record*
//! magic  := "CRSTORE1"                      (8 bytes)
//! record := len:u32le crc:u32le payload     (len = payload length,
//!                                            crc = CRC-32 of payload)
//! ```
//!
//! Recovery is tolerant by construction: [`RecordLog::open`] replays the
//! file front-to-back and stops at the first frame that is short, has an
//! implausible length, or fails its CRC — everything from that offset on
//! is truncated away and reported, never propagated as an error. A crash
//! (or `kill -9`) mid-append therefore costs at most the record being
//! written; every record before it stays intact and verified.

use std::io;
use std::path::Path;

use crate::crc::crc32;
use crate::vfs::{StdVfs, Vfs, VfsFile};

/// Magic bytes identifying a record log (and pinning its format version).
pub const MAGIC: &[u8; 8] = b"CRSTORE1";

/// Per-record frame overhead: `len:u32` + `crc:u32`.
pub const FRAME_OVERHEAD: u64 = 8;

/// Upper bound on a single record's payload; anything larger in a length
/// field is treated as corruption (a verdict record is a few KiB).
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// What [`RecordLog::open`] found while replaying the file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Decoded payloads of every intact record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of the file kept (header + intact records).
    pub kept_bytes: u64,
    /// Bytes discarded from the tail (torn or corrupt frames). Zero on a
    /// clean open.
    pub truncated_bytes: u64,
    /// True when the file existed but its header was missing or wrong —
    /// the whole file was discarded and a fresh log started.
    pub rebuilt: bool,
}

/// An open append-only log positioned at its (recovered) end.
#[derive(Debug)]
pub struct RecordLog {
    file: Box<dyn VfsFile>,
    len: u64,
}

impl RecordLog {
    /// Opens (creating if absent) the log at `path` on the real
    /// filesystem. See [`RecordLog::open_on`].
    pub fn open(path: &Path) -> io::Result<(RecordLog, Replay)> {
        RecordLog::open_on(&StdVfs, path)
    }

    /// Opens (creating if absent) the log at `path` on `vfs`, replays it,
    /// repairs the tail if torn, and leaves the handle positioned for
    /// appends.
    pub fn open_on(vfs: &dyn Vfs, path: &Path) -> io::Result<(RecordLog, Replay)> {
        let mut file = vfs.open_rw(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut replay = Replay::default();
        let valid_len = if bytes.is_empty() {
            file.write_all(MAGIC)?;
            MAGIC.len() as u64
        } else if !bytes.starts_with(MAGIC) {
            // Unrecognized header: discard the file wholesale rather than
            // guessing at frames, and start a fresh log in its place.
            replay.truncated_bytes = bytes.len() as u64;
            replay.rebuilt = true;
            file.set_len(0)?;
            file.seek_to(0)?;
            file.write_all(MAGIC)?;
            MAGIC.len() as u64
        } else {
            let valid = scan_frames(&bytes, &mut replay.payloads);
            replay.truncated_bytes = bytes.len() as u64 - valid;
            if replay.truncated_bytes > 0 {
                file.set_len(valid)?;
            }
            valid
        };
        replay.kept_bytes = valid_len;
        file.seek_to(valid_len)?;
        Ok((
            RecordLog {
                file,
                len: valid_len,
            },
            replay,
        ))
    }

    /// Appends one framed record; returns the log length after the write.
    /// Durability requires a subsequent [`RecordLog::sync`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        cr_faults::point!("store.append.write", |p: Option<String>| Err(
            crate::atomic::injected(p)
        ));
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD_LEN)
            .ok_or_else(|| io::Error::other("record payload too large"))?;
        let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(self.len)
    }

    /// Forces appended records to stable storage (fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        cr_faults::point!("store.append.sync", |p: Option<String>| Err(
            crate::atomic::injected(p)
        ));
        self.file.sync_all()
    }

    /// Current log length in bytes (header + frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= MAGIC.len() as u64
    }

    /// Wraps an already-written file (used by compaction, which stages a
    /// snapshot with [`crate::atomic::write_staged`] and keeps the handle
    /// across the rename — same inode).
    pub fn from_parts(mut file: Box<dyn VfsFile>, len: u64) -> io::Result<RecordLog> {
        file.seek_to(len)?;
        Ok(RecordLog { file, len })
    }
}

/// Read-only integrity walk over a log image: what [`RecordLog::open`]
/// *would* recover, without opening the file for writing or repairing
/// anything. Backs `crsat store verify` (the operator-facing twin of the
/// simulation's durability checker): `rebuilt` means the header is
/// unrecognized, `truncated_bytes` counts the torn/corrupt tail.
pub fn scrub_image(bytes: &[u8]) -> Replay {
    let mut replay = Replay::default();
    if bytes.is_empty() {
        return replay;
    }
    if !bytes.starts_with(MAGIC) {
        replay.truncated_bytes = bytes.len() as u64;
        replay.rebuilt = true;
        return replay;
    }
    let valid = scan_frames(bytes, &mut replay.payloads);
    replay.kept_bytes = valid;
    replay.truncated_bytes = bytes.len() as u64 - valid;
    replay
}

/// Serializes `payload` as a single framed record (no I/O). Used by
/// compaction to build the snapshot image.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    let len = payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scans `bytes` (which starts with a valid magic) frame by frame,
/// pushing intact payloads and returning the byte offset of the first
/// torn/corrupt frame (== `bytes.len()` on a clean log).
pub(crate) fn scan_frames(bytes: &[u8], payloads: &mut Vec<Vec<u8>>) -> u64 {
    let mut pos = MAGIC.len();
    loop {
        let Some(header) = bytes.get(pos..pos + FRAME_OVERHEAD as usize) else {
            // Short header: torn at `pos` (or clean EOF when pos == len).
            return pos as u64;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return pos as u64; // implausible length: corrupt frame
        }
        let body_start = pos + FRAME_OVERHEAD as usize;
        let Some(payload) = bytes.get(body_start..body_start + len as usize) else {
            return pos as u64; // torn payload
        };
        if crc32(payload) != crc {
            return pos as u64; // bit rot or torn overwrite
        }
        payloads.push(payload.to_vec());
        pos = body_start + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-store-log-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("log")
    }

    fn write_records(path: &Path, records: &[&[u8]]) {
        let (mut log, replay) = RecordLog::open(path).expect("open");
        assert_eq!(replay.truncated_bytes, 0);
        for r in records {
            log.append(r).expect("append");
        }
        log.sync().expect("sync");
    }

    #[test]
    fn roundtrip_preserves_records_in_order() {
        let path = tmp("roundtrip");
        let records: Vec<&[u8]> = vec![b"alpha", b"", b"\x00\xFFbinary\n", b"last"];
        write_records(&path, &records);
        let (_, replay) = RecordLog::open(&path).expect("reopen");
        assert_eq!(replay.payloads, records);
        assert_eq!(replay.truncated_bytes, 0);
        assert!(!replay.rebuilt);
    }

    /// Property: cutting the file at *every* possible byte offset loses at
    /// most the records whose frames the cut touches — never an earlier
    /// record, and recovery never errors.
    #[test]
    fn truncation_at_any_offset_recovers_a_prefix() {
        let path = tmp("cutpoints");
        let records: Vec<Vec<u8>> = (0u8..6).map(|i| vec![i; 3 + i as usize * 7]).collect();
        let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        write_records(&path, &refs);
        let full = std::fs::read(&path).expect("read image");

        for cut in 0..=full.len() {
            let case = path.with_extension(format!("cut{cut}"));
            std::fs::write(&case, &full[..cut]).expect("write truncated image");
            let (_, replay) = RecordLog::open(&case).expect("recovery must not error");
            // The recovered records are a strict prefix of what was written.
            assert!(replay.payloads.len() <= records.len(), "cut {cut}");
            assert_eq!(
                replay.payloads,
                records[..replay.payloads.len()].to_vec(),
                "cut {cut} corrupted an earlier record"
            );
            // Reopening after repair is clean and stable.
            let (_, again) = RecordLog::open(&case).expect("second open");
            assert_eq!(
                again.truncated_bytes, 0,
                "repair did not converge at cut {cut}"
            );
            assert_eq!(again.payloads, replay.payloads);
        }
    }

    #[test]
    fn corrupt_middle_record_truncates_from_there() {
        let path = tmp("bitrot");
        write_records(&path, &[b"keep-0", b"keep-1", b"lost-2", b"lost-3"]);
        let mut image = std::fs::read(&path).expect("read");
        // Flip one payload bit inside the third record.
        let pos = image
            .windows(6)
            .position(|w| w == b"lost-2")
            .expect("find third record");
        image[pos] ^= 0x01;
        std::fs::write(&path, &image).expect("write corrupt image");

        let (_, replay) = RecordLog::open(&path).expect("recover");
        assert_eq!(
            replay.payloads,
            vec![b"keep-0".to_vec(), b"keep-1".to_vec()]
        );
        assert!(replay.truncated_bytes > 0);
    }

    #[test]
    fn garbage_after_valid_tail_is_discarded() {
        let path = tmp("garbage");
        write_records(&path, &[b"only"]);
        let mut image = std::fs::read(&path).expect("read");
        image.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
        std::fs::write(&path, &image).expect("append garbage");
        let (_, replay) = RecordLog::open(&path).expect("recover");
        assert_eq!(replay.payloads, vec![b"only".to_vec()]);
        assert_eq!(replay.truncated_bytes, 3);
    }

    #[test]
    fn wrong_magic_rebuilds_an_empty_log() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTALOG!posing as one").expect("plant imposter");
        let (mut log, replay) = RecordLog::open(&path).expect("rebuild");
        assert!(replay.rebuilt);
        assert!(replay.payloads.is_empty());
        log.append(b"fresh").expect("append to rebuilt log");
        log.sync().expect("sync");
        let (_, again) = RecordLog::open(&path).expect("reopen");
        assert_eq!(again.payloads, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn implausible_length_field_is_corruption_not_allocation() {
        let path = tmp("hugelen");
        write_records(&path, &[b"good"]);
        let mut image = std::fs::read(&path).expect("read");
        // Frame claiming a ~4 GiB payload: must be rejected by bound, not
        // attempted.
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &image).expect("write");
        let (_, replay) = RecordLog::open(&path).expect("recover");
        assert_eq!(replay.payloads, vec![b"good".to_vec()]);
        assert_eq!(replay.truncated_bytes, 8);
    }
}
