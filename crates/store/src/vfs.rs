//! Filesystem seam: every byte `cr-store` persists flows through [`Vfs`].
//!
//! The store's durability story (CRC-framed appends, fsync-before-ack,
//! staged-write-then-rename compaction) is only as testable as the disk
//! under it. This trait pair narrows the store's filesystem surface to
//! exactly the operations its crash-safety argument relies on — open,
//! append-positioned writes, truncate, fsync, whole-file rename — so a
//! deterministic simulation (`cr-sim`) can substitute an in-memory disk
//! with scheduled faults (torn final write, lost unsynced suffix on
//! crash, injected I/O errors) while production code runs on [`StdVfs`],
//! a zero-cost delegation to `std::fs`.
//!
//! Invariants every implementation must honor (the store depends on
//! them):
//!
//! * `open_rw` creates the file when absent and never truncates it;
//! * `open_truncated` always yields an empty file (the staging half of
//!   atomic replacement);
//! * `rename` over an existing target is atomic: readers of the target
//!   observe the old image or the new one, never a mix;
//! * a handle returned by `open_*` keeps addressing the same underlying
//!   file even if the *path* is renamed over (inode semantics — the
//!   compaction handle handoff in [`crate::Store::compact`] relies on
//!   it);
//! * bytes written before a `sync_all` that returned `Ok` survive any
//!   crash; bytes after the last successful sync may be lost or torn.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// An open file handle, positionable and syncable. The store only ever
/// seeks to absolute offsets, so the full `Seek` surface is not exposed.
pub trait VfsFile: Send + Debug {
    /// Reads the remainder of the file (from the current position) into
    /// `buf`, returning the number of bytes read.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;
    /// Writes all of `buf` at the current position, advancing it.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Truncates (or extends with zeros) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Moves the read/write position to absolute offset `pos`.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
    /// Forces everything written so far to stable storage (fsync).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A filesystem root. `Send + Sync` because the server shares one handle
/// across its store, replica, and port-file writers.
pub trait Vfs: Send + Sync + Debug {
    /// Opens `path` read/write, creating it empty if absent. Never
    /// truncates existing contents; the position starts at 0.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens `path` write-only-semantics, truncating any existing
    /// contents (the staged-write primitive).
    fn open_truncated(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads up to `max_len` bytes starting at byte `offset` through a
    /// fresh read-only handle (never perturbs writer positions).
    fn read_range(&self, path: &Path, offset: u64, max_len: usize) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The production filesystem: straight delegation to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// Shared handle to the production filesystem.
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

impl VfsFile for File {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        Read::read_to_end(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        Seek::seek(self, SeekFrom::Start(pos)).map(|_| ())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

impl Vfs for StdVfs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(file))
    }

    fn open_truncated(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(file))
    }

    fn read_range(&self, path: &Path, offset: u64, max_len: usize) -> io::Result<Vec<u8>> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; max_len];
        let mut filled = 0;
        while filled < buf.len() {
            match file.read(&mut buf[filled..])? {
                0 => break,
                n => filled += n,
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-store-vfs-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn open_rw_preserves_and_open_truncated_clears() {
        let dir = tmp("modes");
        let path = dir.join("f");
        {
            let mut f = StdVfs.open_rw(&path).expect("create");
            f.write_all(b"hello").expect("write");
            f.sync_all().expect("sync");
        }
        {
            let mut f = StdVfs.open_rw(&path).expect("reopen");
            let mut buf = Vec::new();
            f.read_to_end(&mut buf).expect("read");
            assert_eq!(buf, b"hello");
        }
        {
            let _f = StdVfs.open_truncated(&path).expect("truncate");
        }
        assert_eq!(std::fs::read(&path).expect("read back"), b"");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_range_is_offset_exact() {
        let dir = tmp("range");
        let path = dir.join("f");
        std::fs::write(&path, b"0123456789").expect("seed");
        assert_eq!(StdVfs.read_range(&path, 3, 4).expect("range"), b"3456");
        assert_eq!(StdVfs.read_range(&path, 8, 100).expect("tail"), b"89");
        assert_eq!(StdVfs.read_range(&path, 10, 4).expect("eof"), b"");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
