//! Incremental (delta) satisfiability checking.
//!
//! Given a **base** schema whose full check already ran, and an ordered
//! add/remove diff on its canonical form, this crate decides the edited
//! schema's satisfiability by reusing the base run's cached intermediate
//! state (consistent compound classes, maximal support, marginal witness —
//! see [`cr_core::delta`]) instead of re-running the whole pipeline:
//!
//! 1. [`classify`] the diff. Edits that add/remove classes or
//!    relationships, or *remove* ISA/disjointness/covering assertions, can
//!    grow the atom set and are **structural** — the delta path declines
//!    and the caller runs a from-scratch check (transparent fallback).
//! 2. For constraint-only edits, [`check_delta`] applies the diff to the
//!    base canonical form, rebuilds the edited schema *in canonical class
//!    order* (so compound-class bit indices line up with the cached
//!    atoms), and calls [`cr_core::delta::reasoner_from_state`] — filter
//!    the cached atoms, seed or restart the fixpoint, reuse the witness
//!    outright when nothing changed structurally.
//! 3. If the diff invalidates more than
//!    [`DeltaConfig::max_invalidated_permille`] of the base atoms, the
//!    dirty slice is deemed too large for reuse to pay off and the call
//!    falls back as well.
//!
//! Every successful check returns a fresh [`DeltaContext`] for the edited
//! schema, so edit streams chain: each verdict's context becomes the next
//! edit's base. Failpoints `delta.diff`, `delta.invalidate`, and
//! `delta.merge` (armed with `--features faults`) each force a fallback —
//! an injected fault downgrades performance, never a verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cr_core::delta::{reasoner_from_state, ReusableState, INVALIDATION_CAP};
use cr_core::expansion::ExpansionConfig;
use cr_core::sat::{Reasoner, Strategy};
use cr_core::{canonical_text_hash, Budget, CrError, Schema};
pub use cr_lang::SchemaDiff;
use cr_lang::{apply_diff, schema_from_canonical};

/// Tuning knobs for the delta path.
#[derive(Clone, Copy, Debug)]
pub struct DeltaConfig {
    /// Fallback threshold: if a diff invalidates more than this many
    /// permille (‰) of the base compound classes, the delta path declines
    /// and the caller should run a from-scratch check. Expressed in
    /// permille to keep the config float-free.
    pub max_invalidated_permille: u32,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        // Half the atom set gone means the "dirty slice" is most of the
        // problem; reuse stops paying for itself around there.
        DeltaConfig {
            max_invalidated_permille: 500,
        }
    }
}

/// What kind of edit a diff performs, which decides how much of the base
/// run is reusable (see the module docs for the soundness argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffClass {
    /// No operations: the edited schema *is* the base schema.
    Empty,
    /// Additions only (cards, ISA, disjointness, covering): atoms can only
    /// disappear and the support can only shrink, so the base support
    /// seeds the fixpoint.
    Tightening,
    /// At least one cardinality constraint removed (atoms unchanged, but
    /// the support may grow): atoms are still reused, the fixpoint
    /// restarts from all-true.
    Loosening,
    /// Classes/relationships changed, or an ISA/disjointness/covering
    /// assertion removed: new atoms may appear, nothing is reusable.
    Structural,
}

/// Classifies a diff by the strongest reuse its operations still permit.
///
/// A cardinality *change* appears on canonical form as a remove + add of
/// the same `(class, rel, role)` key; when the new window is contained in
/// the old one the pair is still a tightening (the paired lines narrow one
/// constraint), so such edits keep the seeded fixpoint.
pub fn classify(diff: &SchemaDiff) -> DiffClass {
    let mut class = DiffClass::Empty;
    let mut removed_cards: Vec<(&str, (u64, Option<u64>))> = Vec::new();
    let mut added_cards: Vec<(&str, (u64, Option<u64>))> = Vec::new();
    for op in &diff.ops {
        let kind = op.kind();
        let structural = matches!(kind, "class" | "rel")
            || (!op.add && matches!(kind, "isa" | "disjoint" | "cover"));
        if structural {
            return DiffClass::Structural;
        }
        if kind == "card" {
            if let Some(parsed) = parse_card_line(&op.line) {
                if op.add {
                    added_cards.push(parsed);
                } else {
                    removed_cards.push(parsed);
                }
                if class == DiffClass::Empty {
                    class = DiffClass::Tightening;
                }
                continue;
            }
            // Unparseable card line: apply_diff will reject it later;
            // classify conservatively.
            if !op.add {
                class = DiffClass::Loosening;
            } else if class == DiffClass::Empty {
                class = DiffClass::Tightening;
            }
            continue;
        }
        // Additions of isa/disjoint/cover only discard Venn atoms.
        if class == DiffClass::Empty {
            class = DiffClass::Tightening;
        }
    }
    // Every removed card must be replaced by a window contained in the old
    // one, or the edit may loosen the system.
    for (key, (old_min, old_max)) in &removed_cards {
        let narrower = added_cards.iter().any(|(k, (new_min, new_max))| {
            k == key
                && new_min >= old_min
                && match (new_max, old_max) {
                    (_, None) => true,
                    (None, Some(_)) => false,
                    (Some(n), Some(o)) => n <= o,
                }
        });
        if !narrower {
            return if class == DiffClass::Structural {
                class
            } else {
                DiffClass::Loosening
            };
        }
    }
    class
}

/// Splits a canonical `card` line into its `(class, rel, role)` key and
/// window; `None` when malformed.
fn parse_card_line(line: &str) -> Option<(&str, (u64, Option<u64>))> {
    let rest = line.strip_prefix("card\t")?;
    let (key, window) = {
        let mut fields = rest.rsplitn(3, '\t');
        let max = fields.next()?;
        let min = fields.next()?;
        let key = fields.next()?;
        (key, (min, max))
    };
    let min = window.0.parse::<u64>().ok()?;
    let max = match window.1 {
        "*" => None,
        n => Some(n.parse::<u64>().ok()?),
    };
    Some((key, (min, max)))
}

/// A base schema pinned for incremental checking: its canonical form and
/// hash, the schema rebuilt in canonical class order (the order the cached
/// atom bit-indices refer to), and the completed run's reusable state.
#[derive(Debug)]
pub struct DeltaContext {
    canonical: String,
    hash: u128,
    schema: Schema,
    state: ReusableState,
}

impl DeltaContext {
    /// Pins a base by its canonical form: rebuilds the schema in
    /// canonical class order and runs the full (Aggregated) pipeline once
    /// to populate the reusable state.
    pub fn from_canonical(
        canonical: &str,
        config: &ExpansionConfig,
        budget: &Budget,
    ) -> Result<DeltaContext, DeltaError> {
        let schema = schema_from_canonical(canonical).map_err(DeltaError::Malformed)?;
        let state = {
            let reasoner = Reasoner::with_budget(&schema, config, Strategy::Aggregated, budget)
                .map_err(DeltaError::Core)?;
            reasoner.reusable_state()
        };
        Ok(DeltaContext {
            canonical: canonical.to_string(),
            hash: canonical_text_hash(canonical),
            schema,
            state,
        })
    }

    /// [`DeltaContext::from_canonical`] starting from an already-built
    /// schema (canonicalizes it first; the stored schema is the canonical
    /// rebuild, not `schema` itself).
    pub fn from_schema(
        schema: &Schema,
        config: &ExpansionConfig,
        budget: &Budget,
    ) -> Result<DeltaContext, DeltaError> {
        DeltaContext::from_canonical(&schema.canonical_form(), config, budget)
    }

    /// The pinned canonical form.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The canonical hash (identity of the pinned base).
    pub fn hash(&self) -> u128 {
        self.hash
    }

    /// The canonical hash as the 32-digit lowercase hex string used on the
    /// wire and as cache/store keys.
    pub fn hash_hex(&self) -> String {
        format!("{:032x}", self.hash)
    }

    /// The schema, rebuilt in canonical class order.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// Why a delta check declined and handed the question back for a
/// from-scratch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The diff is [`DiffClass::Structural`].
    Structural,
    /// The diff invalidated more atoms than
    /// [`DeltaConfig::max_invalidated_permille`] allows.
    InvalidationBlowup {
        /// Base atoms the edited schema rejected (lower bound: the count
        /// at which the cap tripped).
        cap: usize,
    },
    /// The cached state cannot belong to the edited schema (class count
    /// drifted — only possible if a caller mixed contexts).
    StateMismatch,
    /// A `cr-faults` failpoint fired on the delta path.
    Fault(&'static str),
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::Structural => write!(f, "structural diff"),
            FallbackReason::InvalidationBlowup { cap } => {
                write!(f, "invalidated more than {cap} base atoms")
            }
            FallbackReason::StateMismatch => write!(f, "cached state does not fit edited schema"),
            FallbackReason::Fault(site) => write!(f, "fault injected at {site}"),
        }
    }
}

/// A successful delta verdict over the edited schema.
#[derive(Debug)]
pub struct DeltaVerdict {
    /// Names of finitely unsatisfiable classes, in canonical class order.
    pub unsat_classes: Vec<String>,
    /// Names of finitely unsatisfiable relationships, canonical order.
    pub unsat_rels: Vec<String>,
    /// Base atoms the edited schema's consistency filter rejected.
    pub atoms_invalidated: usize,
    /// Whether the base support and witness were reused verbatim (no LP).
    pub support_reused: bool,
    /// Whether the fixpoint was seeded from the base support (tightening
    /// edits; `false` means it restarted from all-true).
    pub seeded: bool,
    /// A context for the edited schema, so the next edit in a stream can
    /// use this verdict as its base.
    pub next: DeltaContext,
}

/// The outcome of [`check_delta`]: either a verdict, or a declared
/// fallback the caller resolves with a from-scratch check of
/// `edited_canonical`.
// The size asymmetry is deliberate: `Checked` carries the reusable state
// for the next edit in the stream, and every outcome is consumed
// immediately (never collected), so boxing would buy nothing but an
// allocation on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum DeltaOutcome {
    /// The delta path answered.
    Checked(DeltaVerdict),
    /// The delta path declined; run a full check on `edited_canonical`.
    Fallback {
        /// Canonical form of the edited schema (diff already applied and
        /// validated, so the full check need not re-derive it).
        edited_canonical: String,
        /// Why the delta path declined.
        reason: FallbackReason,
    },
}

/// Errors that are *not* resolved by falling back (the request itself is
/// bad, or the reasoning pipeline failed in a way a from-scratch run would
/// share).
#[derive(Debug)]
pub enum DeltaError {
    /// The canonical text or the diff failed to parse or apply (stale
    /// diff, malformed line).
    Malformed(String),
    /// The underlying pipeline failed (budget exhausted, expansion cap,
    /// injected core fault).
    Core(CrError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Malformed(what) => write!(f, "malformed delta request: {what}"),
            DeltaError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Checks the schema obtained by applying `diff` to `base`, reusing the
/// base run's state where sound (see the module docs). Increments
/// `delta_hits` on a verdict and `delta_fallbacks` on a declared fallback,
/// via the budget's tracer.
pub fn check_delta(
    base: &DeltaContext,
    diff: &SchemaDiff,
    config: &DeltaConfig,
    expansion: &ExpansionConfig,
    budget: &Budget,
) -> Result<DeltaOutcome, DeltaError> {
    let tracer = budget.tracer().clone();
    let fallback = |edited_canonical: String, reason: FallbackReason| {
        tracer.add(cr_trace::Counter::DeltaFallbacks, 1);
        Ok(DeltaOutcome::Fallback {
            edited_canonical,
            reason,
        })
    };

    let edited_canonical = apply_diff(&base.canonical, diff).map_err(DeltaError::Malformed)?;
    let class = classify(diff);
    cr_faults::point!("delta.diff", |_| fallback(
        edited_canonical.clone(),
        FallbackReason::Fault("delta.diff")
    ));
    if class == DiffClass::Structural {
        return fallback(edited_canonical, FallbackReason::Structural);
    }

    let edited = schema_from_canonical(&edited_canonical).map_err(DeltaError::Malformed)?;
    let cap = (base.state.atoms.len() * config.max_invalidated_permille as usize) / 1000;
    cr_faults::point!("delta.invalidate", |_| fallback(
        edited_canonical.clone(),
        FallbackReason::Fault("delta.invalidate")
    ));

    let tighten_only = matches!(class, DiffClass::Empty | DiffClass::Tightening);
    let (unsat_classes, unsat_rels, state, report) = {
        let (reasoner, report) = match reasoner_from_state(
            &edited,
            &base.state,
            tighten_only,
            Some(cap),
            expansion,
            budget,
        ) {
            Ok(run) => run,
            Err(CrError::ExpansionTooLarge {
                what: INVALIDATION_CAP,
                limit,
            }) => {
                return fallback(
                    edited_canonical,
                    FallbackReason::InvalidationBlowup { cap: limit },
                )
            }
            Err(CrError::SignatureMismatch { .. }) => {
                return fallback(edited_canonical, FallbackReason::StateMismatch)
            }
            Err(e) => return Err(DeltaError::Core(e)),
        };
        cr_faults::point!("delta.merge", |_| fallback(
            edited_canonical.clone(),
            FallbackReason::Fault("delta.merge")
        ));
        let unsat_classes: Vec<String> = reasoner
            .unsatisfiable_classes()
            .into_iter()
            .map(|c| edited.class_name(c).to_string())
            .collect();
        let unsat_rels: Vec<String> = reasoner
            .unsatisfiable_rels()
            .into_iter()
            .map(|r| edited.rel_name(r).to_string())
            .collect();
        (unsat_classes, unsat_rels, reasoner.reusable_state(), report)
    };

    tracer.add(cr_trace::Counter::DeltaHits, 1);
    Ok(DeltaOutcome::Checked(DeltaVerdict {
        unsat_classes,
        unsat_rels,
        atoms_invalidated: report.atoms_invalidated,
        support_reused: report.support_reused,
        seeded: tighten_only,
        next: DeltaContext {
            hash: canonical_text_hash(&edited_canonical),
            canonical: edited_canonical,
            schema: edited,
            state,
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_lang::diff_canonical;

    const MEETING: &str = r#"
        class Speaker;
        class Discussant isa Speaker;
        class Talk;
        relationship Holds (U1: Speaker, U2: Talk);
        relationship Participates (U3: Discussant, U4: Talk);
        card Speaker in Holds.U1: 1..*;
        card Discussant in Holds.U1: 0..2;
        card Talk in Holds.U2: 1..1;
        card Discussant in Participates.U3: 1..1;
        card Talk in Participates.U4: 1..*;
    "#;

    fn ctx(source: &str) -> DeltaContext {
        let schema = cr_lang::parse_schema(source).unwrap();
        DeltaContext::from_schema(&schema, &ExpansionConfig::default(), &Budget::unlimited())
            .unwrap()
    }

    fn delta_of(base: &DeltaContext, edited_source: &str) -> DeltaOutcome {
        let edited = cr_lang::parse_schema(edited_source).unwrap();
        let diff = diff_canonical(base.canonical(), &edited.canonical_form());
        check_delta(
            base,
            &diff,
            &DeltaConfig::default(),
            &ExpansionConfig::default(),
            &Budget::unlimited(),
        )
        .unwrap()
    }

    fn scratch_unsat(source: &str) -> (Vec<String>, Vec<String>) {
        let schema = cr_lang::parse_schema(source).unwrap();
        let canonical = schema.canonical_form();
        let schema = schema_from_canonical(&canonical).unwrap();
        let r = Reasoner::new(&schema).unwrap();
        (
            r.unsatisfiable_classes()
                .into_iter()
                .map(|c| schema.class_name(c).to_string())
                .collect(),
            r.unsatisfiable_rels()
                .into_iter()
                .map(|x| schema.rel_name(x).to_string())
                .collect(),
        )
    }

    #[test]
    fn empty_diff_reuses_everything() {
        let base = ctx(MEETING);
        match delta_of(&base, MEETING) {
            DeltaOutcome::Checked(v) => {
                assert!(v.support_reused);
                assert_eq!(v.atoms_invalidated, 0);
                assert!(v.unsat_classes.is_empty());
            }
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn tightening_flip_to_unsat_matches_scratch() {
        let base = ctx(MEETING);
        let edited = MEETING.replace(
            "card Talk in Participates.U4: 1..*;",
            "card Talk in Participates.U4: 3..*;",
        );
        let (want_classes, want_rels) = scratch_unsat(&edited);
        assert!(!want_classes.is_empty(), "edit should flip to unsat");
        match delta_of(&base, &edited) {
            DeltaOutcome::Checked(v) => {
                assert!(v.seeded);
                assert_eq!(v.unsat_classes, want_classes);
                assert_eq!(v.unsat_rels, want_rels);
            }
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn loosening_flip_back_to_sat_matches_scratch() {
        let tight = MEETING.replace(
            "card Talk in Participates.U4: 1..*;",
            "card Talk in Participates.U4: 3..*;",
        );
        let base = ctx(&tight);
        match delta_of(&base, MEETING) {
            DeltaOutcome::Checked(v) => {
                assert!(!v.seeded, "a loosening edit must restart from all-true");
                assert!(v.unsat_classes.is_empty());
                assert!(v.unsat_rels.is_empty());
            }
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn chained_edits_reuse_each_verdicts_context() {
        let base = ctx(MEETING);
        let edit1 = MEETING.replace(
            "card Discussant in Holds.U1: 0..2;",
            "card Discussant in Holds.U1: 0..1;",
        );
        let v1 = match delta_of(&base, &edit1) {
            DeltaOutcome::Checked(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        };
        let edit2 = edit1.replace(
            "card Speaker in Holds.U1: 1..*;",
            "card Speaker in Holds.U1: 2..*;",
        );
        match delta_of(&v1.next, &edit2) {
            DeltaOutcome::Checked(v) => {
                let (want_classes, _) = scratch_unsat(&edit2);
                assert_eq!(v.unsat_classes, want_classes);
            }
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn structural_diff_falls_back() {
        let base = ctx(MEETING);
        let edited = format!("{MEETING}\nclass Chair isa Speaker;");
        match delta_of(&base, &edited) {
            DeltaOutcome::Fallback {
                reason,
                edited_canonical,
            } => {
                assert_eq!(reason, FallbackReason::Structural);
                let schema = cr_lang::parse_schema(&edited).unwrap();
                assert_eq!(edited_canonical, schema.canonical_form());
            }
            other => panic!("expected fallback, got {other:?}"),
        }
    }

    #[test]
    fn removing_isa_is_structural() {
        let diff = SchemaDiff::parse_lines(&["-\tisa\tDiscussant\tSpeaker"]).unwrap();
        assert_eq!(classify(&diff), DiffClass::Structural);
        // The removal also breaks card refinement validity, so only the
        // classification is exercised here; apply-and-check is covered by
        // the class/relationship fallback test above.
    }

    #[test]
    fn stale_diff_is_malformed() {
        let base = ctx(MEETING);
        let diff = SchemaDiff::parse_lines(&["-\tcard\tNoSuch\tHolds\tU1\t0\t*"]).unwrap();
        let err = check_delta(
            &base,
            &diff,
            &DeltaConfig::default(),
            &ExpansionConfig::default(),
            &Budget::unlimited(),
        );
        assert!(matches!(err, Err(DeltaError::Malformed(_))));
    }

    #[test]
    fn counters_track_hits_and_fallbacks() {
        let tracer = cr_trace::Tracer::new(Box::new(cr_trace::NullSink));
        let budget = Budget::unlimited().with_tracer(&tracer);
        let base = ctx(MEETING);
        let edited = cr_lang::parse_schema(MEETING).unwrap();
        let diff = diff_canonical(base.canonical(), &edited.canonical_form());
        check_delta(
            &base,
            &diff,
            &DeltaConfig::default(),
            &ExpansionConfig::default(),
            &budget,
        )
        .unwrap();
        assert_eq!(tracer.counter(cr_trace::Counter::DeltaHits), 1);
        let structural = SchemaDiff::parse_lines(&["+\tclass\tChair"]).unwrap();
        check_delta(
            &base,
            &structural,
            &DeltaConfig::default(),
            &ExpansionConfig::default(),
            &budget,
        )
        .unwrap();
        assert_eq!(tracer.counter(cr_trace::Counter::DeltaFallbacks), 1);
    }
}
