//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmark API this workspace uses. The build environment has no access
//! to crates.io, so the workspace vendors this implementation.
//!
//! Semantics: each benchmark runs a short warm-up, then a fixed number of
//! timed samples, and prints `group/id  median  (min .. max)` per line.
//! There is no statistical analysis, no HTML report, and no saved
//! baselines — the numbers are honest wall-clock medians good enough for
//! before/after comparisons on one machine, which is all the repo's
//! `cargo bench` workflow does with them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver (one per `criterion_group!`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; the shim keeps runs short.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &name.to_string());
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only marks the group's end).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not recorded).
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("{group}/{label}  (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{label}  {}  ({} .. {})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares the benchmark functions of this binary
/// (`criterion_group!(benches, f1, f2)`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups
/// (`criterion_main!(benches)`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
