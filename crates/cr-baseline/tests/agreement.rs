//! On ISA-free schemas the LN90 baseline and the ICDE'94 procedure decide
//! the same problem and must agree class-by-class.

use cr_baseline::BaselineReasoner;
use cr_core::sat::Reasoner;
use cr_core::schema::{Card, Schema, SchemaBuilder};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FlatPlan {
    classes: usize,
    rels: Vec<(usize, usize)>,
    cards: Vec<(usize, usize, u64, Option<u64>)>, // (rel, role position, min, max)
}

fn plan() -> impl Strategy<Value = FlatPlan> {
    (2usize..=4).prop_flat_map(|classes| {
        let rels = proptest::collection::vec((0..classes, 0..classes), 1..=3);
        let cards = proptest::collection::vec(
            (
                0usize..3,
                0usize..2,
                0u64..=3,
                prop_oneof![Just(None), (0u64..=3).prop_map(Some)],
            ),
            0..=6,
        );
        (Just(classes), rels, cards).prop_map(|(classes, rels, cards)| FlatPlan {
            classes,
            rels,
            cards,
        })
    })
}

fn build(plan: &FlatPlan) -> Schema {
    let mut b = SchemaBuilder::new();
    let classes: Vec<_> = (0..plan.classes)
        .map(|i| b.class(format!("C{i}")))
        .collect();
    let mut rels = Vec::new();
    for (i, &(p0, p1)) in plan.rels.iter().enumerate() {
        rels.push(
            b.relationship(format!("R{i}"), [("u", classes[p0]), ("v", classes[p1])])
                .unwrap(),
        );
    }
    for &(rel, pos, min, max) in &plan.cards {
        if rel >= rels.len() {
            continue;
        }
        let role = b.role(rels[rel], pos);
        // Cards must target the primary class (the only legal target
        // without ISA); duplicates silently skipped.
        let primary = plan.rels[rel];
        let class = if pos == 0 { primary.0 } else { primary.1 };
        let _ = b.card(classes[class], role, Card::new(min, max));
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn baseline_agrees_with_expansion_procedure(p in plan()) {
        let schema = build(&p);
        let baseline = BaselineReasoner::new(&schema).unwrap();
        let full = Reasoner::new(&schema).unwrap();
        for class in schema.classes() {
            prop_assert_eq!(
                baseline.is_class_satisfiable(class),
                full.is_class_satisfiable(class),
                "LN90 and ICDE'94 disagree on {} in {:?}",
                schema.class_name(class),
                schema
            );
        }
    }

    #[test]
    fn baseline_system_is_linear_in_schema(p in plan()) {
        let schema = build(&p);
        let baseline = BaselineReasoner::new(&schema).unwrap();
        prop_assert_eq!(
            baseline.num_unknowns(),
            schema.num_classes() + schema.num_rels()
        );
        prop_assert!(baseline.num_rows() <= 2 * schema.num_roles());
    }
}
