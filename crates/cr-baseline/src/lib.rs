//! The Lenzerini–Nobili (1990) baseline: satisfiability of cardinality
//! constraints **without** ISA.
//!
//! Reference \[15\] of the paper — *M. Lenzerini, P. Nobili, "On the
//! satisfiability of dependency constraints in entity-relationship
//! schemata", Information Systems 15(4), 1990* — solves class
//! satisfiability for schemas with cardinality constraints only. Because
//! class extensions cannot overlap in interesting ways without ISA, **one
//! unknown per class** and one per relationship suffices:
//!
//! ```text
//! for each relationship R, role U (primary class C) with window (m, n):
//!     m · x_C  <=  x_R           (every C-instance in >= m tuples)
//!     x_R      <=  n · x_C       (every C-instance in <= n tuples)
//! ```
//!
//! plus the same acceptability side condition (`x_R > 0` forces every
//! participating class positive). The ICDE'94 paper's contribution is
//! exactly the generalization of this scheme to ISA via the exponential
//! expansion; this crate exists so benches can measure what that
//! generalization costs (experiment E4) and so the two procedures can be
//! property-tested equal on their common domain (ISA-free schemas).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cr_core::budget::{Budget, Stage};
use cr_core::ids::ClassId;
use cr_core::schema::Schema;
use cr_core::CrError;
use cr_linear::{
    solve_governed, Cmp, Feasibility, LinExpr, LinSystem, LinearError, VarId, VarKind,
};
use cr_rational::Rational;

/// Errors from the baseline reasoner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The schema declares ISA statements; the 1990 procedure does not
    /// handle them (that is the ICDE'94 paper's point).
    IsaNotSupported,
    /// The schema uses Section 5 extensions (disjointness / covering).
    ExtensionsNotSupported,
    /// The caller's resource [`Budget`] was exhausted mid-computation
    /// (wraps the `cr-core` error for a uniform surface across engines).
    BudgetExceeded(CrError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::IsaNotSupported => {
                write!(
                    f,
                    "the Lenzerini-Nobili baseline does not support ISA statements"
                )
            }
            BaselineError::ExtensionsNotSupported => write!(
                f,
                "the Lenzerini-Nobili baseline does not support disjointness/covering"
            ),
            BaselineError::BudgetExceeded(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// The LN90 reasoner: linear system over one unknown per class and
/// relationship, plus the maximal acceptable support.
#[derive(Debug)]
pub struct BaselineReasoner {
    class_vars: Vec<VarId>,
    rel_vars: Vec<VarId>,
    /// Classes each relationship depends on (its roles' primary classes).
    deps: Vec<Vec<usize>>,
    lin: LinSystem,
    support: Vec<bool>,
}

impl BaselineReasoner {
    /// Builds the reasoner; rejects schemas outside the 1990 fragment.
    pub fn new(schema: &Schema) -> Result<BaselineReasoner, BaselineError> {
        BaselineReasoner::with_budget(schema, &Budget::unlimited())
    }

    /// [`BaselineReasoner::new`] under a resource [`Budget`]: the support
    /// fixpoint's probes (and their simplex pivots) are charged to
    /// [`Stage::Fixpoint`], and exhaustion surfaces as
    /// [`BaselineError::BudgetExceeded`].
    pub fn with_budget(
        schema: &Schema,
        budget: &Budget,
    ) -> Result<BaselineReasoner, BaselineError> {
        if !schema.isa_statements().is_empty() {
            return Err(BaselineError::IsaNotSupported);
        }
        if !schema.disjointness_groups().is_empty() || !schema.coverings().is_empty() {
            return Err(BaselineError::ExtensionsNotSupported);
        }

        let mut lin = LinSystem::new();
        let class_vars: Vec<VarId> = (0..schema.num_classes())
            .map(|_| lin.add_var(VarKind::Nonneg))
            .collect();
        let rel_vars: Vec<VarId> = (0..schema.num_rels())
            .map(|_| lin.add_var(VarKind::Nonneg))
            .collect();
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(schema.num_rels());
        for r in schema.rels() {
            let mut d: Vec<usize> = schema
                .roles_of(r)
                .iter()
                .map(|&u| schema.primary_class(u).index())
                .collect();
            d.sort_unstable();
            d.dedup();
            deps.push(d);
        }

        for r in schema.rels() {
            for &u in schema.roles_of(r) {
                let c = schema.primary_class(u);
                // Without ISA the only applicable window is the primary
                // class's own declaration.
                let card = schema.declared_card(c, u);
                if card.min > 0 {
                    // x_R - m·x_C >= 0
                    let mut e = LinExpr::var(rel_vars[r.index()]);
                    e.add_term(class_vars[c.index()], -Rational::from_int(card.min as i64));
                    lin.push(e, Cmp::Ge, Rational::zero());
                }
                if let Some(max) = card.max {
                    // n·x_C - x_R >= 0
                    let mut e = LinExpr::from_terms([(class_vars[c.index()], max as i64)]);
                    e.add_term(rel_vars[r.index()], -Rational::one());
                    lin.push(e, Cmp::Ge, Rational::zero());
                }
            }
        }

        let support = maximal_support(&lin, &class_vars, &rel_vars, &deps, budget)
            .map_err(BaselineError::BudgetExceeded)?;
        Ok(BaselineReasoner {
            class_vars,
            rel_vars,
            deps,
            lin,
            support,
        })
    }

    /// Whether `class` is finitely satisfiable.
    pub fn is_class_satisfiable(&self, class: ClassId) -> bool {
        self.support[class.index()]
    }

    /// All unsatisfiable classes, in id order.
    pub fn unsatisfiable_classes(&self, schema: &Schema) -> Vec<ClassId> {
        schema
            .classes()
            .filter(|&c| !self.is_class_satisfiable(c))
            .collect()
    }

    /// Number of unknowns (for the E4 size comparison against the
    /// expansion-based system).
    pub fn num_unknowns(&self) -> usize {
        self.class_vars.len() + self.rel_vars.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.lin.constraints().len()
    }

    /// The dependency lists (primary classes per relationship), exposed for
    /// diagnostics.
    pub fn dependencies(&self) -> &[Vec<usize>] {
        &self.deps
    }
}

/// Greatest fixpoint of per-class feasibility probes — the same acceptable-
/// support argument as in `cr-core`, over the flat (ISA-free) system.
fn maximal_support(
    lin: &LinSystem,
    class_vars: &[VarId],
    rel_vars: &[VarId],
    deps: &[Vec<usize>],
    budget: &Budget,
) -> Result<Vec<bool>, CrError> {
    let n = class_vars.len();
    let mut alive = vec![true; n];
    loop {
        let mut removed = false;
        for c in 0..n {
            if !alive[c] {
                continue;
            }
            budget.charge(Stage::Fixpoint, 1)?;
            let mut probe = lin.clone();
            for (i, &a) in alive.iter().enumerate() {
                if !a {
                    probe.push(LinExpr::var(class_vars[i]), Cmp::Eq, Rational::zero());
                }
            }
            for (ri, d) in deps.iter().enumerate() {
                if d.iter().any(|&cc| !alive[cc]) {
                    probe.push(LinExpr::var(rel_vars[ri]), Cmp::Eq, Rational::zero());
                }
            }
            probe.push(LinExpr::var(class_vars[c]), Cmp::Ge, Rational::one());
            match solve_governed(&probe, &budget.stage(Stage::Fixpoint)) {
                Ok(Feasibility::Infeasible) => {
                    alive[c] = false;
                    removed = true;
                }
                Ok(_) => {}
                Err(LinearError::Interrupted) => return Err(budget.exceeded_err(Stage::Fixpoint)),
                Err(e) => unreachable!("feasibility probe cannot reject the system: {e}"),
            }
        }
        if !removed {
            break;
        }
    }
    Ok(alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::schema::{Card, SchemaBuilder};

    #[test]
    fn rejects_isa() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let c = b.class("C");
        b.isa(a, c);
        let schema = b.build().unwrap();
        assert_eq!(
            BaselineReasoner::new(&schema).unwrap_err(),
            BaselineError::IsaNotSupported
        );
    }

    #[test]
    fn rejects_extensions() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let c = b.class("C");
        b.disjoint([a, c]).unwrap();
        let schema = b.build().unwrap();
        assert_eq!(
            BaselineReasoner::new(&schema).unwrap_err(),
            BaselineError::ExtensionsNotSupported
        );
    }

    #[test]
    fn simple_satisfiable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let reasoner = BaselineReasoner::new(&schema).unwrap();
        assert!(reasoner.is_class_satisfiable(a));
        assert!(reasoner.is_class_satisfiable(x));
        assert!(reasoner.unsatisfiable_classes(&schema).is_empty());
    }

    #[test]
    fn ratio_cycle_unsat() {
        // |R| = 2|A| = |B| and |S| = 2|B| = |A| force everything empty:
        // the classic LN90 ratio-cycle contradiction.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("B");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        let s = b.relationship("S", [("p", x), ("q", a)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        b.card(x, b.role(s, 0), Card::exactly(2)).unwrap();
        b.card(a, b.role(s, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let reasoner = BaselineReasoner::new(&schema).unwrap();
        assert!(!reasoner.is_class_satisfiable(a));
        assert!(!reasoner.is_class_satisfiable(x));
    }

    #[test]
    fn acceptability_cascade() {
        // X has an empty window, A requires a tuple: both die.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::at_least(1)).unwrap();
        b.card(x, b.role(r, 1), Card::new(2, Some(1))).unwrap();
        let schema = b.build().unwrap();
        let reasoner = BaselineReasoner::new(&schema).unwrap();
        assert!(!reasoner.is_class_satisfiable(x));
        assert!(!reasoner.is_class_satisfiable(a));
    }

    #[test]
    fn governed_build_trips_and_matches() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();

        let starved = Budget::unlimited().with_stage_limit(Stage::Fixpoint, 1);
        let err = BaselineReasoner::with_budget(&schema, &starved).unwrap_err();
        assert!(matches!(err, BaselineError::BudgetExceeded(_)));

        let generous = Budget::unlimited().with_max_steps(1_000_000);
        let governed = BaselineReasoner::with_budget(&schema, &generous).unwrap();
        let ungoverned = BaselineReasoner::new(&schema).unwrap();
        assert!(generous.stage_steps(Stage::Fixpoint) > 0);
        for c in schema.classes() {
            assert_eq!(
                governed.is_class_satisfiable(c),
                ungoverned.is_class_satisfiable(c)
            );
        }
    }

    #[test]
    fn sizes_are_linear() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        let schema = b.build().unwrap();
        let reasoner = BaselineReasoner::new(&schema).unwrap();
        assert_eq!(reasoner.num_unknowns(), 3);
        assert_eq!(reasoner.num_rows(), 2);
    }
}
