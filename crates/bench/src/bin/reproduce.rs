//! Regenerates every figure of the paper and the scaling/ablation
//! experiments recorded in EXPERIMENTS.md.
//!
//! ```text
//! reproduce                 # everything
//! reproduce figures         # Figures 1-7 + the Section 3.3 counterexample
//! reproduce scaling         # experiments E1-E7
//! reproduce bench           # machine-readable snapshot: E-series timings
//!                           # + a daemon load run (BENCH_<date>.json)
//! reproduce --quick         # smaller sweeps (CI-friendly)
//! reproduce --stats FILE    # also write a RunReport (JSON) for the
//!                           # instrumented reference pipeline to FILE
//! reproduce bench --out F   # snapshot destination (default BENCH_<date>.json)
//! reproduce bench --date D  # stamp the snapshot with date D (default today)
//! reproduce bench --compare BASE.json   # after snapshotting, diff against a
//!                           # committed baseline and exit 1 on regression
//! reproduce bench --threshold P         # regression threshold in percent
//!                           # (default 75: fail when a family's geometric-
//!                           # mean slowdown exceeds 1.75x)
//! ```

use std::time::Instant;

use cr_baseline::BaselineReasoner;
use cr_bench::{SchemaGen, SchemaShape};
use cr_core::expansion::{Expansion, ExpansionConfig};
use cr_core::implication::{implied_maxc, implied_minc, ImpliedBound};
use cr_core::model::ModelConfig;
use cr_core::sat::zenum::satisfiable_by_z_enumeration;
use cr_core::sat::Reasoner;
use cr_core::schema::Schema;
use cr_core::system::render_verbatim;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let stats = stats_path(&args);
    let what = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !(a.starts_with("--")
                || i > 0
                    && matches!(
                        args[i - 1].as_str(),
                        "--stats" | "--out" | "--date" | "--compare" | "--threshold"
                    ))
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("all");
    if what == "figures" || what == "all" {
        figures();
    }
    if what == "scaling" || what == "all" {
        scaling(quick);
    }
    if what == "bench" {
        let date = flag_value(&args, "--date").unwrap_or_else(today);
        let out = flag_value(&args, "--out").unwrap_or_else(|| format!("BENCH_{date}.json"));
        bench_snapshot(quick, &out, &date);
        if let Some(base) = flag_value(&args, "--compare") {
            let threshold = flag_value(&args, "--threshold")
                .map(|v| {
                    v.parse::<f64>().unwrap_or_else(|_| {
                        eprintln!("--threshold needs a number (percent), got {v:?}");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(75.0);
            compare_snapshots(&out, &base, threshold);
        }
    }
    if let Some(path) = stats {
        write_run_report(&path);
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if a == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Today as `YYYY-MM-DD` (UTC), from the epoch by the standard civil
/// calendar conversion — no date dependency needed for a file stamp.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn stats_path(args: &[String]) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--stats=") {
            return Some(v.to_string());
        }
        if a == "--stats" {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Runs the reference pipeline (the meeting schema: reasoner, implication
/// probe, model construction) under a null-sink tracer and writes the
/// resulting RunReport to `path` — the same JSON document `crsat --stats`
/// emits, so EXPERIMENTS.md tooling consumes one format.
fn write_run_report(path: &str) {
    use cr_core::budget::Budget;
    use cr_core::implication::implied_minc_governed;
    use cr_core::sat::Strategy;
    use cr_trace::{NullSink, Tracer};

    let schema = meeting();
    let tracer = Tracer::new(Box::new(NullSink));
    let budget = Budget::unlimited().with_tracer(&tracer);
    let config = ExpansionConfig::default();
    let r = Reasoner::with_budget(&schema, &config, Strategy::default(), &budget).unwrap();
    if let Some(d) = schema.card_declarations().first() {
        let _ = implied_minc_governed(&schema, d.class, d.role, &config, &budget).unwrap();
    }
    let _ = r.construct_model(&ModelConfig::default()).unwrap();
    let mut report = cr_core::run_report(&budget, "reproduce:reference-pipeline", "ok");
    report.target = "meeting schema (Figures 2/3)".to_string();
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("\nrun report written to {path}"),
        Err(e) => eprintln!("cannot write stats to {path}: {e}"),
    }
}

const MEETING: &str = r#"
    class Speaker;
    class Discussant isa Speaker;
    class Talk;
    relationship Holds (U1: Speaker, U2: Talk);
    relationship Participates (U3: Discussant, U4: Talk);
    card Speaker in Holds.U1: 1..*;
    card Discussant in Holds.U1: 0..2;
    card Talk in Holds.U2: 1..1;
    card Discussant in Participates.U3: 1..1;
    card Talk in Participates.U4: 1..*;
"#;

const FIGURE1: &str = r#"
    class C;
    class D isa C;
    relationship R (U1: C, U2: D);
    card C in R.U1: 2..*;
    card D in R.U2: 0..1;
"#;

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn figures() {
    figure1();
    figure3();
    figure4();
    figure5();
    figure6();
    figure7();
    figure8();
}

fn figure1() {
    header("Figure 1 — finitely unsatisfiable ER diagram");
    let schema = cr_lang::parse_schema(FIGURE1).unwrap();
    let r = Reasoner::new(&schema).unwrap();
    println!("schema: |R| >= 2|C| (minc(C,R,U1)=2), |R| <= |D| (maxc(D,R,U2)=1), D ≼ C");
    for c in schema.classes() {
        let unrestricted = cr_core::unrestricted::unrestricted_satisfiable(r.expansion(), c);
        println!(
            "  {:<4} finite: {:<16} unrestricted: {}",
            schema.class_name(c),
            if r.is_class_satisfiable(c) {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            },
            if unrestricted {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            }
        );
        assert!(unrestricted, "the gap exists only for finite models");
    }
    assert_eq!(r.unsatisfiable_classes().len(), 2);
    println!("(the finite/unrestricted gap is the paper's motivation: the 2:1 ratio");
    println!(" is absorbed by an infinite domain but never by a finite one)");
}

fn meeting() -> Schema {
    cr_lang::parse_schema(MEETING).unwrap()
}

fn figure3() {
    header("Figures 2/3 — the meeting CR-schema");
    let schema = meeting();
    print!("{}", cr_lang::print_schema(&schema));
    let r = Reasoner::new(&schema).unwrap();
    assert!(r.is_schema_fully_satisfiable());
    println!("all classes satisfiable: ok (paper: schema is consistent)");
}

fn figure4() {
    header("Figure 4 — the expansion");
    let schema = meeting();
    let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
    println!(
        "compound classes: {} total, {} consistent (paper: c̄1..c̄7, consistent {{c̄1,c̄3,c̄4,c̄5,c̄7}})",
        exp.total_compound_classes(),
        exp.compound_classes().len()
    );
    for i in 0..exp.compound_classes().len() {
        println!("  {}", exp.cclass_name(i));
    }
    let holds = schema.rel_by_name("Holds").unwrap();
    let part = schema.rel_by_name("Participates").unwrap();
    println!(
        "consistent H̄: {} (paper: 12), consistent P̄: {} (paper: 6)",
        exp.compound_rels_of(holds).len(),
        exp.compound_rels_of(part).len()
    );
    println!("derived windows (Definition 3.1):");
    for rel in schema.rels() {
        for &u in schema.roles_of(rel) {
            let primary = schema.primary_class(u);
            for &cc in exp.compound_classes_containing(primary) {
                let card = exp.derived_card(cc, u);
                if card != cr_core::Card::UNCONSTRAINED {
                    println!(
                        "  minc/maxc({}, {}, {}) = {}",
                        exp.cclass_name(cc),
                        schema.rel_name(rel),
                        schema.role_name(u),
                        card
                    );
                }
            }
        }
    }
}

fn figure5() {
    header("Figure 5 — the system of disequations Ψ_S (verbatim, with zero rows)");
    let schema = meeting();
    let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
    let text = render_verbatim(&exp, 8).unwrap();
    let vars = text
        .lines()
        .filter(|l| l.trim_start().starts_with("Var("))
        .count();
    println!("{text}");
    println!("unknown inventory: {vars} (paper: 7 class + 49 H̄ + 49 P̄ = 105)");
    assert_eq!(vars, 105);
}

fn figure6() {
    header("Figure 6 — acceptable solution and derived model");
    let schema = meeting();
    let r = Reasoner::new(&schema).unwrap();
    let w = r.witness().unwrap();
    let exp = r.expansion();
    println!("acceptable solution (nonzero counts):");
    for (i, v) in w.cclass_counts.iter().enumerate() {
        if v.is_positive() {
            println!("  X({}) = {v}", exp.cclass_name(i));
        }
    }
    for (i, v) in w.crel_counts.iter().enumerate() {
        if v.is_positive() {
            println!("  X({}) = {v}", exp.crel_name(i));
        }
    }
    let model = r
        .construct_model(&ModelConfig::default())
        .unwrap()
        .expect("satisfiable");
    println!(
        "constructed model: {} individuals, {} Holds tuples, {} Participates tuples",
        model.domain_size(),
        model
            .rel_extension(schema.rel_by_name("Holds").unwrap())
            .len(),
        model
            .rel_extension(schema.rel_by_name("Participates").unwrap())
            .len()
    );
    assert!(model.is_model_of(&schema));
    println!("verified against Definition 2.2: ok (paper's Figure 6 gives a 4-element model)");
}

fn figure7() {
    header("Figure 7 — implied constraints");
    let schema = meeting();
    let r = Reasoner::new(&schema).unwrap();
    let speaker = schema.class_by_name("Speaker").unwrap();
    let discussant = schema.class_by_name("Discussant").unwrap();
    let talk = schema.class_by_name("Talk").unwrap();
    let holds = schema.rel_by_name("Holds").unwrap();
    let part = schema.rel_by_name("Participates").unwrap();
    let u1 = schema.role_by_name(holds, "U1").unwrap();
    let u4 = schema.role_by_name(part, "U4").unwrap();
    let config = ExpansionConfig::default();

    let isa = r.implies_isa(speaker, discussant);
    println!("S ⊨ Speaker ≼ Discussant:            {isa} (paper: yes)");
    assert!(isa);

    let m1 = implied_maxc(&schema, talk, u4, &config, 1 << 16).unwrap();
    println!("S ⊨ maxc(Talk, Participates, U4) = 1: {m1:?} (paper: yes, tightest 1)");
    assert_eq!(m1, ImpliedBound::Bound(1));

    let m2 = implied_maxc(&schema, speaker, u1, &config, 1 << 16).unwrap();
    println!("S ⊨ maxc(Speaker, Holds, U1) = 1:     {m2:?} (paper: yes, tightest 1)");
    assert_eq!(m2, ImpliedBound::Bound(1));

    let m3 = implied_minc(&schema, speaker, u1, &config).unwrap();
    println!("tightest implied minc(Speaker, Holds, U1): {m3:?}");
}

fn figure8() {
    header("Section 3.3 — the refinement that breaks the schema");
    let amended = MEETING.replace(
        "card Discussant in Holds.U1: 0..2;",
        "card Discussant in Holds.U1: 2..2;",
    );
    let schema = cr_lang::parse_schema(&amended).unwrap();
    let r = Reasoner::new(&schema).unwrap();
    println!("added: minc(Discussant, Holds, U1) = 2");
    let unsat = r.unsatisfiable_classes();
    for c in &unsat {
        println!("  {} UNSATISFIABLE", schema.class_name(*c));
    }
    assert_eq!(unsat.len(), 3, "paper: the system becomes unsolvable");
    println!("(paper: #talks = #speakers = #discussants forces a contradiction)");
}

// --------------------------------------------------------------------------
// Scaling and ablation experiments
// --------------------------------------------------------------------------

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

fn scaling(quick: bool) {
    e1_expansion(quick);
    e2_satisfiability(quick);
    e2b_system_ablation(quick);
    e3_accept_ablation(quick);
    e4_baseline(quick);
    e5_implication(quick);
    e6_disjointness(quick);
    e7_unrestricted(quick);
}

fn e7_unrestricted(quick: bool) {
    header("E8 — finite vs unrestricted satisfiability (the Figure 1 gap at scale)");
    println!("(schemas embed g copies of the Figure 1 gadget among 2g satisfiable classes)");
    println!("| gadgets | classes | finite-unsat | unrestricted-unsat | gap | finite ms | unrestricted ms |");
    println!("|---|---|---|---|---|---|---|");
    let gadget_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3, 4] };
    for &g in gadget_counts {
        let schema = gadget_schema(g);
        let (r, finite_ms) = time(|| Reasoner::new(&schema).unwrap());
        let finite_unsat = r.unsatisfiable_classes().len();
        let (viable, ms) = time(|| cr_core::unrestricted::viable_compound_classes(r.expansion()));
        let unrestricted_unsat = schema
            .classes()
            .filter(|&c| {
                !r.expansion()
                    .compound_classes_containing(c)
                    .iter()
                    .any(|&cc| viable[cc])
            })
            .count();
        println!(
            "| {g} | {} | {finite_unsat} | {unrestricted_unsat} | {} | {finite_ms:.2} | {ms:.2} |",
            schema.num_classes(),
            finite_unsat - unrestricted_unsat
        );
        assert_eq!(finite_unsat, 2 * g, "each gadget kills its two classes");
        assert_eq!(
            unrestricted_unsat, 0,
            "no gadget is unrestrictedly unsatisfiable"
        );
    }
}

/// `g` copies of the paper's Figure 1 gadget (finitely unsatisfiable,
/// unrestrictedly satisfiable) plus `2g` benign classes with ordinary
/// constraints. The gadget families are declared pairwise disjoint —
/// both realistic and the paper's own Section 5 advice for keeping the
/// expansion small (without it the expansion grows as `3^g · 4^g`).
fn gadget_schema(g: usize) -> Schema {
    use cr_core::schema::{Card, SchemaBuilder};
    let mut b = SchemaBuilder::new();
    let mut roots = Vec::new();
    for i in 0..g {
        let c = b.class(format!("C{i}"));
        let d = b.class(format!("D{i}"));
        b.isa(d, c);
        let r = b
            .relationship(format!("R{i}"), [("U1", c), ("U2", d)])
            .unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        // Benign companions.
        let p = b.class(format!("P{i}"));
        let q = b.class(format!("Q{i}"));
        let s = b
            .relationship(format!("S{i}"), [("V1", p), ("V2", q)])
            .unwrap();
        b.card(p, b.role(s, 0), Card::exactly(1)).unwrap();
        b.card(q, b.role(s, 1), Card::new(1, Some(2))).unwrap();
        roots.extend([c, p, q]);
    }
    if roots.len() >= 2 {
        b.disjoint(roots).unwrap();
    }
    b.build().unwrap()
}

fn e1_expansion(quick: bool) {
    header("E1 — expansion size is exponential in #classes, modulated by ISA");
    println!("| shape | classes | consistent cc | compound rels | build ms |");
    println!("|---|---|---|---|---|");
    let sizes: &[usize] = if quick {
        &[4, 8]
    } else {
        &[4, 6, 8, 10, 12, 14]
    };
    for &shape in &[
        SchemaShape::Flat,
        SchemaShape::IsaModerate,
        SchemaShape::IsaHeavy,
    ] {
        for &n in sizes {
            let schema = SchemaGen::shaped(shape, n, 3, 11).build();
            let config = ExpansionConfig {
                max_compound_classes: 1 << 20,
                max_compound_rels: 1 << 22,
            };
            let (exp, ms) = time(|| Expansion::build(&schema, &config));
            match exp {
                Ok(exp) => println!(
                    "| {shape:?} | {n} | {} | {} | {ms:.2} |",
                    exp.compound_classes().len(),
                    exp.compound_rels().len()
                ),
                Err(e) => println!("| {shape:?} | {n} | — | — | exceeded budget ({e}) |"),
            }
        }
    }
}

fn e2_satisfiability(quick: bool) {
    header("E2 — full satisfiability check (expansion + Ψ_S + fixpoint, aggregated LP)");
    println!("| classes | direct unknowns | agg unknowns | total ms | unsat classes |");
    println!("|---|---|---|---|---|");
    let sizes: &[usize] = if quick {
        &[3, 5]
    } else {
        &[3, 4, 5, 6, 7, 8, 9, 10]
    };
    for &n in sizes {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, n, 3, 23).build();
        let (r, ms) = time(|| Reasoner::new(&schema).unwrap());
        let agg = cr_core::agg::AggSystem::build(r.expansion());
        println!(
            "| {n} | {} | {} | {ms:.2} | {} |",
            r.system().num_unknowns(),
            agg.num_unknowns(),
            r.unsatisfiable_classes().len()
        );
    }
}

fn e2b_system_ablation(quick: bool) {
    header("E2b — direct (paper-verbatim) vs aggregated system ablation");
    println!("| classes | direct unknowns | direct ms | agg unknowns | agg ms | agree |");
    println!("|---|---|---|---|---|---|");
    let sizes: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5, 6] };
    for &n in sizes {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, n, 3, 23).build();
        let config = ExpansionConfig::default();
        let (direct, d_ms) = time(|| {
            Reasoner::with_strategy(&schema, &config, cr_core::sat::Strategy::Direct).unwrap()
        });
        let (agg, a_ms) = time(|| {
            Reasoner::with_strategy(&schema, &config, cr_core::sat::Strategy::Aggregated).unwrap()
        });
        let agree = direct.support() == agg.support();
        let agg_sys = cr_core::agg::AggSystem::build(agg.expansion());
        println!(
            "| {n} | {} | {d_ms:.2} | {} | {a_ms:.2} | {agree} |",
            direct.system().num_unknowns(),
            agg_sys.num_unknowns()
        );
        assert!(agree);
    }
}

fn e3_accept_ablation(quick: bool) {
    header("E3 — fixpoint vs the paper's literal Z-enumeration (Theorem 3.4)");
    println!("| classes | compound classes | fixpoint ms | z-enum ms | agree |");
    println!("|---|---|---|---|---|");
    let sizes: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4] };
    for &n in sizes {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, n, 2, 31).build();
        let (r, fix_ms) = time(|| Reasoner::new(&schema).unwrap());
        let (zs, z_ms) = time(|| {
            schema
                .classes()
                .map(|c| satisfiable_by_z_enumeration(r.expansion(), r.system(), c).unwrap())
                .collect::<Vec<_>>()
        });
        let agree = schema
            .classes()
            .zip(&zs)
            .all(|(c, &z)| r.is_class_satisfiable(c) == z);
        println!(
            "| {n} | {} | {fix_ms:.2} | {z_ms:.2} | {agree} |",
            r.expansion().compound_classes().len()
        );
        assert!(agree);
    }
}

fn e4_baseline(quick: bool) {
    header("E4 — what ISA costs: ICDE'94 vs the LN90 baseline on flat schemas");
    println!("| classes | LN90 unknowns | ICDE unknowns | LN90 ms | ICDE ms | agree |");
    println!("|---|---|---|---|---|---|");
    let sizes: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8] };
    for &n in sizes {
        let schema = SchemaGen::shaped(SchemaShape::Flat, n, 2, 41).build();
        let (base, base_ms) = time(|| BaselineReasoner::new(&schema).unwrap());
        let (full, full_ms) = time(|| Reasoner::new(&schema).unwrap());
        let agree = schema
            .classes()
            .all(|c| base.is_class_satisfiable(c) == full.is_class_satisfiable(c));
        println!(
            "| {n} | {} | {} | {base_ms:.2} | {full_ms:.2} | {agree} |",
            base.num_unknowns(),
            full.system().num_unknowns()
        );
        assert!(agree);
    }
}

fn e5_implication(quick: bool) {
    header("E5 — implication via reduction to satisfiability");
    println!("| classes | query | result | ms |");
    println!("|---|---|---|---|");
    let sizes: &[usize] = if quick { &[3] } else { &[3, 4, 5] };
    let config = ExpansionConfig::default();
    for &n in sizes {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, n, 2, 53).build();
        // Query the first declared card's (class, role).
        if let Some(d) = schema.card_declarations().first() {
            let (lo, ms1) = time(|| implied_minc(&schema, d.class, d.role, &config).unwrap());
            println!("| {n} | implied minc | {lo:?} | {ms1:.2} |");
            let (hi, ms2) =
                time(|| implied_maxc(&schema, d.class, d.role, &config, 1 << 12).unwrap());
            println!("| {n} | implied maxc | {hi:?} | {ms2:.2} |");
        }
        let (pairs, ms3) = time(|| Reasoner::new(&schema).unwrap().implied_isa_pairs());
        println!("| {n} | implied isa pairs | {} | {ms3:.2} |", pairs.len());
    }
}

fn e6_disjointness(quick: bool) {
    header("E6 — Section 5: disjointness dramatically shrinks the system");
    println!("| classes | disjoint group | consistent cc | rows | reason ms |");
    println!("|---|---|---|---|---|");
    let n = if quick { 6 } else { 8 };
    let groups: &[usize] = if quick { &[0, 4] } else { &[0, 2, 4, 6, 8] };
    for &g in groups {
        let mut gen = SchemaGen::shaped(SchemaShape::Flat, n, 3, 61);
        gen.disjoint_group = g;
        let schema = gen.build();
        let config = ExpansionConfig {
            max_compound_classes: 1 << 20,
            max_compound_rels: 1 << 22,
        };
        let (exp, _) = time(|| Expansion::build(&schema, &config).unwrap());
        let ncc = exp.compound_classes().len();
        let sys = cr_core::agg::AggSystem::build(&exp);
        let rows = sys.num_rows();
        drop(exp);
        let (r, ms) = time(|| Reasoner::with_config(&schema, &config).unwrap());
        let _ = r;
        println!("| {n} | {g} | {ncc} | {rows} | {ms:.2} |");
    }
}

// --------------------------------------------------------------------------
// `bench` — machine-readable snapshot (BENCH_<date>.json)
// --------------------------------------------------------------------------

/// Runs a compact version of the E-series sweeps plus a daemon load run
/// and writes one JSON document: per-experiment timing rows, and the
/// daemon's aggregate RunReport (the same schema `crsat --stats` emits,
/// so one toolchain reads both). The snapshot is what a release commits
/// at the repo root as `BENCH_<date>.json`.
fn bench_snapshot(quick: bool, out: &str, date: &str) {
    header(&format!("bench snapshot — {date}"));
    let mut rows: Vec<String> = Vec::new();

    // E1: expansion growth by ISA shape.
    let e1_sizes: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8, 10] };
    for &shape in &[
        SchemaShape::Flat,
        SchemaShape::IsaModerate,
        SchemaShape::IsaHeavy,
    ] {
        for &n in e1_sizes {
            let schema = SchemaGen::shaped(shape, n, 3, 11).build();
            let config = ExpansionConfig {
                max_compound_classes: 1 << 20,
                max_compound_rels: 1 << 22,
            };
            let (exp, ms) = time(|| Expansion::build(&schema, &config));
            if let Ok(exp) = exp {
                rows.push(format!(
                    "{{\"id\":\"E1\",\"shape\":\"{shape:?}\",\"classes\":{n},\
                     \"compound_classes\":{},\"compound_rels\":{},\"ms\":{ms:.3}}}",
                    exp.compound_classes().len(),
                    exp.compound_rels().len()
                ));
            }
        }
    }

    // E2: full satisfiability check.
    let e2_sizes: &[usize] = if quick { &[3, 5] } else { &[3, 5, 7, 9] };
    for &n in e2_sizes {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, n, 3, 23).build();
        let (r, ms) = time(|| Reasoner::new(&schema).unwrap());
        rows.push(format!(
            "{{\"id\":\"E2\",\"classes\":{n},\"unknowns\":{},\
             \"unsat_classes\":{},\"ms\":{ms:.3}}}",
            r.system().num_unknowns(),
            r.unsatisfiable_classes().len()
        ));
    }

    // E4: ICDE'94 vs the LN90 baseline on flat schemas.
    let e4_sizes: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8] };
    for &n in e4_sizes {
        let schema = SchemaGen::shaped(SchemaShape::Flat, n, 2, 41).build();
        let (base, base_ms) = time(|| BaselineReasoner::new(&schema).unwrap());
        let (full, full_ms) = time(|| Reasoner::new(&schema).unwrap());
        let agree = schema
            .classes()
            .all(|c| base.is_class_satisfiable(c) == full.is_class_satisfiable(c));
        assert!(agree);
        rows.push(format!(
            "{{\"id\":\"E4\",\"classes\":{n},\"baseline_ms\":{base_ms:.3},\
             \"full_ms\":{full_ms:.3},\"agree\":{agree}}}"
        ));
    }

    // E5: implication probes.
    let e5_sizes: &[usize] = if quick { &[3] } else { &[3, 4, 5] };
    let config = ExpansionConfig::default();
    for &n in e5_sizes {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, n, 2, 53).build();
        if let Some(d) = schema.card_declarations().first() {
            let (_, minc_ms) = time(|| implied_minc(&schema, d.class, d.role, &config).unwrap());
            let (_, maxc_ms) =
                time(|| implied_maxc(&schema, d.class, d.role, &config, 1 << 12).unwrap());
            rows.push(format!(
                "{{\"id\":\"E5\",\"classes\":{n},\
                 \"minc_ms\":{minc_ms:.3},\"maxc_ms\":{maxc_ms:.3}}}"
            ));
        }
    }

    d_series(quick, &mut rows);

    let daemon = daemon_load(quick);

    let doc = format!(
        "{{\"version\":1,\"date\":\"{date}\",\"quick\":{quick},\
         \"experiments\":[{}],\"daemon\":{daemon}}}\n",
        rows.join(",")
    );
    match std::fs::write(out, &doc) {
        Ok(()) => println!(
            "bench snapshot written to {out} ({} experiment rows)",
            rows.len()
        ),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}

// --------------------------------------------------------------------------
// D-series — incremental (delta) re-checking on an edit stream
// --------------------------------------------------------------------------

/// `g` pairwise-disjoint ISA chains (C ≼ B ≼ A), each with a relationship
/// whose cards have min ≥ 1 and a wide max window — the interactive-editor
/// shape: tightening one bound at a time never changes the Venn atoms and
/// keeps the base witness acceptable, so the delta path can reuse the
/// whole fixpoint (`cr-delta`'s zero-LP reuse).
fn edit_stream_schema(g: usize, max: u64) -> String {
    let mut s = String::new();
    let mut roots = Vec::new();
    for i in 0..g {
        s.push_str(&format!(
            "class A{i}; class B{i} isa A{i}; class C{i} isa B{i};\n\
             relationship R{i} (U1: A{i}, U2: C{i});\n\
             card A{i} in R{i}.U1: 1..{max};\n\
             card C{i} in R{i}.U2: 1..{max};\n"
        ));
        roots.push(format!("A{i}"));
    }
    if roots.len() >= 2 {
        s.push_str(&format!("disjoint {};\n", roots.join(", ")));
    }
    s
}

/// The edit-stream workload: `edits` sequential one-constraint tightenings
/// per schema size, each checked twice — incrementally through
/// `cr_delta::check_delta` (chaining each verdict's context into the next
/// edit, as an editor session would) and from scratch. Appends one
/// `D<n>` row per size with both cumulative timings and prints the
/// geometric-mean speedup across sizes.
fn d_series(quick: bool, rows: &mut Vec<String>) {
    use cr_core::budget::Budget;

    header("D — incremental re-check on an edit stream (delta vs from-scratch)");
    println!("| id | classes | edits | delta ms | scratch ms | speedup |");
    println!("|---|---|---|---|---|---|");
    const START_MAX: u64 = 64;
    let sweeps: &[(usize, usize)] = if quick {
        &[(2, 8), (3, 8)]
    } else {
        &[(2, 24), (4, 24), (6, 24)]
    };
    let budget = Budget::unlimited();
    let config = ExpansionConfig::default();
    let mut speedups = Vec::new();
    for (d, &(g, edits)) in sweeps.iter().enumerate() {
        let base_src = edit_stream_schema(g, START_MAX);
        let base_schema = cr_lang::parse_schema(&base_src).unwrap();
        let mut ctx = cr_delta::DeltaContext::from_schema(&base_schema, &config, &budget).unwrap();
        let mut cur = base_src;
        let mut delta_ms = 0.0;
        let mut scratch_ms = 0.0;
        for j in 0..edits {
            // Round-robin over the chains; each edit shrinks one max by 1.
            let chain = j % g;
            let old_max = START_MAX - (j / g) as u64;
            let next = cur.replace(
                &format!("card C{chain} in R{chain}.U2: 1..{old_max};"),
                &format!("card C{chain} in R{chain}.U2: 1..{};", old_max - 1),
            );
            assert_ne!(next, cur, "edit {j} must change the schema");
            let edited_schema = cr_lang::parse_schema(&next).unwrap();
            let diff = cr_lang::diff_canonical(ctx.canonical(), &edited_schema.canonical_form());
            let (outcome, d_ms) = time(|| {
                cr_delta::check_delta(
                    &ctx,
                    &diff,
                    &cr_delta::DeltaConfig::default(),
                    &config,
                    &budget,
                )
                .unwrap()
            });
            delta_ms += d_ms;
            let verdict = match outcome {
                cr_delta::DeltaOutcome::Checked(v) => v,
                cr_delta::DeltaOutcome::Fallback { reason, .. } => {
                    panic!("D-series edits must stay on the delta path, got fallback: {reason}")
                }
            };
            let (scratch_unsat, s_ms) = time(|| {
                let r = Reasoner::new(&edited_schema).unwrap();
                let classes = r.unsatisfiable_classes().len();
                let rels = edited_schema
                    .rels()
                    .filter(|&rel| !r.is_rel_satisfiable(rel))
                    .count();
                (classes, rels)
            });
            scratch_ms += s_ms;
            assert_eq!(
                scratch_unsat,
                (verdict.unsat_classes.len(), verdict.unsat_rels.len()),
                "delta and from-scratch verdicts must agree on edit {j}"
            );
            ctx = verdict.next;
            cur = next;
        }
        let speedup = scratch_ms / delta_ms;
        speedups.push(speedup);
        println!(
            "| D{} | {} | {edits} | {delta_ms:.2} | {scratch_ms:.2} | {speedup:.1}x |",
            d + 1,
            3 * g
        );
        rows.push(format!(
            "{{\"id\":\"D{}\",\"classes\":{},\"edits\":{edits},\
             \"delta_ms\":{delta_ms:.3},\"scratch_ms\":{scratch_ms:.3}}}",
            d + 1,
            3 * g
        ));
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("D-series geometric-mean speedup: {geomean:.1}x (delta vs from-scratch)");
    assert!(
        geomean >= 2.0,
        "delta path must stay at least 2x faster than from-scratch on the edit stream \
         (got {geomean:.2}x)"
    );
}

// --------------------------------------------------------------------------
// `bench --compare` — the regression gate
// --------------------------------------------------------------------------

/// Diffs the freshly written snapshot at `new_path` against the committed
/// baseline at `base_path` and exits 1 when any experiment family's
/// geometric-mean slowdown exceeds `threshold_pct` percent.
///
/// Rows are matched by identity (`id` plus every non-timing field:
/// `shape`, `classes`, ...); for each matched row every `*_ms` field
/// contributes a slowdown ratio new/base, and the daemon row contributes
/// base/new over `throughput_rps` (lower throughput = regression). Ratios
/// are aggregated per family (E1, E2, E4, E5, daemon) by geometric mean —
/// a single noisy row cannot trip the gate, a consistent slowdown across
/// a family does. The same logic is mirrored by `ci/bench_gate.py` so the
/// gate runs both natively and from CI scripting.
fn compare_snapshots(new_path: &str, base_path: &str, threshold_pct: f64) {
    let read = |p: &str| -> cr_trace::json::Value {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench gate: cannot read {p}: {e}");
            std::process::exit(2);
        });
        cr_trace::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench gate: cannot parse {p}: {e}");
            std::process::exit(2);
        })
    };
    let fresh = read(new_path);
    let base = read(base_path);
    let mut families: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();

    // Experiment rows: match by identity key, ratio every shared *_ms.
    let rows = |doc: &cr_trace::json::Value| -> Vec<cr_trace::json::Value> {
        doc.get("experiments")
            .and_then(|e| e.as_arr())
            .map(<[cr_trace::json::Value]>::to_vec)
            .unwrap_or_default()
    };
    let base_rows = rows(&base);
    for row in rows(&fresh) {
        let Some(obj) = row.as_obj() else { continue };
        let key = row_identity(obj);
        let Some(base_obj) = base_rows
            .iter()
            .filter_map(|r| r.as_obj())
            .find(|b| row_identity(b) == key)
        else {
            println!("bench gate: no baseline row for {key} (new experiment, skipped)");
            continue;
        };
        let family = obj
            .get("id")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        for (field, value) in obj {
            if !field.ends_with("_ms") {
                continue;
            }
            let (Some(new_ms), Some(base_ms)) =
                (as_f64(value), base_obj.get(field).and_then(as_f64))
            else {
                continue;
            };
            // Sub-millisecond rows are pure noise at CI granularity.
            if base_ms > 0.5 && new_ms > 0.0 {
                families
                    .entry(family.clone())
                    .or_default()
                    .push(new_ms / base_ms);
            }
        }
    }

    // Daemon throughput: invert so >1 always means "got worse".
    let rps = |doc: &cr_trace::json::Value| {
        doc.get("daemon")
            .and_then(|d| d.get("throughput_rps"))
            .and_then(as_f64)
    };
    if let (Some(new_rps), Some(base_rps)) = (rps(&fresh), rps(&base)) {
        if new_rps > 0.0 && base_rps > 0.0 {
            families
                .entry("daemon".to_string())
                .or_default()
                .push(base_rps / new_rps);
        }
    }

    if families.is_empty() {
        eprintln!("bench gate: no comparable rows between {new_path} and {base_path}");
        std::process::exit(2);
    }
    let limit = 1.0 + threshold_pct / 100.0;
    let mut failed = false;
    println!("\nbench gate: {new_path} vs {base_path} (threshold {threshold_pct:.0}%)");
    println!("| family | rows | geomean slowdown | verdict |");
    println!("|---|---|---|---|");
    for (family, ratios) in &families {
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        let verdict = if geomean > limit {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "| {family} | {} | {geomean:.3}x | {verdict} |",
            ratios.len()
        );
    }
    if failed {
        eprintln!("bench gate: FAILED — a family regressed past {limit:.2}x");
        std::process::exit(1);
    }
    println!("bench gate: ok");
}

/// A row's identity: every field that is not a timing/throughput
/// measurement, rendered `k=v` sorted (BTreeMap order) — `id=E1
/// shape=Flat classes=4` matches across snapshots even if timing fields
/// come and go.
fn row_identity(obj: &std::collections::BTreeMap<String, cr_trace::json::Value>) -> String {
    let mut parts = Vec::new();
    for (k, v) in obj {
        if k.ends_with("_ms") || k == "ms" || k == "throughput_rps" {
            continue;
        }
        let rendered = match v {
            cr_trace::json::Value::Str(s) => s.clone(),
            cr_trace::json::Value::Num(n) => format!("{n}"),
            cr_trace::json::Value::Bool(b) => format!("{b}"),
            _ => continue,
        };
        parts.push(format!("{k}={rendered}"));
    }
    parts.join(" ")
}

fn as_f64(v: &cr_trace::json::Value) -> Option<f64> {
    match v {
        cr_trace::json::Value::Num(n) => Some(*n),
        _ => None,
    }
}

/// The daemon load generator: boots an in-process server, pushes a batch
/// of distinct generated checks through the worker pool (with mixed
/// priorities and per-request deadlines, so the admission path is the
/// production one), replays half of them to exercise the verdict cache,
/// and returns a JSON object embedding the server-lifetime aggregate
/// RunReport.
fn daemon_load(quick: bool) -> String {
    use cr_server::{Op, Request, Server, ServerConfig};
    use std::sync::mpsc;

    let workers = 4;
    let server = Server::new(ServerConfig {
        workers,
        ..ServerConfig::default()
    });
    let n = if quick { 12 } else { 32 };
    let lines: Vec<String> = (0..n)
        .map(|i| {
            let schema = SchemaGen::shaped(SchemaShape::IsaModerate, 3 + i % 3, 2, 101 + i as u64);
            let mut request = Request::new(format!("load-{i}"), Op::Check);
            request.schema = Some(cr_lang::print_schema(&schema.build()));
            request.priority = (i % 10) as u8;
            request.deadline_ms = Some(30_000);
            request.to_json()
        })
        .collect();
    let drive = |batch: &[String]| {
        let (tx, rx) = mpsc::channel();
        for line in batch {
            let tx = tx.clone();
            let worker = server.clone();
            let line = line.clone();
            server
                .submit(Box::new(move || {
                    let response = worker.process_line(&line);
                    tx.send(response.status).unwrap();
                }))
                .expect("pool accepts load jobs");
        }
        drop(tx);
        rx.iter().count()
    };
    let t0 = Instant::now();
    let answered = drive(&lines) + drive(&lines[..n / 2]);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = server.final_report("ok");
    server.finish();
    let requests = lines.len() + n / 2;
    assert_eq!(answered, requests, "every load request must be answered");
    format!(
        "{{\"requests\":{requests},\"workers\":{workers},\"wall_ms\":{wall_ms:.3},\
         \"throughput_rps\":{:.1},\"report\":{}}}",
        requests as f64 / (wall_ms / 1e3),
        report.to_json()
    )
}
