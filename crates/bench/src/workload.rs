//! Seeded random CR-schema generation.
//!
//! The generator grows an ISA forest, types relationships over it, declares
//! cardinality windows on primary classes and *refinements* on their
//! descendants (the construct whose interaction the paper studies), and can
//! add disjointness groups for the E6 ablation. Everything is driven by a
//! seed, so every bench run sees identical workloads.

use cr_core::isa::IsaClosure;
use cr_core::schema::{Card, Schema, SchemaBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Convenience shapes used across the benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemaShape {
    /// No ISA at all (the LN90 fragment).
    Flat,
    /// A moderately deep ISA forest with refinements.
    IsaModerate,
    /// Dense ISA (most classes have a parent, many refinements).
    IsaHeavy,
}

/// Parameters for random schema generation.
#[derive(Clone, Debug)]
pub struct SchemaGen {
    /// Number of classes.
    pub classes: usize,
    /// Number of binary relationships.
    pub rels: usize,
    /// Probability that a class is given a parent in the ISA forest.
    pub isa_density: f64,
    /// Probability that a role's primary class receives a declared window.
    pub card_density: f64,
    /// Probability that each strict descendant of a constrained primary
    /// receives a refinement.
    pub refinement_density: f64,
    /// Magnitude bound for declared cardinalities.
    pub max_card: u64,
    /// Probability a declared window has a finite maximum.
    pub tightness: f64,
    /// Number of pairwise ISA-incomparable classes to declare disjoint
    /// (0 = no disjointness).
    pub disjoint_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SchemaGen {
    /// A preset for the given shape and size.
    pub fn shaped(shape: SchemaShape, classes: usize, rels: usize, seed: u64) -> SchemaGen {
        let (isa, refine) = match shape {
            SchemaShape::Flat => (0.0, 0.0),
            SchemaShape::IsaModerate => (0.5, 0.3),
            SchemaShape::IsaHeavy => (0.9, 0.6),
        };
        SchemaGen {
            classes,
            rels,
            isa_density: isa,
            card_density: 0.7,
            refinement_density: refine,
            max_card: 4,
            tightness: 0.6,
            disjoint_group: 0,
            seed,
        }
    }

    /// Generates the schema.
    pub fn build(&self) -> Schema {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = SchemaBuilder::new();
        let classes: Vec<_> = (0..self.classes)
            .map(|i| b.class(format!("C{i}")))
            .collect();

        // ISA forest: parents only among earlier classes (acyclic).
        let mut parent: Vec<Option<usize>> = vec![None; self.classes];
        for i in 1..self.classes {
            if rng.gen_bool(self.isa_density) {
                let p = rng.gen_range(0..i);
                parent[i] = Some(p);
                b.isa(classes[i], classes[p]);
            }
        }

        // Relationships over random primaries.
        let mut roles = Vec::new();
        for r in 0..self.rels {
            let p0 = rng.gen_range(0..self.classes);
            let p1 = rng.gen_range(0..self.classes);
            let rel = b
                .relationship(format!("R{r}"), [("u", classes[p0]), ("v", classes[p1])])
                .expect("arity 2 with unique names");
            roles.push((b.role(rel, 0), p0));
            roles.push((b.role(rel, 1), p1));
        }

        // A probe schema to compute the closure for refinements.
        let closure = {
            let mut pb = SchemaBuilder::new();
            let pc: Vec<_> = (0..self.classes)
                .map(|i| pb.class(format!("C{i}")))
                .collect();
            for (i, p) in parent.iter().enumerate() {
                if let Some(p) = p {
                    pb.isa(pc[i], pc[*p]);
                }
            }
            IsaClosure::compute(&pb.build().expect("probe validates"))
        };

        let gen_card = |rng: &mut StdRng| {
            let min = rng.gen_range(0..=self.max_card / 2);
            let max = if rng.gen_bool(self.tightness) {
                Some(rng.gen_range(min.max(1)..=self.max_card))
            } else {
                None
            };
            Card::new(min, max)
        };

        for &(role, primary) in &roles {
            if rng.gen_bool(self.card_density) {
                b.card(classes[primary], role, gen_card(&mut rng))
                    .expect("first declaration for this pair");
            }
            for desc in closure.descendants(classes[primary]).iter() {
                if desc != primary && rng.gen_bool(self.refinement_density) {
                    // Duplicate (class, role) pairs can arise when two roles
                    // share a primary; skip quietly.
                    let _ = b.card(classes[desc], role, gen_card(&mut rng));
                }
            }
        }

        // Disjointness among pairwise ISA-incomparable classes.
        if self.disjoint_group >= 2 {
            let mut group: Vec<usize> = Vec::new();
            for i in 0..self.classes {
                let comparable = group.iter().any(|&g| {
                    closure.is_subclass_of(classes[i], classes[g])
                        || closure.is_subclass_of(classes[g], classes[i])
                });
                if !comparable {
                    group.push(i);
                    if group.len() == self.disjoint_group {
                        break;
                    }
                }
            }
            if group.len() >= 2 {
                b.disjoint(group.iter().map(|&i| classes[i]))
                    .expect("at least two classes");
            }
        }

        b.build().expect("generated schema validates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let g = SchemaGen::shaped(SchemaShape::IsaModerate, 6, 4, 42);
        let a = g.build();
        let b = g.build();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SchemaGen::shaped(SchemaShape::IsaHeavy, 8, 5, 1).build();
        let b = SchemaGen::shaped(SchemaShape::IsaHeavy, 8, 5, 2).build();
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn flat_shape_has_no_isa() {
        let s = SchemaGen::shaped(SchemaShape::Flat, 10, 6, 7).build();
        assert!(s.isa_statements().is_empty());
        // Flat schemas stay inside the LN90 fragment.
        assert!(cr_baseline::BaselineReasoner::new(&s).is_ok());
    }

    #[test]
    fn generated_schemas_are_reasonable() {
        for seed in 0..10 {
            let s = SchemaGen::shaped(SchemaShape::IsaModerate, 5, 3, seed).build();
            assert_eq!(s.num_classes(), 5);
            assert_eq!(s.num_rels(), 3);
            // The reasoner must handle every generated schema.
            let r = cr_core::sat::Reasoner::new(&s).unwrap();
            let _ = r.unsatisfiable_classes();
        }
    }

    #[test]
    fn disjoint_group_emitted() {
        let mut g = SchemaGen::shaped(SchemaShape::Flat, 8, 2, 3);
        g.disjoint_group = 4;
        let s = g.build();
        assert_eq!(s.disjointness_groups().len(), 1);
        assert_eq!(s.disjointness_groups()[0].len(), 4);
    }
}
