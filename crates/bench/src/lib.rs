//! Benchmark harness for the cr-reason workspace: seeded random schema
//! generation (the workload axis of experiments E1–E6) and small shared
//! helpers for the `reproduce` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workload;

pub use workload::{SchemaGen, SchemaShape};
