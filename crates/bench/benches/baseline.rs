//! E4 — what the ISA generalization costs: the ICDE'94 expansion-based
//! procedure vs the LN90 linear-size baseline on their common (ISA-free)
//! fragment, and the ICDE'94 procedure alone as ISA density grows.

use cr_baseline::BaselineReasoner;
use cr_bench::{SchemaGen, SchemaShape};
use cr_core::sat::Reasoner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_schemas");
    group.sample_size(10);
    for classes in [4, 6, 8] {
        let schema = SchemaGen::shaped(SchemaShape::Flat, classes, 2, 41).build();
        group.bench_with_input(BenchmarkId::new("ln90", classes), &schema, |b, s| {
            b.iter(|| BaselineReasoner::new(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("icde94", classes), &schema, |b, s| {
            b.iter(|| Reasoner::new(s).unwrap())
        });
    }
    group.finish();

    let mut density = c.benchmark_group("isa_density_cost");
    density.sample_size(10);
    for (label, shape) in [
        ("flat", SchemaShape::Flat),
        ("moderate", SchemaShape::IsaModerate),
        ("heavy", SchemaShape::IsaHeavy),
    ] {
        let schema = SchemaGen::shaped(shape, 5, 3, 47).build();
        density.bench_with_input(BenchmarkId::from_parameter(label), &schema, |b, s| {
            b.iter(|| Reasoner::new(s).unwrap())
        });
    }
    density.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
