//! E3 — acceptable-solution search ablation: polynomial fixpoint vs the
//! paper's literal `Z ⊆ V_C` enumeration (Theorem 3.4).

use cr_bench::{SchemaGen, SchemaShape};
use cr_core::expansion::{Expansion, ExpansionConfig};
use cr_core::sat::zenum::satisfiable_by_z_enumeration;
use cr_core::sat::{fixpoint, Reasoner};
use cr_core::system::CrSystem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("accept_search");
    group.sample_size(10);
    for classes in [2, 3, 4] {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, classes, 2, 31).build();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        let ncc = exp.compound_classes().len();

        group.bench_with_input(
            BenchmarkId::new("fixpoint", format!("{classes}c_{ncc}cc")),
            &sys,
            |b, sys| b.iter(|| fixpoint::maximal_acceptable_support(sys)),
        );
        group.bench_with_input(
            BenchmarkId::new("z_enumeration", format!("{classes}c_{ncc}cc")),
            &(&schema, &exp, &sys),
            |b, (schema, exp, sys)| {
                b.iter(|| {
                    schema
                        .classes()
                        .map(|cl| satisfiable_by_z_enumeration(exp, sys, cl).unwrap())
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();

    // Sanity: the two must agree (checked once outside the timing loop).
    let schema = SchemaGen::shaped(SchemaShape::IsaModerate, 4, 2, 31).build();
    let r = Reasoner::new(&schema).unwrap();
    for cl in schema.classes() {
        assert_eq!(
            r.is_class_satisfiable(cl),
            satisfiable_by_z_enumeration(r.expansion(), r.system(), cl).unwrap()
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
