//! E1 — expansion construction: exponential in #classes, modulated by ISA
//! density and (E6 companion) by disjointness.

use cr_bench::{SchemaGen, SchemaShape};
use cr_core::expansion::{Expansion, ExpansionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_build");
    let config = ExpansionConfig {
        max_compound_classes: 1 << 20,
        max_compound_rels: 1 << 22,
    };
    for shape in [
        SchemaShape::Flat,
        SchemaShape::IsaModerate,
        SchemaShape::IsaHeavy,
    ] {
        for classes in [4, 8, 10] {
            let schema = SchemaGen::shaped(shape, classes, 3, 11).build();
            group.bench_with_input(
                BenchmarkId::new(format!("{shape:?}"), classes),
                &schema,
                |b, s| b.iter(|| Expansion::build(s, &config).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
