//! E7b — arbitrary-precision arithmetic kernels: schoolbook vs Karatsuba
//! multiplication (locating the crossover that set `KARATSUBA_THRESHOLD`)
//! and division/gcd costs as they appear in simplex pivoting.

use cr_bigint::{BigInt, Uint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_uint(limbs: usize, rng: &mut StdRng) -> Uint {
    Uint::from_limbs((0..limbs).map(|_| rng.gen()).collect())
}

fn bench_bigint(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(97);

    let mut mul = c.benchmark_group("mul");
    for limbs in [8, 16, 32, 64, 128, 256] {
        let a = random_uint(limbs, &mut rng);
        let b = random_uint(limbs, &mut rng);
        mul.bench_with_input(
            BenchmarkId::new("schoolbook", limbs),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| a.mul_schoolbook(b)),
        );
        mul.bench_with_input(
            BenchmarkId::new("auto_karatsuba", limbs),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| a.mul(b)),
        );
    }
    mul.finish();

    let mut div = c.benchmark_group("div_rem");
    for limbs in [16, 64, 256] {
        let a = random_uint(limbs * 2, &mut rng);
        let b = random_uint(limbs, &mut rng);
        div.bench_with_input(
            BenchmarkId::from_parameter(limbs),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| a.div_rem(b)),
        );
    }
    div.finish();

    let mut gcd = c.benchmark_group("gcd");
    for limbs in [4, 16, 64] {
        let a = BigInt::from(random_uint(limbs, &mut rng));
        let b = BigInt::from(random_uint(limbs, &mut rng));
        gcd.bench_with_input(
            BenchmarkId::from_parameter(limbs),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| a.gcd(b)),
        );
    }
    gcd.finish();
}

criterion_group!(benches, bench_bigint);
criterion_main!(benches);
