//! E8 — reasoning-service throughput: requests/second as the worker pool
//! widens, and the cold-cache vs warm-cache gap for repeated questions.
//!
//! Two knobs dominate service latency: parallelism across independent
//! requests (the pipeline itself is single-threaded per question), and the
//! verdict cache (a hit skips the EXPTIME pipeline entirely). The groups:
//!
//! * `server_throughput/workers=N` — one batch of distinct `check`
//!   requests pushed through pools of width 1/2/4/8 with caching
//!   neutralized (capacity 1), isolating worker scaling;
//! * `server_cache/{cold,warm}` — the same batch against an empty cache
//!   vs a pre-warmed one, measuring what amortization buys.
//!
//! After the criterion runs, the bench prints the warm server's aggregate
//! hit/miss counters so the observed hit rate lands in the bench log.

use std::sync::mpsc;

use cr_bench::{SchemaGen, SchemaShape};
use cr_lang::print_schema;
use cr_server::{Op, Request, Server, ServerConfig};
use cr_trace::Counter;
use criterion::{criterion_group, criterion_main, Criterion};

const BATCH: usize = 24;

/// Pre-rendered request lines over distinct generated schemas, so each
/// request exercises parse → canonicalize → expand → solve.
fn request_lines() -> Vec<String> {
    (0..BATCH)
        .map(|i| {
            let schema =
                SchemaGen::shaped(SchemaShape::IsaModerate, 3 + i % 2, 2, 7 + i as u64).build();
            let mut request = Request::new(format!("r{i}"), Op::Check);
            request.schema = Some(print_schema(&schema));
            request.to_json()
        })
        .collect()
}

/// Pushes every line through the server's pool and waits for all
/// responses — one synchronous "batch of concurrent clients".
fn drive(server: &Server, lines: &[String]) {
    let (tx, rx) = mpsc::channel();
    for line in lines {
        let tx = tx.clone();
        let worker = server.clone();
        let line = line.clone();
        server
            .submit(Box::new(move || {
                let response = worker.process_line(&line);
                tx.send(response.status).unwrap();
            }))
            .expect("pool accepts bench jobs");
    }
    drop(tx);
    assert_eq!(rx.iter().count(), lines.len());
}

fn bench_server(c: &mut Criterion) {
    let lines = request_lines();

    let mut throughput = c.benchmark_group("server_throughput");
    throughput.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        // cache_capacity 1 keeps repeats across criterion iterations from
        // turning the measurement into a cache benchmark.
        let server = Server::new(ServerConfig {
            workers,
            cache_capacity: 1,
            cache_shards: 1,
            ..ServerConfig::default()
        });
        throughput.bench_function(format!("workers={workers}"), |b| {
            b.iter(|| drive(&server, &lines))
        });
        server.finish();
    }
    throughput.finish();

    let mut cache = c.benchmark_group("server_cache");
    cache.sample_size(10);
    {
        let cold = Server::new(ServerConfig {
            workers: 4,
            cache_capacity: 1,
            cache_shards: 1,
            ..ServerConfig::default()
        });
        cache.bench_function("cold", |b| b.iter(|| drive(&cold, &lines)));
        cold.finish();
    }
    let warm = Server::new(ServerConfig {
        workers: 4,
        cache_capacity: 4096,
        ..ServerConfig::default()
    });
    drive(&warm, &lines); // warm-up: fill the cache
    cache.bench_function("warm", |b| b.iter(|| drive(&warm, &lines)));
    cache.finish();

    let hits = warm.aggregate_counter(Counter::CacheHits);
    let misses = warm.aggregate_counter(Counter::CacheMisses);
    println!(
        "warm server cache: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    assert_eq!(misses, BATCH as u64, "only the warm-up round may miss");
    warm.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
