//! E5 — implication checking: single Section 4 queries and tightest-bound
//! searches on the paper's meeting schema and random schemas.

use cr_bench::{SchemaGen, SchemaShape};
use cr_core::expansion::ExpansionConfig;
use cr_core::implication::{implied_maxc, implied_minc, implies_maxc, implies_minc};
use cr_core::sat::Reasoner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const MEETING: &str = r#"
    class Speaker;
    class Discussant isa Speaker;
    class Talk;
    relationship Holds (U1: Speaker, U2: Talk);
    relationship Participates (U3: Discussant, U4: Talk);
    card Speaker in Holds.U1: 1..*;
    card Discussant in Holds.U1: 0..2;
    card Talk in Holds.U2: 1..1;
    card Discussant in Participates.U3: 1..1;
    card Talk in Participates.U4: 1..*;
"#;

fn bench_implication(c: &mut Criterion) {
    let schema = cr_lang::parse_schema(MEETING).unwrap();
    let speaker = schema.class_by_name("Speaker").unwrap();
    let discussant = schema.class_by_name("Discussant").unwrap();
    let holds = schema.rel_by_name("Holds").unwrap();
    let u1 = schema.role_by_name(holds, "U1").unwrap();
    let config = ExpansionConfig::default();

    let mut group = c.benchmark_group("implication_meeting");
    group.sample_size(10);
    group.bench_function("isa_query", |b| {
        // Reuses the precomputed support: near-free after Reasoner::new.
        let r = Reasoner::new(&schema).unwrap();
        b.iter(|| r.implies_isa(speaker, discussant))
    });
    group.bench_function("single_maxc_query", |b| {
        b.iter(|| implies_maxc(&schema, speaker, u1, 1, &config).unwrap())
    });
    group.bench_function("single_minc_query", |b| {
        b.iter(|| implies_minc(&schema, speaker, u1, 1, &config).unwrap())
    });
    group.bench_function("tightest_maxc_search", |b| {
        b.iter(|| implied_maxc(&schema, speaker, u1, &config, 1 << 12).unwrap())
    });
    group.bench_function("tightest_minc_search", |b| {
        b.iter(|| implied_minc(&schema, speaker, u1, &config).unwrap())
    });
    group.finish();

    let mut random = c.benchmark_group("implication_random");
    random.sample_size(10);
    for classes in [3, 4, 5] {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, classes, 2, 53).build();
        if let Some(d) = schema.card_declarations().first() {
            let (class, role) = (d.class, d.role);
            random.bench_with_input(BenchmarkId::new("single_minc", classes), &schema, |b, s| {
                b.iter(|| implies_minc(s, class, role, 1, &config).unwrap())
            });
        }
    }
    random.finish();
}

criterion_group!(benches, bench_implication);
criterion_main!(benches);
