//! E2 — full satisfiability pipeline (expansion + Ψ_S + acceptable-support
//! fixpoint) as schema size grows.

use cr_bench::{SchemaGen, SchemaShape};
use cr_core::sat::Reasoner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reasoner_full_check");
    group.sample_size(10);
    for classes in [3, 4, 5, 6] {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, classes, 3, 23).build();
        group.bench_with_input(BenchmarkId::from_parameter(classes), &schema, |b, s| {
            b.iter(|| Reasoner::new(s).unwrap())
        });
    }
    group.finish();

    // The meeting schema of the paper as a fixed reference point.
    let mut fixed = c.benchmark_group("reasoner_meeting_schema");
    let schema = cr_lang::parse_schema(
        r#"
        class Speaker;
        class Discussant isa Speaker;
        class Talk;
        relationship Holds (U1: Speaker, U2: Talk);
        relationship Participates (U3: Discussant, U4: Talk);
        card Speaker in Holds.U1: 1..*;
        card Discussant in Holds.U1: 0..2;
        card Talk in Holds.U2: 1..1;
        card Discussant in Participates.U3: 1..1;
        card Talk in Participates.U4: 1..*;
    "#,
    )
    .unwrap();
    fixed.bench_function("figures_2_3", |b| {
        b.iter(|| Reasoner::new(&schema).unwrap())
    });
    fixed.finish();
}

criterion_group!(benches, bench_satisfiability);
criterion_main!(benches);
