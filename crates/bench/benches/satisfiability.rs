//! E2 — full satisfiability pipeline (expansion + Ψ_S + acceptable-support
//! fixpoint) as schema size grows, plus the null-sink tracing overhead
//! check and a machine-readable RunReport emitted alongside the criterion
//! output.

use cr_bench::{SchemaGen, SchemaShape};
use cr_core::expansion::ExpansionConfig;
use cr_core::sat::{Reasoner, Strategy};
use cr_core::Budget;
use cr_trace::{NullSink, Tracer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Writes a RunReport for one instrumented pipeline run per schema size
/// next to the criterion output (`<target>/criterion/run_reports/`), so
/// EXPERIMENTS.md tooling can read stage durations and domain counters
/// without scraping bench logs.
fn emit_run_reports() {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "../../target".to_string());
    let dir = std::path::Path::new(&target).join("criterion/run_reports");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    for classes in [3, 4, 5, 6] {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, classes, 3, 23).build();
        let tracer = Tracer::new(Box::new(NullSink));
        let budget = Budget::unlimited().with_tracer(&tracer);
        let outcome = match Reasoner::with_budget(
            &schema,
            &ExpansionConfig::default(),
            Strategy::default(),
            &budget,
        ) {
            Ok(_) => "ok",
            Err(_) => "error",
        };
        let mut report = cr_core::run_report(&budget, "bench:reasoner_full_check", outcome);
        report.target = format!("SchemaGen(IsaModerate, classes={classes}, rels=3, seed=23)");
        let path = dir.join(format!("satisfiability_{classes}.json"));
        let _ = std::fs::write(path, report.to_json() + "\n");
    }
    println!("run reports written to {}", dir.display());
}

fn bench_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reasoner_full_check");
    group.sample_size(10);
    for classes in [3, 4, 5, 6] {
        let schema = SchemaGen::shaped(SchemaShape::IsaModerate, classes, 3, 23).build();
        group.bench_with_input(BenchmarkId::from_parameter(classes), &schema, |b, s| {
            b.iter(|| Reasoner::new(s).unwrap())
        });
    }
    group.finish();

    // The acceptance gate for the tracing layer: a null-sink tracer on the
    // same workload must be indistinguishable from no tracer at all.
    let mut overhead = c.benchmark_group("tracing_overhead");
    overhead.sample_size(10);
    let schema = SchemaGen::shaped(SchemaShape::IsaModerate, 6, 3, 23).build();
    overhead.bench_function("untraced", |b| b.iter(|| Reasoner::new(&schema).unwrap()));
    overhead.bench_function("null_sink", |b| {
        let tracer = Tracer::new(Box::new(NullSink));
        let budget = Budget::unlimited().with_tracer(&tracer);
        b.iter(|| {
            Reasoner::with_budget(
                &schema,
                &ExpansionConfig::default(),
                Strategy::default(),
                &budget,
            )
            .unwrap()
        })
    });
    overhead.finish();

    emit_run_reports();

    // The meeting schema of the paper as a fixed reference point.
    let mut fixed = c.benchmark_group("reasoner_meeting_schema");
    let schema = cr_lang::parse_schema(
        r#"
        class Speaker;
        class Discussant isa Speaker;
        class Talk;
        relationship Holds (U1: Speaker, U2: Talk);
        relationship Participates (U3: Discussant, U4: Talk);
        card Speaker in Holds.U1: 1..*;
        card Discussant in Holds.U1: 0..2;
        card Talk in Holds.U2: 1..1;
        card Discussant in Participates.U3: 1..1;
        card Talk in Participates.U4: 1..*;
    "#,
    )
    .unwrap();
    fixed.bench_function("figures_2_3", |b| {
        b.iter(|| Reasoner::new(&schema).unwrap())
    });
    fixed.finish();
}

criterion_group!(benches, bench_satisfiability);
criterion_main!(benches);
