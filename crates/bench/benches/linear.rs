//! E7a — the exact-LP substrate: simplex vs Fourier–Motzkin on random
//! feasibility problems, and simplex scaling with system size.

use cr_linear::{solve, solve_fm, Cmp, FmConfig, LinExpr, LinSystem, VarKind};
use cr_rational::Rational;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random homogeneous system shaped like the CR reduction output:
/// nonnegative unknowns, rows `Σ r_i - m·c >= 0` / `n·c - Σ r_i >= 0`.
fn random_system(vars: usize, rows: usize, seed: u64) -> LinSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = LinSystem::new();
    let ids: Vec<_> = (0..vars).map(|_| sys.add_var(VarKind::Nonneg)).collect();
    for _ in 0..rows {
        let mut e = LinExpr::new();
        let terms = rng.gen_range(2..=4.min(vars));
        for _ in 0..terms {
            let v = ids[rng.gen_range(0..vars)];
            let coef = rng.gen_range(-4i64..=4);
            e.add_term(v, Rational::from_int(coef));
        }
        sys.push(e, Cmp::Ge, Rational::zero());
    }
    // One strict row, as in Theorem 3.3's Ψ'.
    sys.push(LinExpr::var(ids[0]), Cmp::Ge, Rational::one());
    sys
}

fn bench_linear(c: &mut Criterion) {
    let mut engines = c.benchmark_group("lp_engines");
    for (vars, rows) in [(4, 6), (6, 10), (8, 14)] {
        let sys = random_system(vars, rows, 71);
        engines.bench_with_input(
            BenchmarkId::new("simplex", format!("{vars}v{rows}r")),
            &sys,
            |b, s| b.iter(|| solve(s)),
        );
        engines.bench_with_input(
            BenchmarkId::new("fourier_motzkin", format!("{vars}v{rows}r")),
            &sys,
            |b, s| b.iter(|| solve_fm(s, FmConfig::default()).unwrap()),
        );
    }
    engines.finish();

    let mut scaling = c.benchmark_group("simplex_scaling");
    scaling.sample_size(10);
    for vars in [10, 20, 40, 80] {
        let sys = random_system(vars, vars * 2, 73);
        scaling.bench_with_input(BenchmarkId::from_parameter(vars), &sys, |b, s| {
            b.iter(|| solve(s))
        });
    }
    scaling.finish();
}

criterion_group!(benches, bench_linear);
criterion_main!(benches);
