//! E6 — the Section 5 efficiency claim: disjointness constraints shrink the
//! expansion (and therefore the whole pipeline) dramatically.

use cr_bench::{SchemaGen, SchemaShape};
use cr_core::expansion::{Expansion, ExpansionConfig};
use cr_core::sat::Reasoner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_disjointness(c: &mut Criterion) {
    let config = ExpansionConfig {
        max_compound_classes: 1 << 20,
        max_compound_rels: 1 << 22,
    };

    let mut group = c.benchmark_group("disjointness_pruning");
    group.sample_size(10);
    for disjoint in [0usize, 2, 4, 8] {
        let mut gen = SchemaGen::shaped(SchemaShape::Flat, 8, 3, 61);
        gen.disjoint_group = disjoint;
        let schema = gen.build();
        // Report the structural effect once per configuration.
        let exp = Expansion::build(&schema, &config).unwrap();
        let label = format!("{disjoint}dj_{}cc", exp.compound_classes().len());
        group.bench_with_input(BenchmarkId::new("expansion", &label), &schema, |b, s| {
            b.iter(|| Expansion::build(s, &config).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("full_reasoner", &label),
            &schema,
            |b, s| b.iter(|| Reasoner::with_config(s, &config).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_disjointness);
criterion_main!(benches);
