//! Property tests: `BitSet` must agree with a `BTreeSet<usize>` reference
//! implementation on every operation.

use std::collections::BTreeSet;

use cr_core::bitset::BitSet;
use proptest::prelude::*;

const UNIVERSE: usize = 150;

fn arb_set() -> impl Strategy<Value = (BitSet, BTreeSet<usize>)> {
    proptest::collection::btree_set(0..UNIVERSE, 0..40).prop_map(|reference| {
        let bs = BitSet::from_iter(UNIVERSE, reference.iter().copied());
        (bs, reference)
    })
}

proptest! {
    #[test]
    fn membership_and_len((bs, reference) in arb_set()) {
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.is_empty(), reference.is_empty());
        for i in 0..UNIVERSE {
            prop_assert_eq!(bs.contains(i), reference.contains(&i));
        }
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(bs.first(), reference.first().copied());
    }

    #[test]
    fn insert_remove((mut bs, mut reference) in arb_set(), ops in proptest::collection::vec((0..UNIVERSE, any::<bool>()), 0..30)) {
        for (i, add) in ops {
            if add {
                bs.insert(i);
                reference.insert(i);
            } else {
                bs.remove(i);
                reference.remove(&i);
            }
        }
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn binary_ops((a, ra) in arb_set(), (b, rb) in arb_set()) {
        prop_assert_eq!(a.is_subset(&b), ra.is_subset(&rb));
        prop_assert_eq!(a.intersects(&b), !ra.is_disjoint(&rb));
        prop_assert_eq!(a.intersection_len(&b), ra.intersection(&rb).count());

        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u.iter().collect::<Vec<_>>(),
                        ra.union(&rb).copied().collect::<Vec<_>>());

        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(i.iter().collect::<Vec<_>>(),
                        ra.intersection(&rb).copied().collect::<Vec<_>>());

        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert_eq!(d.iter().collect::<Vec<_>>(),
                        ra.difference(&rb).copied().collect::<Vec<_>>());
    }

    #[test]
    fn eq_hash_consistent((a, ra) in arb_set(), (b, rb) in arb_set()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        prop_assert_eq!(a == b, ra == rb);
        if a == b {
            let h = |s: &BitSet| {
                let mut hasher = DefaultHasher::new();
                s.hash(&mut hasher);
                hasher.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }
}
