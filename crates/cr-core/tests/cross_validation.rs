//! End-to-end cross-validation of the decision procedure on random small
//! schemas:
//!
//! * the fixpoint engine and the paper's literal Theorem 3.4 Z-enumeration
//!   must agree on every class;
//! * every "satisfiable" verdict must be witnessed by a *constructed* model
//!   that passes the independent Definition 2.2 checker;
//! * every "unsatisfiable" verdict must survive exhaustive model search
//!   over small domains (bounded completeness).

use cr_core::expansion::ExpansionConfig;
use cr_core::interp::enumerate::{search, SearchOutcome};
use cr_core::model::ModelConfig;
use cr_core::sat::zenum::satisfiable_by_z_enumeration;
use cr_core::sat::Reasoner;
use cr_core::schema::{Card, Schema, SchemaBuilder};
use proptest::prelude::*;

/// Plan for a random schema: class count, ISA edges, relationships with
/// role typing, and cardinality declarations.
#[derive(Debug, Clone)]
struct SchemaPlan {
    classes: usize,
    isa: Vec<(usize, usize)>,
    rels: Vec<(usize, usize)>, // (primary of role 0, primary of role 1)
    // (class, rel, role position, min, max) — class must be ≼* primary,
    // enforced at build time by filtering invalid ones out.
    cards: Vec<(usize, usize, usize, u64, Option<u64>)>,
    disjoint: Option<(usize, usize)>,
}

fn plan_strategy() -> impl Strategy<Value = SchemaPlan> {
    (2usize..=3).prop_flat_map(|classes| {
        let isa = proptest::collection::vec((0..classes, 0..classes), 0..=2);
        let rels = proptest::collection::vec((0..classes, 0..classes), 1..=2);
        let cards = proptest::collection::vec(
            (
                0..classes,
                0usize..2,
                0usize..2,
                0u64..=2,
                prop_oneof![Just(None), (0u64..=2).prop_map(Some)],
            ),
            0..=4,
        );
        let disjoint = proptest::option::of((0..classes, 0..classes));
        (Just(classes), isa, rels, cards, disjoint).prop_map(
            |(classes, isa, rels, cards, disjoint)| SchemaPlan {
                classes,
                isa,
                rels,
                cards,
                disjoint,
            },
        )
    })
}

/// Realizes a plan, silently dropping declarations the validator rejects
/// (duplicates, non-subclass cards, degenerate disjointness).
fn build(plan: &SchemaPlan) -> Schema {
    let mut b = SchemaBuilder::new();
    let classes: Vec<_> = (0..plan.classes)
        .map(|i| b.class(format!("C{i}")))
        .collect();
    for &(sub, sup) in &plan.isa {
        if sub != sup {
            b.isa(classes[sub], classes[sup]);
        }
    }
    let mut rels = Vec::new();
    for (i, &(p0, p1)) in plan.rels.iter().enumerate() {
        let name = format!("R{i}");
        let rel = b
            .relationship(&name, [("u", classes[p0]), ("v", classes[p1])])
            .unwrap();
        rels.push(rel);
    }
    let mut tried = Vec::new();
    for &(class, rel, pos, min, max) in &plan.cards {
        if rel >= rels.len() {
            continue;
        }
        let role = b.role(rels[rel], pos);
        if tried.contains(&(class, role)) {
            continue;
        }
        tried.push((class, role));
        let _ = b.card(classes[class], role, Card::new(min, max));
    }
    if let Some((x, y)) = plan.disjoint {
        if x != y {
            let _ = b.disjoint([classes[x], classes[y]]);
        }
    }
    match b.build() {
        Ok(s) => s,
        Err(_) => {
            // A card survived that the final subclass check rejects
            // (ISA edges arrived after it). Rebuild without cards.
            let mut b2 = SchemaBuilder::new();
            let classes: Vec<_> = (0..plan.classes)
                .map(|i| b2.class(format!("C{i}")))
                .collect();
            for &(sub, sup) in &plan.isa {
                if sub != sup {
                    b2.isa(classes[sub], classes[sup]);
                }
            }
            for (i, &(p0, p1)) in plan.rels.iter().enumerate() {
                b2.relationship(format!("R{i}"), [("u", classes[p0]), ("v", classes[p1])])
                    .unwrap();
            }
            b2.build().expect("structure-only schema validates")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixpoint_agrees_with_z_enumeration(plan in plan_strategy()) {
        let schema = build(&plan);
        let reasoner = Reasoner::new(&schema).unwrap();
        let exp = reasoner.expansion();
        let sys = reasoner.system();
        for class in schema.classes() {
            let by_z = satisfiable_by_z_enumeration(exp, sys, class)
                .expect("small expansion");
            prop_assert_eq!(
                reasoner.is_class_satisfiable(class),
                by_z,
                "engines disagree on {} in\n{:?}",
                schema.class_name(class),
                schema
            );
        }
    }

    #[test]
    fn satisfiable_verdicts_are_model_witnessed(plan in plan_strategy()) {
        let schema = build(&plan);
        let reasoner = Reasoner::new(&schema).unwrap();
        if let Some(model) = reasoner.construct_model(&ModelConfig::default()).unwrap() {
            let violations = model.check(&schema);
            prop_assert!(
                violations.is_empty(),
                "constructed model violates the schema: {violations:?}\nschema: {:?}",
                schema
            );
            for class in schema.classes() {
                prop_assert_eq!(
                    reasoner.is_class_satisfiable(class),
                    !model.class_extension(class).is_empty(),
                    "witness model must populate exactly the satisfiable classes ({:?})",
                    schema
                );
            }
        } else {
            for class in schema.classes() {
                prop_assert!(!reasoner.is_class_satisfiable(class));
            }
        }
    }

    #[test]
    fn unsat_verdicts_survive_exhaustive_search(plan in plan_strategy()) {
        let schema = build(&plan);
        let reasoner = Reasoner::new(&schema).unwrap();
        for class in schema.classes() {
            if !reasoner.is_class_satisfiable(class) {
                match search(&schema, Some(class), 2, 3_000_000) {
                    SearchOutcome::Model(m) => {
                        prop_assert!(
                            false,
                            "reasoner said {} unsat but a model exists: {m:?}\nschema: {:?}",
                            schema.class_name(class),
                            schema
                        );
                    }
                    SearchOutcome::NoModelUpTo(_) | SearchOutcome::TooLarge => {}
                }
            }
        }
    }

    #[test]
    fn direct_and_aggregated_strategies_agree(plan in plan_strategy()) {
        use cr_core::sat::Strategy;
        let schema = build(&plan);
        let config = ExpansionConfig::default();
        let direct = Reasoner::with_strategy(&schema, &config, Strategy::Direct).unwrap();
        let agg = Reasoner::with_strategy(&schema, &config, Strategy::Aggregated).unwrap();
        prop_assert_eq!(direct.support(), agg.support(), "schema: {:?}", schema);
        // Both witnesses (when present) verify against the paper-verbatim
        // system.
        if let Some(w) = agg.witness() {
            prop_assert!(w.verify(agg.system()));
        }
        for rel in schema.rels() {
            prop_assert_eq!(
                direct.is_rel_satisfiable(rel),
                agg.is_rel_satisfiable(rel),
                "rel {} in {:?}",
                schema.rel_name(rel),
                schema
            );
        }
    }

    #[test]
    fn finite_sat_implies_unrestricted_sat(plan in plan_strategy()) {
        let schema = build(&plan);
        let reasoner = Reasoner::new(&schema).unwrap();
        let viable = cr_core::unrestricted::viable_compound_classes(reasoner.expansion());
        for class in schema.classes() {
            if reasoner.is_class_satisfiable(class) {
                let unres = reasoner
                    .expansion()
                    .compound_classes_containing(class)
                    .iter()
                    .any(|&cc| viable[cc]);
                prop_assert!(
                    unres,
                    "{} finite-sat must imply unrestricted-sat in {:?}",
                    schema.class_name(class),
                    schema
                );
            }
        }
    }

    #[test]
    fn exhaustive_models_confirm_sat_verdicts(plan in plan_strategy()) {
        // The dual direction: if brute force finds a model populating C,
        // the reasoner must agree that C is satisfiable.
        let schema = build(&plan);
        let reasoner = Reasoner::new(&schema).unwrap();
        for class in schema.classes() {
            if let SearchOutcome::Model(m) = search(&schema, Some(class), 2, 2_000_000) {
                prop_assert!(m.is_model_of(&schema));
                prop_assert!(
                    reasoner.is_class_satisfiable(class),
                    "brute force found a model for {} but the reasoner says unsat\n{:?}",
                    schema.class_name(class),
                    schema
                );
            }
        }
    }
}

/// The reasoner must be deterministic: two runs on the same schema give the
/// same support and witness.
#[test]
fn reasoner_is_deterministic() {
    let mut b = SchemaBuilder::new();
    let s = b.class("S");
    let d = b.class("D");
    let t = b.class("T");
    b.isa(d, s);
    let h = b.relationship("H", [("u1", s), ("u2", t)]).unwrap();
    b.card(s, b.role(h, 0), Card::at_least(1)).unwrap();
    b.card(t, b.role(h, 1), Card::exactly(1)).unwrap();
    let schema = b.build().unwrap();
    let r1 = Reasoner::new(&schema).unwrap();
    let r2 = Reasoner::new(&schema).unwrap();
    assert_eq!(r1.support(), r2.support());
    assert_eq!(r1.witness(), r2.witness());
}

/// Expansion budget errors propagate cleanly through the reasoner.
#[test]
fn reasoner_propagates_budget_errors() {
    let mut b = SchemaBuilder::new();
    for i in 0..10 {
        b.class(format!("C{i}"));
    }
    let schema = b.build().unwrap();
    let config = ExpansionConfig {
        max_compound_classes: 10,
        max_compound_rels: 10,
    };
    assert!(Reasoner::with_config(&schema, &config).is_err());
}
