//! Greatest-fixpoint computation of the maximal acceptable support.
//!
//! Candidate set `P` starts as all consistent compound classes. A round
//! probes each `c ∈ P` with one exact LP:
//!
//! ```text
//! Ψ_S  ∪  { Var(c') = 0 : c' ∉ P }
//!      ∪  { Var(r)  = 0 : r depends on some c' ∉ P }
//!      ∪  { Var(c) >= 1 }
//! ```
//!
//! (`>= 1` replaces the paper's `> 0`: the system is a homogeneous cone, so
//! any solution with `Var(c) > 0` scales to one with `Var(c) >= 1`.)
//! Probes that fail remove `c` from `P`; rounds repeat until stable.
//! Removal is monotone (shrinking `P` only adds constraints), the family of
//! acceptable supports is closed under solution addition, and summing the
//! per-candidate witnesses of the final round yields one acceptable solution
//! positive on exactly the fixpoint — see the module docs of
//! [`crate::sat`] for the argument.

use cr_linear::{
    optimize_governed, Cmp, Direction, LinExpr, LinSystem, LinearError, OptOutcome, Solution,
    VarId, VarKind,
};
use cr_rational::Rational;

use crate::budget::{Budget, Stage};
use crate::error::{CrError, CrResult};
use crate::sat::AcceptableSolution;
use crate::system::CrSystem;

/// Shared engine for the greatest fixpoint: given a way to restrict the
/// system to a candidate support, runs one *support-maximizing* LP per pass
/// instead of one feasibility probe per candidate.
///
/// The trick: attach to every candidate `c` a capped indicator
/// `0 <= t_c <= min(x_c, 1)` and maximize `Σ t_c`. The feasible set is a
/// convex cone closed under addition, so at any optimum `t_c = 1` exactly
/// when `x_c` *can* be positive under the current candidate set (a positive
/// value scales to `>= 1`, and two optima add), i.e. the optimum identifies
/// the whole next candidate set — and, at the final pass, the optimal `x`
/// itself is an acceptable solution positive on exactly the maximal
/// support.
/// Work is metered against `budget` under [`Stage::Fixpoint`]: one unit per
/// pass, plus one per simplex pivot of each support-maximizing LP; an
/// exhausted budget aborts with
/// [`CrError::BudgetExceeded`](crate::CrError::BudgetExceeded) *after*
/// depositing the current candidate set on the budget via
/// [`Budget::offer_frontier`], so the caller can checkpoint and resume.
///
/// `initial` seeds the candidate set from such a checkpointed frontier
/// instead of all-`true`. Soundness: `alive` only ever shrinks, and every
/// intermediate set contains the final fixpoint `P*`, so restarting from
/// any offered frontier converges to the same `P*` (the iteration is a
/// monotone descent whose limit is independent of which superset of `P*`
/// it starts from).
pub(crate) fn support_by_max_lp(
    n: usize,
    class_vars: &[VarId],
    budget: &Budget,
    initial: Option<&[bool]>,
    restrict: impl Fn(&[bool]) -> LinSystem,
) -> CrResult<(Vec<bool>, Option<Vec<Rational>>)> {
    let tracer = budget.tracer();
    let _span = tracer.span(Stage::Fixpoint.as_str());
    let mut alive = match initial {
        Some(frontier) if frontier.len() == n => frontier.to_vec(),
        _ => vec![true; n],
    };
    loop {
        if let Err(e) = budget.charge(Stage::Fixpoint, 1) {
            budget.offer_frontier(Stage::Fixpoint, &alive);
            return Err(e);
        }
        cr_faults::point!("core.fixpoint.step", |_| Err(CrError::FaultInjected {
            site: "core.fixpoint.step"
        }));
        tracer.add(cr_trace::Counter::FixpointIterations, 1);
        if alive.iter().all(|&a| !a) {
            return Ok((alive, None));
        }
        let mut lin = restrict(&alive);
        let mut objective = LinExpr::new();
        for (cc, &a) in alive.iter().enumerate() {
            if !a {
                continue;
            }
            let t = lin.add_var(VarKind::Nonneg);
            lin.push(LinExpr::var(t), Cmp::Le, Rational::one());
            let mut e = LinExpr::var(class_vars[cc]);
            e.add_term(t, -Rational::one());
            lin.push(e, Cmp::Ge, Rational::zero());
            objective.add_term(t, Rational::one());
        }
        // Rough tableau footprint: one rational (~2 small bigints) per cell.
        budget.note_allocation((lin.num_vars() * lin.constraints().len()) as u64 * 16);
        let outcome = match optimize_governed(
            &lin,
            &objective,
            Direction::Maximize,
            &budget.stage(Stage::Fixpoint),
        ) {
            Ok(outcome) => outcome,
            Err(LinearError::Interrupted) => {
                budget.offer_frontier(Stage::Fixpoint, &alive);
                return Err(budget.exceeded_err(Stage::Fixpoint));
            }
            Err(LinearError::FaultInjected { site }) => {
                return Err(CrError::FaultInjected { site })
            }
            Err(e) => unreachable!("support LP has no strict rows: {e}"),
        };
        match outcome {
            OptOutcome::Optimal { solution, .. } => {
                let one = Rational::one();
                let mut changed = false;
                let mut next = vec![false; n];
                for (cc, &a) in alive.iter().enumerate() {
                    if !a {
                        continue;
                    }
                    if solution.value(class_vars[cc]) >= one {
                        next[cc] = true;
                    } else {
                        changed = true;
                    }
                }
                if !changed {
                    return Ok((alive, Some(solution.values().to_vec())));
                }
                alive = next;
            }
            OptOutcome::Infeasible | OptOutcome::Unbounded => {
                unreachable!("the zero vector is feasible and the objective is capped")
            }
        }
    }
}

/// `Ψ_S` restricted to supports inside `alive`, optionally requiring one
/// compound class at `>= 1`.
pub(crate) fn restrict(sys: &CrSystem, alive: &[bool], target: Option<usize>) -> LinSystem {
    let mut lin = sys.lin.clone();
    for (cc, &a) in alive.iter().enumerate() {
        if !a {
            lin.push(LinExpr::var(sys.cclass_vars[cc]), Cmp::Eq, Rational::zero());
        }
    }
    for (ri, deps) in sys.deps.iter().enumerate() {
        if deps.iter().any(|&cc| !alive[cc]) {
            lin.push(LinExpr::var(sys.crel_vars[ri]), Cmp::Eq, Rational::zero());
        }
    }
    if let Some(cc) = target {
        lin.push(LinExpr::var(sys.cclass_vars[cc]), Cmp::Ge, Rational::one());
    }
    lin
}

/// Computes the maximal acceptable support `P*` and (when nonempty) an
/// integer acceptable solution positive on exactly `P*`.
pub fn maximal_acceptable_support(sys: &CrSystem) -> (Vec<bool>, Option<AcceptableSolution>) {
    maximal_acceptable_support_governed(sys, &Budget::unlimited())
        .expect("the unlimited budget cannot be exceeded")
}

/// [`maximal_acceptable_support`] under a resource [`Budget`]
/// ([`Stage::Fixpoint`] metering; see
/// [`crate::budget`] for the governor's guards).
pub fn maximal_acceptable_support_governed(
    sys: &CrSystem,
    budget: &Budget,
) -> CrResult<(Vec<bool>, Option<AcceptableSolution>)> {
    maximal_acceptable_support_resumed(sys, budget, None)
}

/// [`maximal_acceptable_support_governed`] seeded with a checkpointed
/// fixpoint frontier (see [`Budget::offer_frontier`]); `None` starts from
/// scratch.
pub fn maximal_acceptable_support_resumed(
    sys: &CrSystem,
    budget: &Budget,
    initial: Option<&[bool]>,
) -> CrResult<(Vec<bool>, Option<AcceptableSolution>)> {
    let n_cc = sys.cclass_vars.len();
    let (alive, values) = support_by_max_lp(n_cc, &sys.cclass_vars, budget, initial, |alive| {
        restrict(sys, alive, None)
    })?;
    let Some(values) = values else {
        return Ok((alive, None));
    };
    let (ints, _factor) = Solution::new(values).scale_to_integers();
    let witness = AcceptableSolution {
        cclass_counts: sys
            .cclass_vars
            .iter()
            .map(|v| ints[v.index()].clone())
            .collect(),
        crel_counts: sys
            .crel_vars
            .iter()
            .map(|v| ints[v.index()].clone())
            .collect(),
    };
    debug_assert!(witness.verify(sys), "fixpoint witness failed verification");
    Ok((alive, Some(witness)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{Expansion, ExpansionConfig};
    use crate::schema::{Card, SchemaBuilder};

    #[test]
    fn acceptability_prunes_cascading_classes() {
        // A must participate in R (minc 1) whose other role is typed by X;
        // X is unsatisfiable because of an empty window. Acceptability must
        // then kill A too (its tuples have nowhere to point), even though
        // the bare LP without the dependency condition would be feasible
        // with Var(R-tuples) > 0 and Var(X) = 0.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::at_least(1)).unwrap();
        // Empty window on X: minc 2 > maxc 1.
        b.card(x, b.role(r, 1), Card::new(2, Some(1))).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = crate::system::CrSystem::build(&exp);
        let (alive, witness) = maximal_acceptable_support(&sys);
        // Compound classes containing X are dead; so are those containing A.
        for &cc in exp.compound_classes_containing(x) {
            assert!(!alive[cc]);
        }
        for &cc in exp.compound_classes_containing(a) {
            assert!(!alive[cc], "A must be dragged down by acceptability");
        }
        assert!(witness.is_none());
    }

    #[test]
    fn governed_fixpoint_trips_and_matches() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(3)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = crate::system::CrSystem::build(&exp);

        let starved = Budget::unlimited().with_stage_limit(Stage::Fixpoint, 1);
        let err = maximal_acceptable_support_governed(&sys, &starved).unwrap_err();
        assert!(matches!(
            err,
            crate::CrError::BudgetExceeded {
                stage: Stage::Fixpoint,
                ..
            }
        ));

        let generous = Budget::unlimited().with_max_steps(1_000_000);
        let (alive, witness) = maximal_acceptable_support_governed(&sys, &generous).unwrap();
        let (alive_un, witness_un) = maximal_acceptable_support(&sys);
        assert_eq!(alive, alive_un);
        assert_eq!(witness.is_some(), witness_un.is_some());
        assert!(generous.stage_steps(Stage::Fixpoint) > 0);
    }

    #[test]
    fn witness_positive_on_all_support() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(3)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = crate::system::CrSystem::build(&exp);
        let (alive, witness) = maximal_acceptable_support(&sys);
        let w = witness.expect("satisfiable schema");
        assert!(w.verify(&sys));
        for (cc, &a) in alive.iter().enumerate() {
            assert_eq!(
                w.cclass_counts[cc].is_positive(),
                a,
                "witness support must equal the fixpoint"
            );
        }
    }
}
