//! Class satisfiability (Section 3.3).
//!
//! A class `C_s` is (finitely) satisfiable iff `Ψ_S` extended with
//! `Σ { Var(C̄) : C_s ∈ C̄ } > 0` admits an **acceptable** nonnegative
//! integer solution (Theorem 3.3), where *acceptable* means every
//! relationship unknown depending on a zero class unknown is itself zero.
//!
//! Two procedures are provided:
//!
//! * [`Reasoner`] — the production engine. It computes the **maximal
//!   acceptable support** `P*` (the largest set of compound classes that can
//!   be simultaneously positive in an acceptable solution) by a greatest
//!   fixpoint with one exact-LP probe per candidate per round. The family of
//!   acceptable supports is closed under solution addition (the constraint
//!   set is a homogeneous cone and the zero side-conditions are monotone),
//!   so `P*` exists and answers *every* class-satisfiability question at
//!   once: `C_s` is satisfiable iff some compound class containing it lies
//!   in `P*`.
//! * [`zenum::satisfiable_by_z_enumeration`] — the paper's literal
//!   Theorem 3.4 characterization, enumerating subsets `Z ⊆ V_C` of
//!   forced-zero class unknowns. Exponential in the number of compound
//!   classes; retained as a cross-validation oracle and ablation baseline
//!   (experiment E3).

pub mod fixpoint;
pub mod zenum;

use cr_bigint::BigInt;
use cr_rational::Rational;

use crate::budget::{Budget, Stage};
use crate::error::{CrError, CrResult};
use crate::expansion::{Expansion, ExpansionConfig};
use crate::ids::ClassId;
use crate::schema::Schema;
use crate::system::CrSystem;

/// An acceptable nonnegative integer solution of `Ψ_S`: instance counts for
/// every consistent compound class and compound relationship.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcceptableSolution {
    /// Count per consistent compound class.
    pub cclass_counts: Vec<BigInt>,
    /// Count per consistent compound relationship.
    pub crel_counts: Vec<BigInt>,
}

impl AcceptableSolution {
    /// Verifies the solution against `Ψ_S` *and* the acceptability side
    /// condition. Independent of how the solution was produced.
    pub fn verify(&self, sys: &CrSystem) -> bool {
        let mut values = vec![Rational::zero(); sys.lin.num_vars()];
        for (i, v) in self.cclass_counts.iter().enumerate() {
            if v.is_negative() {
                return false;
            }
            values[sys.cclass_vars[i].index()] = Rational::from_int(v.clone());
        }
        for (i, v) in self.crel_counts.iter().enumerate() {
            if v.is_negative() {
                return false;
            }
            values[sys.crel_vars[i].index()] = Rational::from_int(v.clone());
        }
        if sys.lin.check(&values).is_err() {
            return false;
        }
        // Acceptability: r > 0 requires every compound class it depends on
        // to be positive.
        for (ri, deps) in sys.deps.iter().enumerate() {
            if self.crel_counts[ri].is_positive()
                && deps.iter().any(|&cc| self.cclass_counts[cc].is_zero())
            {
                return false;
            }
        }
        true
    }

    /// The total count of instances of `class` under this solution (sum over
    /// compound classes containing it).
    pub fn class_total(&self, exp: &Expansion<'_>, class: ClassId) -> BigInt {
        exp.compound_classes_containing(class)
            .iter()
            .map(|&cc| &self.cclass_counts[cc])
            .sum()
    }
}

/// Which form of `Ψ_S` the fixpoint solves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// The marginal form (see [`crate::agg`]): polynomial in the number of
    /// compound classes per role. The default.
    #[default]
    Aggregated,
    /// The paper-verbatim form with one unknown per compound relationship.
    /// Exponentially larger; kept for cross-validation and the E3b
    /// ablation.
    Direct,
}

/// The production reasoner: owns the expansion, the system `Ψ_S`, the
/// maximal acceptable support, and a witness solution positive on all of it.
pub struct Reasoner<'s> {
    expansion: Expansion<'s>,
    /// The paper-verbatim system, built on first use (it materializes one
    /// unknown per compound relationship — prohibitive for large flat
    /// expansions that the aggregated strategy never needs it for).
    system: std::sync::OnceLock<CrSystem>,
    /// `support[cc]` — whether compound class `cc` is in `P*`.
    support: Vec<bool>,
    /// A single acceptable solution positive on exactly the support (absent
    /// when the support is empty).
    witness: Option<AcceptableSolution>,
    /// The aggregated-form witness the fixpoint produced (Aggregated
    /// strategy only). Retained because it is the reusable piece of
    /// incremental checking: its marginal layout is structurally stable
    /// across constraint-only edits, so [`crate::delta`] can re-validate
    /// it against an edited system without solving a single LP.
    pub(crate) agg_witness: Option<crate::agg::AggSolution>,
    /// Whether `agg_witness` was already *hardened* — re-solved into the
    /// minimum-norm witness that survives max-tightening edits (see
    /// [`crate::agg::harden_witness`]). Fresh runs store the fixpoint's
    /// vertex witness (`false`); the delta fast path inherits the base's
    /// hardened witness (`true`), so chained edits never re-pay the
    /// hardening LP.
    agg_witness_hardened: bool,
    /// Observability handle inherited from the construction budget, so
    /// post-construction queries (relationship probes, model building) keep
    /// reporting into the same metrics.
    tracer: cr_trace::Tracer,
}

impl<'s> Reasoner<'s> {
    /// Builds the reasoner with default expansion budgets.
    pub fn new(schema: &'s Schema) -> CrResult<Reasoner<'s>> {
        Reasoner::with_config(schema, &ExpansionConfig::default())
    }

    /// Builds the reasoner with explicit expansion budgets.
    pub fn with_config(schema: &'s Schema, config: &ExpansionConfig) -> CrResult<Reasoner<'s>> {
        Reasoner::with_strategy(schema, config, Strategy::Aggregated)
    }

    /// Builds the reasoner with an explicit solving strategy.
    pub fn with_strategy(
        schema: &'s Schema,
        config: &ExpansionConfig,
        strategy: Strategy,
    ) -> CrResult<Reasoner<'s>> {
        Reasoner::with_budget(schema, config, strategy, &Budget::unlimited())
    }

    /// Builds the reasoner under a resource [`Budget`]: expansion
    /// enumeration charges [`Stage::Expansion`], the fixpoint (and its LP
    /// pivots) [`Stage::Fixpoint`]. An exhausted budget aborts construction
    /// with [`CrError::BudgetExceeded`] — no partial reasoner is returned.
    pub fn with_budget(
        schema: &'s Schema,
        config: &ExpansionConfig,
        strategy: Strategy,
        budget: &Budget,
    ) -> CrResult<Reasoner<'s>> {
        Reasoner::with_budget_resumed(schema, config, strategy, budget, None)
    }

    /// [`Reasoner::with_budget`] seeded with a checkpointed fixpoint
    /// frontier (the `alive` set a previously interrupted run deposited
    /// via [`Budget::offer_frontier`] and the CLI persisted as a
    /// checkpoint). The expansion is deterministic, so a frontier recorded
    /// against the same canonical schema lines up index-for-index; a
    /// frontier of the wrong length is ignored (fresh start) rather than
    /// trusted. `None` is exactly [`Reasoner::with_budget`].
    pub fn with_budget_resumed(
        schema: &'s Schema,
        config: &ExpansionConfig,
        strategy: Strategy,
        budget: &Budget,
        frontier: Option<&[bool]>,
    ) -> CrResult<Reasoner<'s>> {
        let tracer = budget.tracer().clone();
        let expansion = Expansion::build_governed(schema, config, budget)?;
        let system = std::sync::OnceLock::new();
        let (support, witness, agg_witness) = match strategy {
            Strategy::Direct => {
                let sys = system.get_or_init(|| CrSystem::build(&expansion));
                tracer.add(
                    cr_trace::Counter::DisequationsEmitted,
                    sys.lin.constraints().len() as u64,
                );
                let (support, witness) =
                    fixpoint::maximal_acceptable_support_resumed(sys, budget, frontier)?;
                (support, witness, None)
            }
            Strategy::Aggregated => {
                let agg = crate::agg::AggSystem::build(&expansion);
                tracer.add(
                    cr_trace::Counter::DisequationsEmitted,
                    agg.num_rows() as u64,
                );
                let (support, agg_witness) =
                    crate::agg::maximal_support_agg_resumed(&agg, budget, frontier)?;
                let witness = agg_witness.as_ref().map(|w| AcceptableSolution {
                    crel_counts: crate::agg::expand_to_crel_counts(&expansion, w),
                    cclass_counts: w.cclass_counts.clone(),
                });
                (support, witness, agg_witness)
            }
        };
        // Re-verify the witness against the paper-verbatim system when that
        // is affordable (always in tests; skipped for huge expansions).
        debug_assert!(
            expansion.compound_rels().len() > 100_000
                || witness
                    .as_ref()
                    .is_none_or(|w| w.verify(system.get_or_init(|| CrSystem::build(&expansion)))),
        );
        Ok(Reasoner {
            expansion,
            system,
            support,
            witness,
            agg_witness,
            agg_witness_hardened: false,
            tracer,
        })
    }

    /// The observability handle inherited from the construction budget
    /// (disabled unless that budget carried a tracer).
    pub fn tracer(&self) -> &cr_trace::Tracer {
        &self.tracer
    }

    /// Snapshots the schema-independent intermediate state of this run —
    /// the consistent compound classes, the maximal support, and (when the
    /// Aggregated strategy produced one) the marginal-form witness — for
    /// reuse by [`crate::delta::reasoner_from_state`] on an edited schema.
    ///
    /// A fresh run's witness is *hardened* here (one extra LP, see
    /// [`crate::agg::harden_witness`]): the minimum-norm re-solve leaves
    /// slack under every upper cardinality window, which is what lets the
    /// delta fast path re-validate it by pure evaluation across a stream
    /// of tightening edits. The plain check path never calls this, so it
    /// pays nothing; a witness inherited through the delta fast path is
    /// already hardened and is snapshotted as-is.
    pub fn reusable_state(&self) -> crate::delta::ReusableState {
        let agg_witness = match &self.agg_witness {
            Some(w) if !self.agg_witness_hardened => {
                let agg = crate::agg::AggSystem::build(&self.expansion);
                Some(crate::agg::harden_witness(&agg, &self.support).unwrap_or_else(|| w.clone()))
            }
            other => other.clone(),
        };
        crate::delta::ReusableState {
            atoms: self.expansion.compound_classes().to_vec(),
            support: self.support.clone(),
            agg_witness,
        }
    }

    /// Assembles a reasoner from an already-computed expansion, support,
    /// and witnesses (the delta path's constructor; `Ψ_S` stays lazy).
    pub(crate) fn from_parts(
        expansion: Expansion<'s>,
        support: Vec<bool>,
        witness: Option<AcceptableSolution>,
        agg_witness: Option<crate::agg::AggSolution>,
        agg_witness_hardened: bool,
        tracer: cr_trace::Tracer,
    ) -> Reasoner<'s> {
        Reasoner {
            expansion,
            system: std::sync::OnceLock::new(),
            support,
            witness,
            agg_witness,
            agg_witness_hardened,
            tracer,
        }
    }

    /// The schema being reasoned about.
    pub fn schema(&self) -> &'s Schema {
        self.expansion.schema()
    }

    /// The expansion.
    pub fn expansion(&self) -> &Expansion<'s> {
        &self.expansion
    }

    /// The paper-verbatim system `Ψ_S` (built on first access).
    pub fn system(&self) -> &CrSystem {
        self.system.get_or_init(|| CrSystem::build(&self.expansion))
    }

    /// The maximal acceptable support over compound classes.
    pub fn support(&self) -> &[bool] {
        &self.support
    }

    /// Whether `class` is finitely satisfiable (Theorem 3.3).
    pub fn is_class_satisfiable(&self, class: ClassId) -> bool {
        self.expansion
            .compound_classes_containing(class)
            .iter()
            .any(|&cc| self.support[cc])
    }

    /// All unsatisfiable classes, in id order.
    pub fn unsatisfiable_classes(&self) -> Vec<ClassId> {
        self.schema()
            .classes()
            .filter(|&c| !self.is_class_satisfiable(c))
            .collect()
    }

    /// Whether every class of the schema is satisfiable (*strong*
    /// satisfiability: the schema admits models populating any chosen
    /// class).
    pub fn is_schema_fully_satisfiable(&self) -> bool {
        self.unsatisfiable_classes().is_empty()
    }

    /// An acceptable solution positive on every satisfiable compound class
    /// simultaneously (hence witnessing every satisfiable class at once);
    /// `None` when no class is satisfiable.
    pub fn witness(&self) -> Option<&AcceptableSolution> {
        self.witness.as_ref()
    }

    /// Whether `rel` is finitely satisfiable — some finite model contains a
    /// tuple of it. Decided by one extra probe over the maximal acceptable
    /// support: every acceptable solution's support is contained in `P*`,
    /// so a positive relationship total is achievable iff it is achievable
    /// with `P*` as the allowed support.
    pub fn is_rel_satisfiable(&self, rel: crate::ids::RelId) -> bool {
        use cr_linear::{Cmp, LinExpr};
        use cr_rational::Rational;
        // Witness shortcut: the stored witness is a verified acceptable
        // solution, so any positive compound-relationship count in it is
        // already a finite model containing a tuple of `rel` — no probe LP
        // (and no Ψ_S construction) needed.
        if let Some(w) = &self.witness {
            if self
                .expansion
                .compound_rels_of(rel)
                .iter()
                .any(|&ri| w.crel_counts[ri].is_positive())
            {
                return true;
            }
        }
        let sys = self.system();
        let mut probe = fixpoint::restrict(sys, &self.support, None);
        let mut total = LinExpr::new();
        for &ri in self.expansion.compound_rels_of(rel) {
            if sys.deps[ri].iter().all(|&cc| self.support[cc]) {
                total.add_term(sys.crel_vars[ri], Rational::one());
            }
        }
        if total.is_empty() {
            return false;
        }
        probe.push(total, Cmp::Ge, Rational::one());
        // Ungoverned on purpose (one probe over an already-built support),
        // but still metered so pivot counts stay complete.
        let meter = crate::budget::TracerMeter::new(&self.tracer);
        match cr_linear::solve_governed(&probe, &meter) {
            Ok(feasibility) => feasibility.is_feasible(),
            // An injected fault must not decide satisfiability either way;
            // panic so the chaos harness's catch_unwind contains it.
            Err(e @ cr_linear::LinearError::FaultInjected { .. }) => {
                panic!("{e} in relationship probe")
            }
            Err(_) => unreachable!("TracerMeter never refuses work"),
        }
    }

    /// All unsatisfiable relationships, in id order.
    pub fn unsatisfiable_rels(&self) -> Vec<crate::ids::RelId> {
        self.schema()
            .rels()
            .filter(|&r| !self.is_rel_satisfiable(r))
            .collect()
    }
}

/// Which satisfiability engine produced an answer (see
/// [`satisfiable_with_fallback`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatEngine {
    /// The literal Theorem 3.4 `Z ⊆ V_C` enumeration ran to completion.
    ZEnumeration,
    /// The polynomial greatest-fixpoint answered (either by choice or
    /// because the enumeration's budget tripped).
    Fixpoint,
}

/// Decides satisfiability of `class` by the Theorem 3.4 `Z`-enumeration,
/// **degrading gracefully** to the polynomial fixpoint when the oracle's
/// budget trips: if the enumeration exhausts its
/// [`Stage::ZEnumeration`] account (or the expansion is outright too large
/// for it), the question is re-answered via
/// [`fixpoint::maximal_acceptable_support_governed`] on the remaining
/// budget instead of failing. Both engines decide the same predicate
/// (they are property-tested equal), so the fallback loses no soundness —
/// only the paper-verbatim derivation. Returns the verdict together with
/// the engine that produced it; errors only when the *fixpoint* budget is
/// also exhausted.
pub fn satisfiable_with_fallback(
    exp: &Expansion<'_>,
    sys: &CrSystem,
    class: ClassId,
    budget: &Budget,
) -> CrResult<(bool, SatEngine)> {
    match zenum::satisfiable_by_z_enumeration_governed(exp, sys, class, budget) {
        Ok(sat) => Ok((sat, SatEngine::ZEnumeration)),
        Err(CrError::BudgetExceeded {
            stage: Stage::ZEnumeration,
            ..
        })
        | Err(CrError::ZEnumerationTooLarge { .. }) => {
            budget.tracer().add(cr_trace::Counter::ZenumFallbacks, 1);
            let (support, _witness) = fixpoint::maximal_acceptable_support_governed(sys, budget)?;
            let sat = exp
                .compound_classes_containing(class)
                .iter()
                .any(|&cc| support[cc]);
            Ok((sat, SatEngine::Fixpoint))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Card, SchemaBuilder};

    fn meeting() -> Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn meeting_schema_all_satisfiable() {
        let schema = meeting();
        let r = Reasoner::new(&schema).unwrap();
        for c in schema.classes() {
            assert!(r.is_class_satisfiable(c), "{} unsat", schema.class_name(c));
        }
        assert!(r.is_schema_fully_satisfiable());
        let w = r.witness().expect("witness exists");
        assert!(w.verify(r.system()));
    }

    #[test]
    fn section33_refinement_makes_unsat() {
        // Adding minc(Discussant, Holds, U1) = 2 (each discussant-speaker
        // holds at least two talks) makes the whole schema unsatisfiable —
        // the paper's running counterexample at the end of Section 3.3.
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::new(2, Some(2)))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        let schema = b.build().unwrap();
        let r = Reasoner::new(&schema).unwrap();
        assert!(!r.is_class_satisfiable(speaker));
        assert!(!r.is_class_satisfiable(discussant));
        assert!(!r.is_class_satisfiable(talk));
    }

    #[test]
    fn figure1_unsat() {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        let schema = b.build().unwrap();
        let reasoner = Reasoner::new(&schema).unwrap();
        assert_eq!(reasoner.unsatisfiable_classes(), vec![c, d]);
        assert!(reasoner.witness().is_none());
    }

    #[test]
    fn unconstrained_schema_everything_satisfiable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        b.relationship("R", [("u", a), ("v", x)]).unwrap();
        let schema = b.build().unwrap();
        let r = Reasoner::new(&schema).unwrap();
        assert!(r.is_schema_fully_satisfiable());
        // The maximal support covers every compound class.
        assert!(r.support().iter().all(|&s| s));
    }

    #[test]
    fn rel_satisfiability() {
        // Meeting schema: both relationships are populated in some model.
        let schema = meeting();
        let r = Reasoner::new(&schema).unwrap();
        for rel in schema.rels() {
            assert!(r.is_rel_satisfiable(rel), "{}", schema.rel_name(rel));
        }
        assert!(r.unsatisfiable_rels().is_empty());
    }

    #[test]
    fn rel_unsat_when_capped_to_zero() {
        // maxc 0 on one role forces R empty in every model, though both
        // classes stay satisfiable.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let rel = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(rel, 0), Card::at_most(0)).unwrap();
        let schema = b.build().unwrap();
        let r = Reasoner::new(&schema).unwrap();
        assert!(r.is_class_satisfiable(a));
        assert!(r.is_class_satisfiable(x));
        assert!(!r.is_rel_satisfiable(rel));
        assert_eq!(r.unsatisfiable_rels(), vec![rel]);
    }

    #[test]
    fn rel_unsat_when_classes_dead() {
        // Figure 1: both classes dead, hence R as well.
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let rel = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(rel, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(rel, 1), Card::at_most(1)).unwrap();
        let schema = b.build().unwrap();
        let r = Reasoner::new(&schema).unwrap();
        assert!(!r.is_rel_satisfiable(rel));
    }

    #[test]
    fn strategies_agree() {
        use crate::expansion::ExpansionConfig;
        {
            let seed_schema = meeting();
            let agg = Reasoner::with_strategy(
                &seed_schema,
                &ExpansionConfig::default(),
                Strategy::Aggregated,
            )
            .unwrap();
            let direct = Reasoner::with_strategy(
                &seed_schema,
                &ExpansionConfig::default(),
                Strategy::Direct,
            )
            .unwrap();
            assert_eq!(agg.support(), direct.support());
            // Both witnesses verify against the direct system.
            assert!(agg.witness().unwrap().verify(agg.system()));
            assert!(direct.witness().unwrap().verify(direct.system()));
        }
    }

    #[test]
    fn strategies_agree_on_ternary_relationships() {
        use crate::expansion::ExpansionConfig;
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let sub = b.class("Sub");
        let x = b.class("X");
        let y = b.class("Y");
        b.isa(sub, a);
        let r = b.relationship("R", [("u", a), ("v", x), ("w", y)]).unwrap();
        b.card(a, b.role(r, 0), Card::new(1, Some(3))).unwrap();
        b.card(sub, b.role(r, 0), Card::exactly(2)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        b.card(y, b.role(r, 2), Card::at_least(1)).unwrap();
        let schema = b.build().unwrap();
        let config = ExpansionConfig::default();
        let agg = Reasoner::with_strategy(&schema, &config, Strategy::Aggregated).unwrap();
        let direct = Reasoner::with_strategy(&schema, &config, Strategy::Direct).unwrap();
        assert_eq!(agg.support(), direct.support());
        // The projected ternary witness verifies against the verbatim
        // system, and its model constructs and checks.
        assert!(agg.witness().unwrap().verify(agg.system()));
        let model = agg
            .construct_model(&crate::model::ModelConfig::default())
            .unwrap()
            .expect("satisfiable");
        assert!(model.is_model_of(&schema));
    }

    #[test]
    fn fallback_degrades_to_fixpoint_and_agrees() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        for class in schema.classes() {
            // Generous budget: the oracle itself answers.
            let free = Budget::unlimited();
            let (sat, engine) = satisfiable_with_fallback(&exp, &sys, class, &free).unwrap();
            assert_eq!(engine, SatEngine::ZEnumeration);
            // One Z subset of budget: the oracle trips, the fixpoint answers
            // the same verdict.
            let starved = Budget::unlimited().with_stage_limit(Stage::ZEnumeration, 1);
            let (sat_fb, engine_fb) =
                satisfiable_with_fallback(&exp, &sys, class, &starved).unwrap();
            assert_eq!(engine_fb, SatEngine::Fixpoint);
            assert_eq!(sat, sat_fb);
        }
    }

    #[test]
    fn with_budget_trips_during_construction() {
        let schema = meeting();
        let starved = Budget::unlimited().with_max_steps(2);
        let result = Reasoner::with_budget(
            &schema,
            &ExpansionConfig::default(),
            Strategy::Aggregated,
            &starved,
        );
        assert!(matches!(result, Err(CrError::BudgetExceeded { .. })));
    }

    #[test]
    fn class_total_counts_every_containing_compound() {
        let schema = meeting();
        let r = Reasoner::new(&schema).unwrap();
        let w = r.witness().unwrap();
        let speaker = schema.class_by_name("Speaker").unwrap();
        let total = w.class_total(r.expansion(), speaker);
        assert!(total.is_positive());
    }
}
