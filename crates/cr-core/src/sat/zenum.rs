//! The literal Theorem 3.4 decision procedure: enumerate subsets
//! `Z ⊆ V_C` of forced-zero compound-class unknowns.
//!
//! For each `Z`, the system `Ψ_Z` pins `Var(c) = 0` for `c ∈ Z`, requires
//! `Var(c) > 0` (as `>= 1`, by homogeneity) for `c ∉ Z`, keeps
//! `Var(r) >= 0`, and pins `Var(r) = 0` for every relationship unknown
//! depending on a member of `Z`. The target class is satisfiable iff some
//! `Ψ_Z` with a compound class containing it outside `Z` is feasible.
//!
//! This is `2^|V_C|` LP calls — the paper's own complexity remark — and is
//! kept as an independently-implemented oracle for the fixpoint engine
//! (property-tested equal) and as the E3 ablation baseline.

use cr_linear::{solve_governed, Cmp, LinExpr, LinearError};
use cr_rational::Rational;

use crate::budget::{Budget, Stage};
use crate::error::{CrError, CrResult};
use crate::expansion::Expansion;
use crate::ids::ClassId;
use crate::system::CrSystem;

/// Hard cap on the number of compound-class unknowns the enumeration will
/// accept (`2^max` subsets).
pub const MAX_Z_UNKNOWNS: usize = 20;

/// Decides satisfiability of `class` by enumerating `Z ⊆ V_C` (Theorem 3.4
/// verbatim). Errors if the expansion has more than [`MAX_Z_UNKNOWNS`]
/// compound classes.
pub fn satisfiable_by_z_enumeration(
    exp: &Expansion<'_>,
    sys: &CrSystem,
    class: ClassId,
) -> CrResult<bool> {
    satisfiable_by_z_enumeration_governed(exp, sys, class, &Budget::unlimited())
}

/// [`satisfiable_by_z_enumeration`] under a resource [`Budget`]: each `Z`
/// subset charges one [`Stage::ZEnumeration`] unit (plus one per simplex
/// pivot of its feasibility probe), so a caller can cap the oracle's
/// exponential sweep and fall back to the polynomial fixpoint — see
/// [`satisfiable_with_fallback`](crate::sat::satisfiable_with_fallback).
pub fn satisfiable_by_z_enumeration_governed(
    exp: &Expansion<'_>,
    sys: &CrSystem,
    class: ClassId,
    budget: &Budget,
) -> CrResult<bool> {
    let n_cc = sys.cclass_vars.len();
    if n_cc > MAX_Z_UNKNOWNS {
        return Err(CrError::ZEnumerationTooLarge { unknowns: n_cc });
    }
    let containing = exp.compound_classes_containing(class);
    if containing.is_empty() {
        return Ok(false);
    }
    let tracer = budget.tracer();
    let _span = tracer.span(Stage::ZEnumeration.as_str());
    for z in 0u64..(1u64 << n_cc) {
        budget.charge(Stage::ZEnumeration, 1)?;
        cr_faults::point!("core.zenum.subset", |_| Err(CrError::FaultInjected {
            site: "core.zenum.subset"
        }));
        tracer.add(cr_trace::Counter::ZenumSubsets, 1);
        let in_z = |cc: usize| z & (1 << cc) != 0;
        // Σ Var(C̄ ∋ class) > 0 needs some containing compound class
        // outside Z.
        if containing.iter().all(|&cc| in_z(cc)) {
            continue;
        }
        let mut lin = sys.lin.clone();
        for cc in 0..n_cc {
            if in_z(cc) {
                lin.push(LinExpr::var(sys.cclass_vars[cc]), Cmp::Eq, Rational::zero());
            } else {
                lin.push(LinExpr::var(sys.cclass_vars[cc]), Cmp::Ge, Rational::one());
            }
        }
        for (ri, deps) in sys.deps.iter().enumerate() {
            if deps.iter().any(|&cc| in_z(cc)) {
                lin.push(LinExpr::var(sys.crel_vars[ri]), Cmp::Eq, Rational::zero());
            }
        }
        match solve_governed(&lin, &budget.stage(Stage::ZEnumeration)) {
            Ok(feasibility) => {
                if feasibility.is_feasible() {
                    return Ok(true);
                }
            }
            Err(LinearError::Interrupted) => return Err(budget.exceeded_err(Stage::ZEnumeration)),
            Err(LinearError::FaultInjected { site }) => {
                return Err(CrError::FaultInjected { site })
            }
            Err(e) => unreachable!("feasibility probe cannot reject the system: {e}"),
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{Expansion, ExpansionConfig};
    use crate::schema::{Card, Schema, SchemaBuilder};
    use crate::system::CrSystem;

    fn figure1() -> Schema {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_unsat_by_enumeration() {
        let schema = figure1();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        for class in schema.classes() {
            assert!(!satisfiable_by_z_enumeration(&exp, &sys, class).unwrap());
        }
    }

    #[test]
    fn satisfiable_simple() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        assert!(satisfiable_by_z_enumeration(&exp, &sys, a).unwrap());
        assert!(satisfiable_by_z_enumeration(&exp, &sys, x).unwrap());
    }

    #[test]
    fn guard_on_large_expansions() {
        let mut b = SchemaBuilder::new();
        for i in 0..6 {
            b.class(format!("C{i}"));
        }
        let a = b.class("A");
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        // 2^7 - 1 = 127 compound classes > 20.
        assert!(matches!(
            satisfiable_by_z_enumeration(&exp, &sys, a),
            Err(CrError::ZEnumerationTooLarge { .. })
        ));
    }
}
