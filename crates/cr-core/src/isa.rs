//! Reflexive-transitive closure `≼*` of the declared ISA statements.

use crate::bitset::BitSet;
use crate::ids::ClassId;
use crate::schema::Schema;

/// Precomputed `≼*` relation.
///
/// Cycles are permitted (mutually contained classes have equal extensions in
/// every model); the closure handles them naturally.
pub struct IsaClosure {
    /// `ancestors[c]` = `{ d | c ≼* d }` (reflexive).
    ancestors: Vec<BitSet>,
    /// `descendants[c]` = `{ d | d ≼* c }` (reflexive).
    descendants: Vec<BitSet>,
}

impl IsaClosure {
    /// Computes the closure by BFS over the declared edges, one source class
    /// at a time.
    pub fn compute(schema: &Schema) -> IsaClosure {
        let n = schema.num_classes();
        let mut direct_sup: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(sub, sup) in schema.isa_statements() {
            direct_sup[sub.index()].push(sup.index());
        }
        let mut ancestors = Vec::with_capacity(n);
        for start in 0..n {
            let mut seen = BitSet::new(n);
            seen.insert(start);
            let mut stack = vec![start];
            while let Some(c) = stack.pop() {
                for &sup in &direct_sup[c] {
                    if !seen.contains(sup) {
                        seen.insert(sup);
                        stack.push(sup);
                    }
                }
            }
            ancestors.push(seen);
        }
        let mut descendants = vec![BitSet::new(n); n];
        for (c, anc) in ancestors.iter().enumerate() {
            for a in anc.iter() {
                descendants[a].insert(c);
            }
        }
        IsaClosure {
            ancestors,
            descendants,
        }
    }

    /// Whether `sub ≼* sup`.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        self.ancestors[sub.index()].contains(sup.index())
    }

    /// The ancestor set of `c` (including `c` itself).
    pub fn ancestors(&self, c: ClassId) -> &BitSet {
        &self.ancestors[c.index()]
    }

    /// The descendant set of `c` (including `c` itself).
    pub fn descendants(&self, c: ClassId) -> &BitSet {
        &self.descendants[c.index()]
    }

    /// Whether a set of class indices is *up-closed*: together with each
    /// member it contains all the member's ancestors. Compound classes are
    /// consistent w.r.t. ISA iff they are up-closed (Section 3.1).
    pub fn is_up_closed(&self, set: &BitSet) -> bool {
        set.iter().all(|c| self.ancestors[c].is_subset(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn chain_schema() -> (Schema, Vec<ClassId>) {
        // a ≼ b ≼ c, d isolated
        let mut b = SchemaBuilder::new();
        let ids = vec![b.class("a"), b.class("b"), b.class("c"), b.class("d")];
        b.isa(ids[0], ids[1]);
        b.isa(ids[1], ids[2]);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn reflexive() {
        let (s, ids) = chain_schema();
        let cl = IsaClosure::compute(&s);
        for &c in &ids {
            assert!(cl.is_subclass_of(c, c));
        }
    }

    #[test]
    fn transitive() {
        let (s, ids) = chain_schema();
        let cl = IsaClosure::compute(&s);
        assert!(cl.is_subclass_of(ids[0], ids[2]));
        assert!(!cl.is_subclass_of(ids[2], ids[0]));
        assert!(!cl.is_subclass_of(ids[0], ids[3]));
        assert_eq!(cl.ancestors(ids[0]).len(), 3);
        assert_eq!(cl.descendants(ids[2]).len(), 3);
        assert_eq!(cl.ancestors(ids[3]).len(), 1);
    }

    #[test]
    fn cycles_collapse() {
        let mut b = SchemaBuilder::new();
        let x = b.class("x");
        let y = b.class("y");
        b.isa(x, y);
        b.isa(y, x);
        let s = b.build().unwrap();
        let cl = IsaClosure::compute(&s);
        assert!(cl.is_subclass_of(x, y));
        assert!(cl.is_subclass_of(y, x));
    }

    #[test]
    fn diamond() {
        let mut b = SchemaBuilder::new();
        let top = b.class("top");
        let l = b.class("l");
        let r = b.class("r");
        let bot = b.class("bot");
        b.isa(l, top);
        b.isa(r, top);
        b.isa(bot, l);
        b.isa(bot, r);
        let s = b.build().unwrap();
        let cl = IsaClosure::compute(&s);
        assert!(cl.is_subclass_of(bot, top));
        assert_eq!(cl.ancestors(bot).len(), 4);
        assert_eq!(cl.descendants(top).len(), 4);
    }

    #[test]
    fn up_closed() {
        let (s, ids) = chain_schema();
        let cl = IsaClosure::compute(&s);
        let n = s.num_classes();
        // {b, c} is up-closed; {a} is not (misses b, c); {c, d} is.
        let bc = BitSet::from_iter(n, [ids[1].index(), ids[2].index()]);
        assert!(cl.is_up_closed(&bc));
        let a = BitSet::from_iter(n, [ids[0].index()]);
        assert!(!cl.is_up_closed(&a));
        let cd = BitSet::from_iter(n, [ids[2].index(), ids[3].index()]);
        assert!(cl.is_up_closed(&cd));
        assert!(cl.is_up_closed(&BitSet::new(n)));
    }
}
