//! The expansion of a CR-schema (Section 3.1).
//!
//! A **compound class** is a nonempty subset `C̄ ⊆ C`, representing the
//! individuals that are instances of *exactly* the classes in `C̄`. Compound
//! classes partition the domain, which is what makes a one-unknown-per-class
//! counting argument sound in the presence of ISA (the paper's key move over
//! Lenzerini–Nobili 1990).
//!
//! A compound class is **consistent** when it can be nonempty at all:
//!
//! * closed upward under declared ISA (`C1 ∈ C̄ ∧ C1 ≼ C2 ⟹ C2 ∈ C̄`);
//! * (Section 5 extension) it contains no two classes declared disjoint;
//! * (Section 5 extension) for every covering `C ⊑ C1 ∪ … ∪ Cn` with
//!   `C ∈ C̄`, some `Ci ∈ C̄`.
//!
//! A **compound relationship** of `R` assigns to each role a consistent
//! compound class containing that role's primary class. Definition 3.1
//! derives the tightest cardinality window of a compound class on a role by
//! folding the declared windows of all its member classes.
//!
//! Only *consistent* compound classes and relationships are materialized:
//! the inconsistent ones carry a forced-zero unknown in the paper's system
//! and contribute nothing (a `Verbatim` mode in [`crate::system`] re-adds
//! them for the literal Figure 5 reproduction). Enumeration is DFS with
//! ISA/disjointness propagation, so heavily constrained schemas — the
//! paper's own Section 5 observation — never touch the full `2^|C|` space.

use std::collections::HashMap;

use crate::bitset::BitSet;
use crate::budget::{Budget, Stage};
use crate::error::{CrError, CrResult};
use crate::ids::{ClassId, RelId, RoleId};
use crate::isa::IsaClosure;
use crate::schema::{Card, Schema};

/// Size budget for [`Expansion::build`]; the expansion is worst-case
/// exponential in the number of classes.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionConfig {
    /// Maximum number of consistent compound classes.
    pub max_compound_classes: usize,
    /// Maximum number of consistent compound relationships.
    pub max_compound_rels: usize,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            max_compound_classes: 20_000,
            max_compound_rels: 400_000,
        }
    }
}

/// A consistent compound relationship: `rel` retyped so role `k` draws its
/// filler from compound class `roles[k]` (an index into
/// [`Expansion::compound_classes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompoundRel {
    /// The underlying relationship.
    pub rel: RelId,
    /// Compound-class index per role position.
    pub roles: Vec<usize>,
}

/// The expansion `S̄` of a schema.
pub struct Expansion<'s> {
    schema: &'s Schema,
    closure: IsaClosure,
    cclasses: Vec<BitSet>,
    cclass_index: HashMap<BitSet, usize>,
    /// Per class: indices of consistent compound classes containing it.
    containing: Vec<Vec<usize>>,
    crels: Vec<CompoundRel>,
    /// Per relationship: indices into `crels`.
    crels_of_rel: Vec<Vec<usize>>,
}

impl<'s> Expansion<'s> {
    /// Builds the expansion, enumerating consistent compound classes and
    /// relationships within the configured size budget (ungoverned: no
    /// deadline or step metering).
    pub fn build(schema: &'s Schema, config: &ExpansionConfig) -> CrResult<Expansion<'s>> {
        Expansion::build_governed(schema, config, &Budget::unlimited())
    }

    /// [`Expansion::build`] under a resource [`Budget`]: every DFS node of
    /// the compound-class enumeration and every compound relationship
    /// charges one [`Stage::Expansion`] unit, so an adversarial schema
    /// stops with [`CrError::BudgetExceeded`] instead of exploring an
    /// exponential space to the end (the size caps in `config` still apply
    /// on top).
    pub fn build_governed(
        schema: &'s Schema,
        config: &ExpansionConfig,
        budget: &Budget,
    ) -> CrResult<Expansion<'s>> {
        let tracer = budget.tracer();
        let _span = tracer.span(Stage::Expansion.as_str());
        let closure = IsaClosure::compute(schema);
        let n = schema.num_classes();

        // --- consistent compound classes ---
        let mut cclasses: Vec<BitSet> = Vec::new();
        enumerate_consistent(
            schema,
            &closure,
            0,
            &mut BitSet::new(n),
            &mut BitSet::new(n),
            budget,
            &mut |set| {
                if cclasses.len() >= config.max_compound_classes {
                    return Err(CrError::ExpansionTooLarge {
                        what: "compound classes",
                        limit: config.max_compound_classes,
                    });
                }
                cclasses.push(set.clone());
                Ok(())
            },
        )?;
        tracer.add(
            cr_trace::Counter::CompoundClassesConsistent,
            cclasses.len() as u64,
        );
        cclasses.sort();
        Expansion::finish(schema, closure, cclasses, config, budget)
    }

    /// Rebuilds an expansion for `schema` from a previously enumerated
    /// candidate atom list instead of the DFS — the incremental-checking
    /// entry point. `candidates` must be the (sorted) consistent compound
    /// classes of a *base* schema whose class set, in index order, equals
    /// this schema's; every candidate is re-checked against this schema's
    /// ISA/disjointness/covering assertions and kept only if still
    /// consistent. Sound whenever this schema's constraints are a superset
    /// of the base's (constraints only shrink the consistent atom set);
    /// the caller owns that precondition. Returns the expansion and the
    /// number of candidates invalidated.
    pub fn build_from_candidates(
        schema: &'s Schema,
        config: &ExpansionConfig,
        budget: &Budget,
        candidates: &[BitSet],
    ) -> CrResult<(Expansion<'s>, usize)> {
        let tracer = budget.tracer();
        let _span = tracer.span(Stage::Expansion.as_str());
        let closure = IsaClosure::compute(schema);
        let mut cclasses = Vec::with_capacity(candidates.len());
        for set in candidates {
            budget.charge(Stage::Expansion, 1)?;
            if cclasses.len() >= config.max_compound_classes {
                return Err(CrError::ExpansionTooLarge {
                    what: "compound classes",
                    limit: config.max_compound_classes,
                });
            }
            if !set.is_empty() && consistent_at_leaf(schema, &closure, set) {
                cclasses.push(set.clone());
            }
        }
        let invalidated = candidates.len() - cclasses.len();
        tracer.add(cr_trace::Counter::AtomsInvalidated, invalidated as u64);
        tracer.add(
            cr_trace::Counter::CompoundClassesConsistent,
            cclasses.len() as u64,
        );
        let exp = Expansion::finish(schema, closure, cclasses, config, budget)?;
        Ok((exp, invalidated))
    }

    /// Shared tail of both builders: index the (sorted) consistent
    /// compound classes and materialize the consistent compound
    /// relationships by odometer product.
    fn finish(
        schema: &'s Schema,
        closure: IsaClosure,
        cclasses: Vec<BitSet>,
        config: &ExpansionConfig,
        budget: &Budget,
    ) -> CrResult<Expansion<'s>> {
        let tracer = budget.tracer();
        let n = schema.num_classes();
        let cclass_index: HashMap<BitSet, usize> = cclasses
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        let mut containing = vec![Vec::new(); n];
        for (i, set) in cclasses.iter().enumerate() {
            for c in set.iter() {
                containing[c].push(i);
            }
        }

        // --- consistent compound relationships (cartesian products of
        //     per-role candidate compound classes) ---
        let mut crels = Vec::new();
        let mut crels_of_rel = vec![Vec::new(); schema.num_rels()];
        for rel in schema.rels() {
            let candidates: Vec<&Vec<usize>> = schema
                .roles_of(rel)
                .iter()
                .map(|&u| &containing[schema.primary_class(u).index()])
                .collect();
            if candidates.iter().any(|c| c.is_empty()) {
                continue; // some role's primary class can never be populated
            }
            let mut odometer = vec![0usize; candidates.len()];
            loop {
                budget.charge(Stage::Expansion, 1)?;
                cr_faults::point!("core.expansion.step", |_| Err(CrError::FaultInjected {
                    site: "core.expansion.step"
                }));
                if crels.len() >= config.max_compound_rels {
                    return Err(CrError::ExpansionTooLarge {
                        what: "compound relationships",
                        limit: config.max_compound_rels,
                    });
                }
                crels_of_rel[rel.index()].push(crels.len());
                crels.push(CompoundRel {
                    rel,
                    roles: odometer
                        .iter()
                        .zip(&candidates)
                        .map(|(&i, c)| c[i])
                        .collect(),
                });
                // Advance the odometer.
                let mut pos = 0;
                loop {
                    if pos == odometer.len() {
                        break;
                    }
                    odometer[pos] += 1;
                    if odometer[pos] < candidates[pos].len() {
                        break;
                    }
                    odometer[pos] = 0;
                    pos += 1;
                }
                if pos == odometer.len() {
                    break;
                }
            }
        }

        // Rough peak-memory estimate: bitsets for the compound classes plus
        // the role vectors of the compound relationships.
        let words_per_set = n.div_ceil(64).max(1) as u64;
        let cc_bytes = cclasses.len() as u64 * words_per_set * 8;
        let crel_bytes: u64 = crels
            .iter()
            .map(|cr| (cr.roles.len() * std::mem::size_of::<usize>()) as u64)
            .sum();
        budget.note_allocation(cc_bytes + crel_bytes);
        tracer.add(cr_trace::Counter::CompoundRelsEmitted, crels.len() as u64);

        Ok(Expansion {
            schema,
            closure,
            cclasses,
            cclass_index,
            containing,
            crels,
            crels_of_rel,
        })
    }

    /// The underlying schema.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }

    /// The precomputed ISA closure.
    pub fn closure(&self) -> &IsaClosure {
        &self.closure
    }

    /// The consistent compound classes, each a set of class indices.
    pub fn compound_classes(&self) -> &[BitSet] {
        &self.cclasses
    }

    /// The consistent compound relationships.
    pub fn compound_rels(&self) -> &[CompoundRel] {
        &self.crels
    }

    /// Indices of the compound relationships of `rel`.
    pub fn compound_rels_of(&self, rel: RelId) -> &[usize] {
        &self.crels_of_rel[rel.index()]
    }

    /// Indices of the consistent compound classes containing `class`.
    pub fn compound_classes_containing(&self, class: ClassId) -> &[usize] {
        &self.containing[class.index()]
    }

    /// Looks up the index of a compound class, if it is consistent.
    pub fn index_of(&self, set: &BitSet) -> Option<usize> {
        self.cclass_index.get(set).copied()
    }

    /// Total number of compound classes, consistent or not (`2^|C| - 1`).
    pub fn total_compound_classes(&self) -> u128 {
        (1u128 << self.schema.num_classes().min(127)) - 1
    }

    /// Whether an arbitrary compound class (nonempty subset) is consistent.
    pub fn is_consistent(&self, set: &BitSet) -> bool {
        !set.is_empty() && consistent_at_leaf(self.schema, &self.closure, set)
    }

    /// Definition 3.1: the derived window `(minc̄, maxc̄)` of compound class
    /// `cc` (which must contain the role's primary class) on `role` — the
    /// tightest combination of the declared windows of its member classes.
    pub fn derived_card(&self, cc: usize, role: RoleId) -> Card {
        let primary = self.schema.primary_class(role);
        let set = &self.cclasses[cc];
        debug_assert!(
            set.contains(primary.index()),
            "cc must contain the primary class"
        );
        let mut card = Card::UNCONSTRAINED;
        for c in set.iter() {
            let class = ClassId::from_index(c);
            if self.closure.is_subclass_of(class, primary) {
                card = card.tighten(&self.schema.declared_card(class, role));
            }
        }
        card
    }

    /// Pretty name of a compound class, e.g. `{Speaker,Discussant}`.
    pub fn cclass_name(&self, cc: usize) -> String {
        let names: Vec<&str> = self.cclasses[cc]
            .iter()
            .map(|c| self.schema.class_name(ClassId::from_index(c)))
            .collect();
        format!("{{{}}}", names.join(","))
    }

    /// Pretty name of a compound relationship, e.g.
    /// `Holds⟨U1:{Speaker}, U2:{Talk}⟩`.
    pub fn crel_name(&self, cr: usize) -> String {
        let crel = &self.crels[cr];
        let parts: Vec<String> = self
            .schema
            .roles_of(crel.rel)
            .iter()
            .zip(&crel.roles)
            .map(|(&u, &cc)| format!("{}:{}", self.schema.role_name(u), self.cclass_name(cc)))
            .collect();
        format!("{}⟨{}⟩", self.schema.rel_name(crel.rel), parts.join(", "))
    }
}

/// Leaf consistency check: disjointness and covering (up-closure is
/// maintained by the DFS propagation, but is re-checked for sets coming from
/// outside the enumeration).
fn consistent_at_leaf(schema: &Schema, closure: &IsaClosure, set: &BitSet) -> bool {
    if !closure.is_up_closed(set) {
        return false;
    }
    for group in schema.disjointness_groups() {
        let mut hits = 0;
        for &c in group {
            if set.contains(c.index()) {
                hits += 1;
                if hits >= 2 {
                    return false;
                }
            }
        }
    }
    for (c, covers) in schema.coverings() {
        if set.contains(c.index()) && !covers.iter().any(|&k| set.contains(k.index())) {
            return false;
        }
    }
    true
}

/// DFS over include/exclude decisions with ISA propagation: including a
/// class pulls in all its ancestors; excluding one rules out all its
/// descendants. Disjointness prunes eagerly; coverings are checked at the
/// leaves (a covering can still be satisfied by a later class, so it cannot
/// prune mid-path). Every call charges one [`Stage::Expansion`] budget unit
/// — the node count, not the emit count, is what blows up on adversarial
/// schemas whose subtrees are all pruned at the leaves.
fn enumerate_consistent(
    schema: &Schema,
    closure: &IsaClosure,
    idx: usize,
    included: &mut BitSet,
    excluded: &mut BitSet,
    budget: &Budget,
    emit: &mut impl FnMut(&BitSet) -> CrResult<()>,
) -> CrResult<()> {
    budget.charge(Stage::Expansion, 1)?;
    cr_faults::point!("core.expansion.step", |_| Err(CrError::FaultInjected {
        site: "core.expansion.step"
    }));
    budget
        .tracer()
        .add(cr_trace::Counter::CompoundClassesConsidered, 1);
    let n = schema.num_classes();
    // Skip classes whose fate is already decided by propagation.
    let mut idx = idx;
    while idx < n && (included.contains(idx) || excluded.contains(idx)) {
        idx += 1;
    }
    if idx == n {
        if !included.is_empty() && leaf_ok(schema, included) {
            emit(included)?;
        }
        return Ok(());
    }

    // Branch 1: include idx (and, by up-closure, all its ancestors).
    let ancestors = closure.ancestors(ClassId::from_index(idx));
    if !ancestors.intersects(excluded) {
        let mut inc2 = included.clone();
        inc2.union_with(ancestors);
        if no_disjoint_pair(schema, &inc2) {
            enumerate_consistent(schema, closure, idx + 1, &mut inc2, excluded, budget, emit)?;
        }
    }

    // Branch 2: exclude idx (and all its descendants).
    let descendants = closure.descendants(ClassId::from_index(idx));
    if !descendants.intersects(included) {
        let mut exc2 = excluded.clone();
        exc2.union_with(descendants);
        enumerate_consistent(schema, closure, idx + 1, included, &mut exc2, budget, emit)?;
    }
    Ok(())
}

fn no_disjoint_pair(schema: &Schema, set: &BitSet) -> bool {
    schema
        .disjointness_groups()
        .iter()
        .all(|group| group.iter().filter(|c| set.contains(c.index())).count() < 2)
}

fn leaf_ok(schema: &Schema, set: &BitSet) -> bool {
    schema.coverings().iter().all(|(c, covers)| {
        !set.contains(c.index()) || covers.iter().any(|k| set.contains(k.index()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    /// The paper's Figures 2/3 meeting schema.
    pub(crate) fn meeting_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        let (u1, u2) = (b.role(holds, 0), b.role(holds, 1));
        let (u3, u4) = (b.role(participates, 0), b.role(participates, 1));
        b.card(speaker, u1, Card::at_least(1)).unwrap();
        b.card(discussant, u1, Card::at_most(2)).unwrap();
        b.card(talk, u2, Card::exactly(1)).unwrap();
        b.card(discussant, u3, Card::exactly(1)).unwrap();
        b.card(talk, u4, Card::at_least(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure4_compound_classes() {
        let schema = meeting_schema();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        // Paper: consistent compound classes are {S}, {T}, {S,D}, {S,T},
        // {S,D,T} — five of the seven nonempty subsets.
        assert_eq!(exp.total_compound_classes(), 7);
        let mut names: Vec<String> = (0..exp.compound_classes().len())
            .map(|i| exp.cclass_name(i))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "{Speaker,Discussant,Talk}",
                "{Speaker,Discussant}",
                "{Speaker,Talk}",
                "{Speaker}",
                "{Talk}",
            ]
        );
    }

    #[test]
    fn figure4_compound_rels() {
        let schema = meeting_schema();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let holds = schema.rel_by_name("Holds").unwrap();
        let participates = schema.rel_by_name("Participates").unwrap();
        // Paper: 4 candidates for U1 × 3 for U2 = 12 consistent H̄;
        // 2 candidates for U3 × 3 for U4 = 6 consistent P̄.
        assert_eq!(exp.compound_rels_of(holds).len(), 12);
        assert_eq!(exp.compound_rels_of(participates).len(), 6);
        assert_eq!(exp.compound_rels().len(), 18);
    }

    #[test]
    fn figure4_derived_cards() {
        let schema = meeting_schema();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let holds = schema.rel_by_name("Holds").unwrap();
        let u1 = schema.roles_of(holds)[0];
        let s = schema.class_by_name("Speaker").unwrap();
        let d = schema.class_by_name("Discussant").unwrap();
        let n = schema.num_classes();

        // {Speaker}: minc̄ = 1 (from Speaker), maxc̄ = ∞.
        let just_s = exp.index_of(&BitSet::from_iter(n, [s.index()])).unwrap();
        assert_eq!(exp.derived_card(just_s, u1), Card::new(1, None));

        // {Speaker, Discussant}: minc̄ = 1 (Speaker), maxc̄ = 2 (Discussant
        // refinement) — the paper's c̄4 row.
        let sd = exp
            .index_of(&BitSet::from_iter(n, [s.index(), d.index()]))
            .unwrap();
        assert_eq!(exp.derived_card(sd, u1), Card::new(1, Some(2)));
    }

    #[test]
    fn no_isa_yields_antichain_expansion() {
        // Without ISA every nonempty subset is consistent: 2^3 - 1 = 7.
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("B");
        b.class("C");
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        assert_eq!(exp.compound_classes().len(), 7);
    }

    #[test]
    fn disjointness_prunes_expansion() {
        // The paper's Section 5 remark: disjointness dramatically shrinks
        // the expansion. Disjoint A, B, C: only the three singletons remain.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("B");
        let c = b.class("C");
        b.disjoint([a, x, c]).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        assert_eq!(exp.compound_classes().len(), 3);
    }

    #[test]
    fn covering_constrains_expansion() {
        // A covered by {P, Q}: compound classes containing A must contain
        // P or Q.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let p = b.class("P");
        let q = b.class("Q");
        b.covering(a, [p, q]).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        for (i, set) in exp.compound_classes().iter().enumerate() {
            if set.contains(a.index()) {
                assert!(
                    set.contains(p.index()) || set.contains(q.index()),
                    "inconsistent compound class survived: {}",
                    exp.cclass_name(i)
                );
            }
        }
        // {A} alone must be gone; {A,P} must be present.
        assert!(exp.index_of(&BitSet::from_iter(3, [0])).is_none());
        assert!(exp.index_of(&BitSet::from_iter(3, [0, 1])).is_some());
    }

    #[test]
    fn budget_enforced() {
        let mut b = SchemaBuilder::new();
        for i in 0..10 {
            b.class(format!("C{i}"));
        }
        let schema = b.build().unwrap();
        let config = ExpansionConfig {
            max_compound_classes: 50,
            max_compound_rels: 1000,
        };
        assert!(matches!(
            Expansion::build(&schema, &config),
            Err(CrError::ExpansionTooLarge { .. })
        ));
    }

    #[test]
    fn governed_build_trips_step_budget() {
        let mut b = SchemaBuilder::new();
        for i in 0..12 {
            b.class(format!("C{i}"));
        }
        let schema = b.build().unwrap();
        let budget = Budget::unlimited().with_stage_limit(Stage::Expansion, 100);
        let result = Expansion::build_governed(&schema, &ExpansionConfig::default(), &budget);
        assert!(matches!(
            result,
            Err(CrError::BudgetExceeded {
                stage: Stage::Expansion,
                ..
            })
        ));
        // The same build under an unlimited budget succeeds and records a
        // nonzero peak-allocation estimate.
        let generous = Budget::unlimited();
        Expansion::build_governed(&schema, &ExpansionConfig::default(), &generous).unwrap();
        assert!(generous.peak_allocation_estimate() > 0);
    }

    #[test]
    fn is_consistent_matches_enumeration() {
        let schema = meeting_schema();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let n = schema.num_classes();
        // Enumerate all nonempty subsets and compare.
        for mask in 1u32..(1 << n) {
            let set = BitSet::from_iter(n, (0..n).filter(|i| mask & (1 << i) != 0));
            assert_eq!(
                exp.is_consistent(&set),
                exp.index_of(&set).is_some(),
                "mismatch on mask {mask:b}"
            );
        }
    }
}
