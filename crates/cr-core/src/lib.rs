//! Reasoning about ISA and cardinality constraints in the CR data model.
//!
//! This crate implements the decision procedure of
//!
//! > D. Calvanese, M. Lenzerini. *On the Interaction Between ISA and
//! > Cardinality Constraints.* Proc. ICDE 1994, pp. 205–213.
//!
//! The CR data model has **classes** and n-ary **relationships** whose named
//! **roles** are typed by a *primary class*. Two constraint families
//! interact:
//!
//! * **ISA** (`C1 ≼ C2`): the instances of `C1` are instances of `C2`;
//! * **cardinality constraints** `minc/maxc(C, R, U)`: every instance of `C`
//!   fills role `U` of `R` between `minc` and `maxc` times — including
//!   *refinements* of inherited cardinalities along ISA.
//!
//! Separately each family is easy; together they can force classes to be
//! empty in every *finite* database state (the paper's Figure 1), and
//! deciding this was open until the paper. The procedure:
//!
//! 1. build the [**expansion**](expansion): *compound classes* (the atoms of
//!    the Venn diagram of class extensions, kept only when *consistent* with
//!    the ISA/disjointness/covering assertions) and *compound relationships*
//!    (relationships retyped by compound classes), with derived tightest
//!    cardinalities (Definition 3.1);
//! 2. translate to a homogeneous [**system of linear
//!    disequations**](system) `Ψ_S` with one nonnegative unknown per
//!    consistent compound class/relationship (Section 3.2);
//! 3. decide existence of an [**acceptable**](sat) nonnegative integer
//!    solution (Theorems 3.3/3.4) — implemented both as the paper's literal
//!    `Z ⊆ V_C` enumeration and as a polynomial-in-the-expansion greatest-
//!    fixpoint, which are property-tested against each other;
//! 4. from a witness, [**construct**](model) an actual finite database state
//!    and re-verify it against the model-theoretic semantics
//!    ([`interp`]) — soundness is checked, never assumed;
//! 5. reduce [**implication**](implication) of ISA and cardinality
//!    constraints to (un)satisfiability (Section 4), including tightest
//!    implied bounds;
//! 6. [**explain**](explain) unsatisfiable classes by a minimal
//!    unsatisfiable subset of constraints (the schema-debugging aid the
//!    paper's Section 5 proposes as future work).
//!
//! The Section 5 extensions — *disjointness* and *covering* constraints —
//! are implemented as first-class schema constructs.
//!
//! # Example
//!
//! The paper's Figure 1: a binary relationship forcing `|R| >= 2|C|` and
//! `|R| <= |D|` while `D ≼ C` forces `|D| <= |C|` — finitely unsatisfiable.
//!
//! ```
//! use cr_core::schema::{Card, SchemaBuilder};
//! use cr_core::sat::Reasoner;
//!
//! let mut b = SchemaBuilder::new();
//! let c = b.class("C");
//! let d = b.class("D");
//! let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
//! let (u1, u2) = (b.role(r, 0), b.role(r, 1));
//! b.isa(d, c);
//! b.card(c, u1, Card::at_least(2)).unwrap();
//! b.card(d, u2, Card::new(0, Some(1))).unwrap();
//! let schema = b.build().unwrap();
//!
//! let reasoner = Reasoner::new(&schema).unwrap();
//! assert!(!reasoner.is_class_satisfiable(c));
//! assert!(!reasoner.is_class_satisfiable(d));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod bitset;
pub mod budget;
pub mod certify;
pub mod checkpoint;
pub mod compare;
pub mod delta;
mod error;
pub mod expansion;
pub mod explain;
pub mod ids;
pub mod implication;
pub mod interp;
pub mod isa;
pub mod model;
pub mod sat;
pub mod schema;
pub mod system;
pub mod unrestricted;

pub use budget::{
    run_report, Budget, CancelToken, Clock, Frontier, ManualClock, Stage, TracerMeter,
};
pub use certify::{certify_check, certify_reasoner, CertifyReport};
pub use error::CrError;
pub use ids::{ClassId, RelId, RoleId};
pub use schema::{
    canonical_form, canonical_hash, canonical_text_hash, Card, Schema, SchemaBuilder,
};
