//! The resource governor: deadlines, step budgets, and cooperative
//! cancellation for the reasoning pipeline.
//!
//! Every stage of the decision procedure is worst-case exponential — the
//! expansion in the number of classes (Section 3.1), the Theorem 3.4
//! `Z`-enumeration in the number of compound classes, and even the
//! polynomial fixpoint runs simplex over exact rationals whose pivot count
//! has no useful a-priori bound. A CASE tool (the paper's own motivating
//! deployment, Section 5) cannot simply hang on an adversarial schema, so
//! every potentially-exponential loop in this crate charges work units
//! against a caller-supplied [`Budget`] and stops with
//! [`CrError::BudgetExceeded`] — never a panic, never an unbounded stall —
//! as soon as a limit trips.
//!
//! A [`Budget`] combines four independent guards:
//!
//! * a **deadline** relative to the budget's creation (checked against a
//!   monotonic clock, injectable for tests via [`ManualClock`]);
//! * a **global step limit** over all stages;
//! * **per-stage step limits** (e.g. cap only [`Stage::ZEnumeration`] so the
//!   oracle falls back to the fixpoint while everything else runs free);
//! * a **cooperative [`CancelToken`]** that another thread may trip at any
//!   time.
//!
//! All counters are atomic, so one `Budget` can be shared by reference
//! across threads. The governor composes with `cr-linear`: a budget (or a
//! per-stage [`StageBudget`] view of one) implements
//! [`cr_linear::WorkBudget`], so simplex pivots inside a stage are charged
//! to that stage's account. Exhaustion surfaces from the solver as
//! [`cr_linear::LinearError::Interrupted`] and is converted back to
//! [`CrError::BudgetExceeded`] by the calling stage.
//!
//! The default budget everywhere is [`Budget::unlimited`], so existing
//! entry points keep their behavior; governed variants (`*_governed`,
//! [`Reasoner::with_budget`](crate::sat::Reasoner::with_budget)) accept an
//! explicit budget.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cr_linear::WorkBudget;
use cr_trace::{Counter, RunReport, Tracer};

use crate::error::{CrError, CrResult};

/// Pipeline stages the governor meters separately.
///
/// Each stage charges units of comparable (not identical) magnitude: one
/// unit is one "inner-loop step" — a compound-class candidate visited, a
/// `Z` subset tried, a fixpoint pass, a simplex pivot, an implication
/// probe. The error message reports which stage tripped.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Stage {
    /// Compound-class and compound-relationship enumeration (Section 3.1).
    Expansion = 0,
    /// Greatest-fixpoint support iteration — the polynomial engine
    /// (including its support-maximizing LP solves).
    Fixpoint = 1,
    /// The literal Theorem 3.4 `Z ⊆ V_C` enumeration oracle (including its
    /// per-subset feasibility solves).
    ZEnumeration = 2,
    /// Simplex pivoting attributed to no more specific stage (direct
    /// [`WorkBudget`] use of a [`Budget`]).
    Simplex = 3,
    /// Auxiliary-schema implication checks and implied-bound searches
    /// (Section 4).
    Implication = 4,
    /// Finite-model construction from a witness.
    Model = 5,
}

impl Stage {
    /// Number of stages (size of the per-stage accounting arrays).
    pub const COUNT: usize = 6;

    /// All stages, in metering-array order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Expansion,
        Stage::Fixpoint,
        Stage::ZEnumeration,
        Stage::Simplex,
        Stage::Implication,
        Stage::Model,
    ];

    /// Stable lowercase name (used in CLI diagnostics).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Expansion => "expansion",
            Stage::Fixpoint => "fixpoint",
            Stage::ZEnumeration => "zenum",
            Stage::Simplex => "simplex",
            Stage::Implication => "implication",
            Stage::Model => "model",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Adding a stage without extending `ALL` would silently drop it from every
// report and iteration; fail the build instead.
const _: () = assert!(Stage::ALL.len() == Stage::COUNT);

/// Time source for deadline checks: the real monotonic clock, or a
/// test-controlled counter.
#[derive(Clone)]
enum TimeSource {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

impl TimeSource {
    fn elapsed(&self) -> Duration {
        match self {
            TimeSource::Monotonic(start) => start.elapsed(),
            TimeSource::Manual(nanos) => Duration::from_nanos(nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A hand-cranked clock for deterministic deadline tests: deadlines of a
/// [`Budget`] built with [`Budget::with_manual_clock`] only advance when
/// [`ManualClock::advance`] is called.
#[derive(Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `by`.
    pub fn advance(&self, by: Duration) {
        let nanos = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Time shown on the clock.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// The clock's underlying nanosecond counter, shareable with other
    /// consumers of manual time — notably [`cr_trace::Tracer::manual`], so
    /// one hand-cranked clock drives budget deadlines and span durations
    /// in lockstep.
    pub fn shared_nanos(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.nanos)
    }
}

/// A shareable monotonic-or-manual time reading — the injectable-clock
/// convention of [`Budget`] as a standalone handle, for components whose
/// timers must run on virtual time under deterministic simulation (AIMD
/// shedding cooldowns, wedge timers, singleflight waits). Readings are
/// durations since an arbitrary epoch (process start for the monotonic
/// source, zero for a manual one); only differences are meaningful.
#[derive(Clone, Debug)]
pub struct Clock {
    source: ClockSource,
}

#[derive(Clone, Debug)]
enum ClockSource {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// The real monotonic clock, anchored at creation.
    pub fn monotonic() -> Clock {
        Clock {
            source: ClockSource::Monotonic(Instant::now()),
        }
    }

    /// A clock driven by a [`ManualClock`]'s nanosecond counter: readings
    /// advance only when the owning harness cranks it.
    pub fn manual(clock: &ManualClock) -> Clock {
        Clock {
            source: ClockSource::Manual(clock.shared_nanos()),
        }
    }

    /// The current reading.
    pub fn now(&self) -> Duration {
        match &self.source {
            ClockSource::Monotonic(start) => start.elapsed(),
            ClockSource::Manual(nanos) => Duration::from_nanos(nanos.load(Ordering::Relaxed)),
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::monotonic()
    }
}

/// A shared cancellation flag. Cloning shares the flag; tripping it makes
/// every [`Budget`] built from it refuse all further work.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the flag. Irrevocable: reasoning in flight stops at its next
    /// check with [`CrError::BudgetExceeded`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The resource governor threaded through the reasoning pipeline.
///
/// See the [module docs](self) for the guard kinds. Construction is by
/// builder methods:
///
/// ```
/// use std::time::Duration;
/// use cr_core::budget::{Budget, Stage};
///
/// let budget = Budget::unlimited()
///     .with_deadline(Duration::from_millis(200))
///     .with_max_steps(1_000_000)
///     .with_stage_limit(Stage::ZEnumeration, 10_000);
/// ```
pub struct Budget {
    time: TimeSource,
    deadline: Option<Duration>,
    max_steps: Option<u64>,
    stage_limits: [Option<u64>; Stage::COUNT],
    steps: AtomicU64,
    stage_steps: [AtomicU64; Stage::COUNT],
    peak_alloc: AtomicU64,
    cancel: CancelToken,
    tracer: Tracer,
    frontier: Mutex<Option<Frontier>>,
    resumed_from: Mutex<Option<u64>>,
}

/// A resumable snapshot of the fixpoint engine's candidate set, offered
/// to the [`Budget`] when a limit trips mid-iteration.
///
/// The greatest-fixpoint support computation only ever *shrinks* its
/// `alive` set from all-`true` toward the final support `P*`, so any
/// intermediate `alive` is a superset of `P*` and restarting from it is
/// sound: the same fixpoint is reached with the already-eliminated
/// candidates pruned up front. `CrError::BudgetExceeded` itself stays
/// payload-free (its exact shape is part of the error contract tested
/// across the workspace); the frontier rides on the `Budget` the caller
/// already holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    /// The stage that was interrupted (always [`Stage::Fixpoint`] today).
    pub stage: Stage,
    /// Per-candidate liveness at the moment of interruption.
    pub alive: Vec<bool>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits — the implicit budget of every ungoverned
    /// entry point. Still cancellable via [`Budget::with_cancel_token`].
    pub fn unlimited() -> Budget {
        Budget {
            time: TimeSource::Monotonic(Instant::now()),
            deadline: None,
            max_steps: None,
            stage_limits: [None; Stage::COUNT],
            steps: AtomicU64::new(0),
            stage_steps: std::array::from_fn(|_| AtomicU64::new(0)),
            peak_alloc: AtomicU64::new(0),
            cancel: CancelToken::new(),
            tracer: Tracer::disabled(),
            frontier: Mutex::new(None),
            resumed_from: Mutex::new(None),
        }
    }

    /// Sets a wall-clock deadline measured from the budget's creation (or
    /// from the manual clock's zero).
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Caps total work units across all stages.
    pub fn with_max_steps(mut self, max_steps: u64) -> Budget {
        self.max_steps = Some(max_steps);
        self
    }

    /// Caps work units charged to one stage (including simplex pivots the
    /// stage performs through its [`StageBudget`] view). Used by the
    /// satisfiability fallback: cap [`Stage::ZEnumeration`] and the oracle
    /// degrades to the fixpoint instead of failing the whole question.
    pub fn with_stage_limit(mut self, stage: Stage, limit: u64) -> Budget {
        self.stage_limits[stage as usize] = Some(limit);
        self
    }

    /// Replaces the monotonic clock with a test-controlled [`ManualClock`].
    pub fn with_manual_clock(mut self, clock: &ManualClock) -> Budget {
        self.time = TimeSource::Manual(Arc::clone(&clock.nanos));
        self
    }

    /// Shares `token` as this budget's cancellation flag.
    pub fn with_cancel_token(mut self, token: &CancelToken) -> Budget {
        self.cancel = token.clone();
        self
    }

    /// Attaches an observability [`Tracer`]: every stage the budget is
    /// threaded through records spans and domain counters into it. The
    /// default is [`Tracer::disabled`] — a single-branch no-op — so
    /// ungoverned and untraced runs pay nothing.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Budget {
        self.tracer = tracer.clone();
        self
    }

    /// The attached tracer (disabled unless [`Budget::with_tracer`] was
    /// called). Stages open spans and bump counters through this handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A handle to this budget's cancellation flag.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The configured wall-clock deadline, if any. Service layers use this
    /// to turn one invocation's governor flags into per-request defaults.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured total step cap, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// Total work units charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Work units charged to `stage` so far.
    pub fn stage_steps(&self, stage: Stage) -> u64 {
        self.stage_steps[stage as usize].load(Ordering::Relaxed)
    }

    /// Elapsed time per the budget's clock.
    pub fn elapsed(&self) -> Duration {
        self.time.elapsed()
    }

    /// Records a transient allocation estimate (in abstract units; callers
    /// use bytes). The maximum over all recordings is kept — a cheap proxy
    /// for peak memory that needs no allocator hooks.
    pub fn note_allocation(&self, units: u64) {
        self.peak_alloc.fetch_max(units, Ordering::Relaxed);
        self.tracer.record_max(Counter::PeakAllocBytes, units);
    }

    /// The largest allocation estimate recorded so far.
    pub fn peak_allocation_estimate(&self) -> u64 {
        self.peak_alloc.load(Ordering::Relaxed)
    }

    /// Charges `units` of work to `stage`, then checks every guard.
    pub fn charge(&self, stage: Stage, units: u64) -> CrResult<()> {
        self.steps.fetch_add(units, Ordering::Relaxed);
        self.stage_steps[stage as usize].fetch_add(units, Ordering::Relaxed);
        self.check(stage)
    }

    /// Checks every guard without charging. A limit of `n` admits exactly
    /// `n` units; the `n+1`-th charge trips.
    pub fn check(&self, stage: Stage) -> CrResult<()> {
        if self.cancel.is_cancelled() {
            return Err(self.exceeded_err(stage));
        }
        if let Some(limit) = self.stage_limits[stage as usize] {
            if self.stage_steps(stage) > limit {
                return Err(self.exceeded_err(stage));
            }
        }
        if let Some(limit) = self.max_steps {
            if self.steps() > limit {
                return Err(self.exceeded_err(stage));
            }
        }
        if let Some(deadline) = self.deadline {
            if self.elapsed() > deadline {
                return Err(self.exceeded_err(stage));
            }
        }
        Ok(())
    }

    /// Builds the [`CrError::BudgetExceeded`] for the guard that tripped
    /// (also used to convert a solver
    /// [`Interrupted`](cr_linear::LinearError::Interrupted) back into a
    /// stage-attributed error). Cancellation reports `limit: 0`; a missed
    /// deadline reports elapsed/deadline milliseconds; step limits report
    /// work units.
    pub fn exceeded_err(&self, stage: Stage) -> CrError {
        if self.cancel.is_cancelled() {
            return CrError::BudgetExceeded {
                stage,
                spent: self.steps(),
                limit: 0,
            };
        }
        if let Some(limit) = self.stage_limits[stage as usize] {
            if self.stage_steps(stage) > limit {
                return CrError::BudgetExceeded {
                    stage,
                    spent: self.stage_steps(stage),
                    limit,
                };
            }
        }
        if let Some(limit) = self.max_steps {
            if self.steps() > limit {
                return CrError::BudgetExceeded {
                    stage,
                    spent: self.steps(),
                    limit,
                };
            }
        }
        if let Some(deadline) = self.deadline {
            let elapsed_ms = u64::try_from(self.elapsed().as_millis()).unwrap_or(u64::MAX);
            // Clamp to >= 1 so a sub-millisecond deadline cannot collide
            // with the `limit: 0` cancellation sentinel.
            let deadline_ms = u64::try_from(deadline.as_millis())
                .unwrap_or(u64::MAX)
                .max(1);
            if elapsed_ms >= deadline_ms || self.elapsed() > deadline {
                return CrError::BudgetExceeded {
                    stage,
                    spent: elapsed_ms.max(deadline_ms),
                    limit: deadline_ms,
                };
            }
        }
        // No guard is (still) tripped — e.g. the solver was interrupted by
        // a deadline that a coarse millisecond reading rounds away. Report
        // the step account.
        CrError::BudgetExceeded {
            stage,
            spent: self.steps(),
            limit: self.max_steps.unwrap_or_else(|| self.steps()),
        }
    }

    /// Deposits the interrupted stage's resumable state. Called by the
    /// fixpoint engine at every budget-trip exit; the latest offer wins
    /// (when the zenum oracle trips and the fallback fixpoint then trips
    /// too, the fixpoint frontier is the one worth checkpointing).
    pub fn offer_frontier(&self, stage: Stage, alive: &[bool]) {
        let mut slot = self.frontier.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Frontier {
            stage,
            alive: alive.to_vec(),
        });
    }

    /// Takes the resumable state deposited by the interrupted run, if any.
    /// The slot is cleared so a later error cannot be misattributed to a
    /// stale frontier.
    pub fn take_frontier(&self) -> Option<Frontier> {
        self.frontier
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Records that this run was resumed from a checkpoint taken at
    /// `steps` charged units, and bumps [`Counter::Resumes`]. Surfaces in
    /// [`run_report`] as the `resumed_from_step` field.
    pub fn note_resumed_from(&self, steps: u64) {
        let mut slot = self.resumed_from.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(steps);
        self.tracer.add(Counter::Resumes, 1);
    }

    /// The checkpointed step count this run resumed from, if any.
    pub fn resumed_from(&self) -> Option<u64> {
        *self.resumed_from.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A [`WorkBudget`] view that attributes solver work to `stage`, so a
    /// per-stage limit also bounds the LP pivots that stage performs.
    pub fn stage(&self, stage: Stage) -> StageBudget<'_> {
        StageBudget {
            budget: self,
            stage,
        }
    }
}

/// Direct [`WorkBudget`] use of a budget charges [`Stage::Simplex`].
impl WorkBudget for Budget {
    fn consume(&self, units: u64) -> bool {
        self.tracer.add(Counter::SimplexPivots, units);
        self.charge(Stage::Simplex, units).is_ok()
    }

    fn note_tableau(&self, rows: usize, cols: usize) {
        note_tableau_metrics(&self.tracer, rows, cols);
    }
}

/// A view of a [`Budget`] that books solver work under an enclosing
/// pipeline stage (see [`Budget::stage`]).
pub struct StageBudget<'b> {
    budget: &'b Budget,
    stage: Stage,
}

impl WorkBudget for StageBudget<'_> {
    fn consume(&self, units: u64) -> bool {
        // Units flowing through the solver's WorkBudget are pivots (the
        // pivot loop is the only `consume` caller in cr-linear), whatever
        // stage they are booked to.
        self.budget.tracer.add(Counter::SimplexPivots, units);
        self.budget.charge(self.stage, units).is_ok()
    }

    fn note_tableau(&self, rows: usize, cols: usize) {
        note_tableau_metrics(&self.budget.tracer, rows, cols);
    }
}

/// One solver entry announces one tableau: count the solve and track peak
/// problem dimensions.
fn note_tableau_metrics(tracer: &Tracer, rows: usize, cols: usize) {
    tracer.add(Counter::SimplexSolves, 1);
    tracer.record_max(Counter::MaxTableauRows, rows as u64);
    tracer.record_max(Counter::MaxTableauCols, cols as u64);
}

/// A [`WorkBudget`] that never refuses work but meters it into a
/// [`Tracer`] — for solver calls that must stay ungoverned (pure probes
/// outside any budgeted stage) yet should still show up in pivot counts.
pub struct TracerMeter<'t> {
    tracer: &'t Tracer,
}

impl<'t> TracerMeter<'t> {
    /// A meter recording into `tracer`.
    pub fn new(tracer: &'t Tracer) -> TracerMeter<'t> {
        TracerMeter { tracer }
    }
}

impl WorkBudget for TracerMeter<'_> {
    fn consume(&self, units: u64) -> bool {
        self.tracer.add(Counter::SimplexPivots, units);
        true
    }

    fn note_tableau(&self, rows: usize, cols: usize) {
        note_tableau_metrics(self.tracer, rows, cols);
    }
}

/// Builds a [`RunReport`] joining the tracer's spans/counters with the
/// budget's per-stage step accounts and peak-allocation estimate.
///
/// This is *the* way to snapshot a governed run: [`Tracer::report`] alone
/// knows nothing about budgets, so its `budget_steps` and
/// `budget_charged_units` fields would stay zero. Stages appear in the
/// report if they recorded a span or charged at least one unit.
pub fn run_report(budget: &Budget, command: &str, outcome: &str) -> RunReport {
    let tracer = budget.tracer();
    let mut report = tracer.report(command, outcome);
    for stage in Stage::ALL {
        let steps = budget.stage_steps(stage);
        if steps > 0 || report.stage(stage.as_str()).is_some() {
            report.set_stage_steps(stage.as_str(), steps);
        }
    }
    report.set_counter(Counter::BudgetChargedUnits.as_str(), budget.steps());
    let peak = budget
        .peak_allocation_estimate()
        .max(tracer.counter(Counter::PeakAllocBytes));
    report.set_counter(Counter::PeakAllocBytes.as_str(), peak);
    report.resumed_from_step = budget.resumed_from();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            b.charge(Stage::Expansion, 1_000_000).unwrap();
        }
        assert_eq!(b.steps(), 1_000_000_000);
    }

    #[test]
    fn global_step_limit_trips_with_attribution() {
        let b = Budget::unlimited().with_max_steps(10);
        for _ in 0..10 {
            b.charge(Stage::Fixpoint, 1).unwrap();
        }
        let err = b.charge(Stage::Fixpoint, 1).unwrap_err();
        assert_eq!(
            err,
            CrError::BudgetExceeded {
                stage: Stage::Fixpoint,
                spent: 11,
                limit: 10
            }
        );
    }

    #[test]
    fn stage_limits_are_independent() {
        let b = Budget::unlimited().with_stage_limit(Stage::ZEnumeration, 2);
        b.charge(Stage::ZEnumeration, 2).unwrap();
        assert!(b.charge(Stage::ZEnumeration, 1).is_err());
        // Other stages keep working after one stage is exhausted.
        b.charge(Stage::Fixpoint, 1_000).unwrap();
        b.charge(Stage::Expansion, 1_000).unwrap();
    }

    #[test]
    fn manual_clock_deadline() {
        let clock = ManualClock::new();
        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(50))
            .with_manual_clock(&clock);
        b.charge(Stage::Expansion, 1).unwrap();
        clock.advance(Duration::from_millis(51));
        let err = b.charge(Stage::Expansion, 1).unwrap_err();
        assert_eq!(
            err,
            CrError::BudgetExceeded {
                stage: Stage::Expansion,
                spent: 51,
                limit: 50
            }
        );
    }

    #[test]
    fn cancellation_trips_everything() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(&token);
        b.charge(Stage::Model, 5).unwrap();
        token.cancel();
        for stage in Stage::ALL {
            let err = b.check(stage).unwrap_err();
            assert!(matches!(err, CrError::BudgetExceeded { limit: 0, .. }));
        }
    }

    #[test]
    fn stage_budget_books_to_stage() {
        let b = Budget::unlimited().with_stage_limit(Stage::Fixpoint, 3);
        let view = b.stage(Stage::Fixpoint);
        assert!(view.consume(3));
        assert!(!view.consume(1));
        assert_eq!(b.stage_steps(Stage::Fixpoint), 4);
        assert_eq!(b.stage_steps(Stage::Simplex), 0);
    }

    #[test]
    fn peak_allocation_keeps_max() {
        let b = Budget::unlimited();
        b.note_allocation(10);
        b.note_allocation(500);
        b.note_allocation(20);
        assert_eq!(b.peak_allocation_estimate(), 500);
    }

    #[test]
    fn run_report_joins_budget_and_tracer() {
        use cr_trace::NullSink;
        let tracer = Tracer::new(Box::new(NullSink));
        let b = Budget::unlimited().with_tracer(&tracer);
        b.charge(Stage::Expansion, 21).unwrap();
        b.note_allocation(4096);
        {
            let _span = b.tracer().span("expansion");
        }
        // Simplex work through the WorkBudget face is metered as pivots.
        assert!(b.stage(Stage::Fixpoint).consume(5));
        b.stage(Stage::Fixpoint).note_tableau(8, 13);
        let report = run_report(&b, "test", "ok");
        let expansion = report.stage("expansion").unwrap();
        assert_eq!(expansion.budget_steps, 21);
        assert_eq!(expansion.calls, 1);
        assert_eq!(report.stage("fixpoint").unwrap().budget_steps, 5);
        assert_eq!(report.stage("model"), None, "idle stages stay out");
        assert_eq!(report.counter("budget_charged_units"), Some(26));
        assert_eq!(report.counter("peak_alloc_bytes"), Some(4096));
        assert_eq!(report.counter("simplex_pivots"), Some(5));
        assert_eq!(report.counter("simplex_solves"), Some(1));
        assert_eq!(report.counter("max_tableau_rows"), Some(8));
        assert_eq!(report.counter("max_tableau_cols"), Some(13));
    }

    #[test]
    fn tracer_meter_counts_but_never_refuses() {
        use cr_trace::NullSink;
        let tracer = Tracer::new(Box::new(NullSink));
        let meter = TracerMeter::new(&tracer);
        assert!(meter.consume(1_000_000_000));
        assert!(meter.consume(1));
        meter.note_tableau(3, 4);
        assert_eq!(tracer.counter(Counter::SimplexPivots), 1_000_000_001);
        assert_eq!(tracer.counter(Counter::SimplexSolves), 1);
    }

    #[test]
    fn manual_clock_shares_nanos_with_tracer() {
        use cr_trace::NullSink;
        let clock = ManualClock::new();
        let tracer = Tracer::manual(Box::new(NullSink), clock.shared_nanos());
        clock.advance(Duration::from_millis(3));
        assert_eq!(tracer.elapsed(), Duration::from_millis(3));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "expansion",
                "fixpoint",
                "zenum",
                "simplex",
                "implication",
                "model"
            ]
        );
    }
}
