//! Finite interpretations (database states) and the Definition 2.2 model
//! checker.
//!
//! The checker is deliberately independent of the decision procedure: it
//! works directly off the model-theoretic semantics, so that every model the
//! reasoner *constructs* can be *verified* rather than trusted.

pub mod enumerate;

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::{ClassId, RelId, RoleId};
use crate::isa::IsaClosure;
use crate::schema::Schema;

/// An individual of the interpretation domain.
pub type Individual = usize;

/// A labeled tuple, stored as one filler per role position of its
/// relationship.
pub type Tuple = Vec<Individual>;

/// A finite interpretation of a schema: a domain `0..domain_size`, an
/// extension per class, and a set of labeled tuples per relationship.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Interpretation {
    domain_size: usize,
    class_ext: Vec<BTreeSet<Individual>>,
    rel_ext: Vec<BTreeSet<Tuple>>,
}

impl Interpretation {
    /// An interpretation with every extension empty. (Such an interpretation
    /// is a model of *every* schema — the observation that motivates class
    /// satisfiability, Section 3.)
    pub fn empty(schema: &Schema) -> Self {
        Interpretation {
            domain_size: 0,
            class_ext: vec![BTreeSet::new(); schema.num_classes()],
            rel_ext: vec![BTreeSet::new(); schema.num_rels()],
        }
    }

    /// Builds an interpretation from explicit extensions.
    pub fn from_parts(
        domain_size: usize,
        class_ext: Vec<BTreeSet<Individual>>,
        rel_ext: Vec<BTreeSet<Tuple>>,
    ) -> Self {
        Interpretation {
            domain_size,
            class_ext,
            rel_ext,
        }
    }

    /// The domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Grows the domain by one individual, returning it.
    pub fn add_individual(&mut self) -> Individual {
        self.domain_size += 1;
        self.domain_size - 1
    }

    /// Adds an individual to a class extension.
    pub fn add_to_class(&mut self, c: ClassId, ind: Individual) {
        assert!(ind < self.domain_size, "individual outside domain");
        self.class_ext[c.index()].insert(ind);
    }

    /// Adds a tuple to a relationship extension; returns `false` if the
    /// tuple was already present (tuples form a *set*).
    pub fn add_tuple(&mut self, r: RelId, tuple: Tuple) -> bool {
        self.rel_ext[r.index()].insert(tuple)
    }

    /// The extension of a class.
    pub fn class_extension(&self, c: ClassId) -> &BTreeSet<Individual> {
        &self.class_ext[c.index()]
    }

    /// The extension of a relationship.
    pub fn rel_extension(&self, r: RelId) -> &BTreeSet<Tuple> {
        &self.rel_ext[r.index()]
    }

    /// Number of tuples of `r` whose `position`-th filler is `ind`.
    pub fn participation_count(&self, r: RelId, position: usize, ind: Individual) -> u64 {
        self.rel_ext[r.index()]
            .iter()
            .filter(|t| t[position] == ind)
            .count() as u64
    }

    /// Checks the interpretation against Definition 2.2, returning every
    /// violation found (empty = the interpretation is a model).
    pub fn check(&self, schema: &Schema) -> Vec<Violation> {
        let closure = IsaClosure::compute(schema);
        self.check_with_closure(schema, &closure)
    }

    /// [`check`](Self::check) with a precomputed ISA closure.
    pub fn check_with_closure(&self, schema: &Schema, closure: &IsaClosure) -> Vec<Violation> {
        let mut out = Vec::new();

        // Condition (A): ISA containment of declared statements.
        for &(sub, sup) in schema.isa_statements() {
            for &ind in &self.class_ext[sub.index()] {
                if !self.class_ext[sup.index()].contains(&ind) {
                    out.push(Violation::Isa { sub, sup, ind });
                }
            }
        }

        // Condition (B): tuple fillers are instances of the primary classes,
        // and tuples have the right arity.
        for r in schema.rels() {
            let roles = schema.roles_of(r);
            for tuple in &self.rel_ext[r.index()] {
                if tuple.len() != roles.len() {
                    out.push(Violation::Arity {
                        rel: r,
                        tuple: tuple.clone(),
                    });
                    continue;
                }
                for (k, &u) in roles.iter().enumerate() {
                    let primary = schema.primary_class(u);
                    if !self.class_ext[primary.index()].contains(&tuple[k]) {
                        out.push(Violation::Typing {
                            rel: r,
                            role: u,
                            tuple: tuple.clone(),
                        });
                    }
                }
            }
        }

        // Condition (C): cardinalities, for every class C ≼* primary — the
        // effective window is the declared one (or the (0,∞) default).
        for r in schema.rels() {
            let roles = schema.roles_of(r);
            for (k, &u) in roles.iter().enumerate() {
                let primary = schema.primary_class(u);
                for cidx in closure.descendants(primary).iter() {
                    let class = ClassId::from_index(cidx);
                    let card = schema.declared_card(class, u);
                    if card == crate::schema::Card::UNCONSTRAINED {
                        continue;
                    }
                    for &ind in &self.class_ext[cidx] {
                        let count = self.participation_count(r, k, ind);
                        if !card.admits(count) {
                            out.push(Violation::Cardinality {
                                class,
                                role: u,
                                ind,
                                count,
                                card,
                            });
                        }
                    }
                }
            }
        }

        // Section 5 extensions.
        for (gi, group) in schema.disjointness_groups().iter().enumerate() {
            for (i, &c1) in group.iter().enumerate() {
                for &c2 in &group[i + 1..] {
                    if let Some(&ind) = self.class_ext[c1.index()]
                        .intersection(&self.class_ext[c2.index()])
                        .next()
                    {
                        out.push(Violation::Disjointness {
                            group: gi,
                            c1,
                            c2,
                            ind,
                        });
                    }
                }
            }
        }
        for (ci, (class, covers)) in schema.coverings().iter().enumerate() {
            for &ind in &self.class_ext[class.index()] {
                if !covers
                    .iter()
                    .any(|&c| self.class_ext[c.index()].contains(&ind))
                {
                    out.push(Violation::Covering {
                        covering: ci,
                        class: *class,
                        ind,
                    });
                }
            }
        }

        out
    }

    /// Whether the interpretation is a model of the schema.
    pub fn is_model_of(&self, schema: &Schema) -> bool {
        self.check(schema).is_empty()
    }
}

impl Interpretation {
    /// Renders the interpretation with schema names (the notation of the
    /// paper's Figure 6: extensions per class, labeled tuples per
    /// relationship).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Interpretation, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let (i, schema) = (self.0, self.1);
                writeln!(f, "Δ = {{e0..e{}}}", i.domain_size.saturating_sub(1))?;
                for c in schema.classes() {
                    let ext: Vec<String> = i
                        .class_extension(c)
                        .iter()
                        .map(|x| format!("e{x}"))
                        .collect();
                    writeln!(f, "{} = {{{}}}", schema.class_name(c), ext.join(", "))?;
                }
                for r in schema.rels() {
                    let tuples: Vec<String> = i
                        .rel_extension(r)
                        .iter()
                        .map(|t| {
                            let parts: Vec<String> = schema
                                .roles_of(r)
                                .iter()
                                .zip(t)
                                .map(|(&u, x)| format!("{}: e{x}", schema.role_name(u)))
                                .collect();
                            format!("⟨{}⟩", parts.join(", "))
                        })
                        .collect();
                    writeln!(f, "{} = {{{}}}", schema.rel_name(r), tuples.join(", "))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

/// A violation of Definition 2.2 (or of a Section 5 extension), reported by
/// [`Interpretation::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Condition (A): `ind ∈ sub` but `ind ∉ sup` despite `sub ≼ sup`.
    Isa {
        /// Declared subclass.
        sub: ClassId,
        /// Declared superclass.
        sup: ClassId,
        /// The offending individual.
        ind: Individual,
    },
    /// A tuple's length differs from its relationship's arity.
    Arity {
        /// The relationship.
        rel: RelId,
        /// The malformed tuple.
        tuple: Tuple,
    },
    /// Condition (B): a tuple filler is not an instance of the role's
    /// primary class.
    Typing {
        /// The relationship.
        rel: RelId,
        /// The role whose filler is mistyped.
        role: RoleId,
        /// The offending tuple.
        tuple: Tuple,
    },
    /// Condition (C): an instance's participation count falls outside its
    /// cardinality window.
    Cardinality {
        /// The constrained class.
        class: ClassId,
        /// The role.
        role: RoleId,
        /// The offending individual.
        ind: Individual,
        /// Its actual participation count.
        count: u64,
        /// The violated window.
        card: crate::schema::Card,
    },
    /// Two classes declared disjoint share an instance.
    Disjointness {
        /// Index of the disjointness group.
        group: usize,
        /// First class.
        c1: ClassId,
        /// Second class.
        c2: ClassId,
        /// The shared individual.
        ind: Individual,
    },
    /// An instance of a covered class belongs to none of the covering
    /// classes.
    Covering {
        /// Index of the covering declaration.
        covering: usize,
        /// The covered class.
        class: ClassId,
        /// The offending individual.
        ind: Individual,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Isa { sub, sup, ind } => {
                write!(
                    f,
                    "individual {ind} is in {sub:?} but not in its superclass {sup:?}"
                )
            }
            Violation::Arity { rel, tuple } => {
                write!(f, "tuple {tuple:?} has wrong arity for {rel:?}")
            }
            Violation::Typing { rel, role, tuple } => {
                write!(f, "tuple {tuple:?} of {rel:?} mistypes role {role:?}")
            }
            Violation::Cardinality {
                class,
                role,
                ind,
                count,
                card,
            } => write!(
                f,
                "individual {ind} of {class:?} fills role {role:?} {count} times, outside {card}"
            ),
            Violation::Disjointness { c1, c2, ind, .. } => {
                write!(
                    f,
                    "individual {ind} is in both disjoint classes {c1:?} and {c2:?}"
                )
            }
            Violation::Covering { class, ind, .. } => {
                write!(f, "individual {ind} of {class:?} is in no covering class")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Card, SchemaBuilder};

    /// Speaker/Talk toy schema: Holds(U1: Speaker (1,∞), U2: Talk (1,1)).
    fn toy() -> (Schema, ClassId, ClassId, RelId) {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let talk = b.class("Talk");
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let (u1, u2) = (b.role(holds, 0), b.role(holds, 1));
        b.card(speaker, u1, Card::at_least(1)).unwrap();
        b.card(talk, u2, Card::exactly(1)).unwrap();
        (b.build().unwrap(), speaker, talk, holds)
    }

    #[test]
    fn empty_interpretation_is_model() {
        let (s, ..) = toy();
        assert!(Interpretation::empty(&s).is_model_of(&s));
    }

    #[test]
    fn valid_model_passes() {
        let (s, speaker, talk, holds) = toy();
        let mut i = Interpretation::empty(&s);
        let sp = i.add_individual();
        let tk = i.add_individual();
        i.add_to_class(speaker, sp);
        i.add_to_class(talk, tk);
        i.add_tuple(holds, vec![sp, tk]);
        assert_eq!(i.check(&s), vec![]);
    }

    #[test]
    fn min_card_violation_detected() {
        let (s, speaker, ..) = toy();
        let mut i = Interpretation::empty(&s);
        let sp = i.add_individual();
        i.add_to_class(speaker, sp);
        // speaker holds no talk: minc 1 violated
        let v = i.check(&s);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Cardinality { count: 0, .. }));
    }

    #[test]
    fn max_card_violation_detected() {
        let (s, speaker, talk, holds) = toy();
        let mut i = Interpretation::empty(&s);
        let sp1 = i.add_individual();
        let sp2 = i.add_individual();
        let tk = i.add_individual();
        i.add_to_class(speaker, sp1);
        i.add_to_class(speaker, sp2);
        i.add_to_class(talk, tk);
        i.add_tuple(holds, vec![sp1, tk]);
        i.add_tuple(holds, vec![sp2, tk]);
        // talk has 2 holders, maxc 1 violated
        let v = i.check(&s);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Cardinality { count: 2, .. })));
    }

    #[test]
    fn typing_violation_detected() {
        let (s, speaker, talk, holds) = toy();
        let mut i = Interpretation::empty(&s);
        let sp = i.add_individual();
        let tk = i.add_individual();
        i.add_to_class(speaker, sp);
        i.add_to_class(talk, tk);
        // swap roles: sp is not a Talk
        i.add_tuple(holds, vec![tk, sp]);
        let v = i.check(&s);
        assert!(v.iter().any(|x| matches!(x, Violation::Typing { .. })));
    }

    #[test]
    fn isa_violation_detected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let sup = b.class("Sup");
        b.isa(a, sup);
        let s = b.build().unwrap();
        let mut i = Interpretation::empty(&s);
        let x = i.add_individual();
        i.add_to_class(a, x);
        let v = i.check(&s);
        assert_eq!(
            v,
            vec![Violation::Isa {
                sub: a,
                sup,
                ind: x
            }]
        );
    }

    #[test]
    fn inherited_card_applies_to_subclass() {
        // Sub ≼ Speaker; a Sub instance holding zero talks violates the
        // refined window declared on Sub itself.
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let talk = b.class("Talk");
        let sub = b.class("Sub");
        b.isa(sub, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let u1 = b.role(holds, 0);
        b.card(sub, u1, Card::at_least(2)).unwrap();
        let s = b.build().unwrap();

        let mut i = Interpretation::empty(&s);
        let x = i.add_individual();
        let t = i.add_individual();
        i.add_to_class(sub, x);
        i.add_to_class(speaker, x);
        i.add_to_class(talk, t);
        i.add_tuple(holds, vec![x, t]);
        let v = i.check(&s);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Cardinality { count: 1, .. })));
    }

    #[test]
    fn disjointness_and_covering_checked() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let p = b.class("P");
        let q = b.class("Q");
        b.disjoint([p, q]).unwrap();
        b.covering(a, [p, q]).unwrap();
        let s = b.build().unwrap();

        let mut i = Interpretation::empty(&s);
        let x = i.add_individual();
        i.add_to_class(a, x);
        // x in A but neither P nor Q: covering violated.
        assert!(i
            .check(&s)
            .iter()
            .any(|v| matches!(v, Violation::Covering { .. })));
        i.add_to_class(p, x);
        assert!(i.is_model_of(&s));
        i.add_to_class(q, x);
        assert!(i
            .check(&s)
            .iter()
            .any(|v| matches!(v, Violation::Disjointness { .. })));
    }

    #[test]
    fn display_renders_figure6_notation() {
        let (s, speaker, talk, holds) = toy();
        let mut i = Interpretation::empty(&s);
        let sp = i.add_individual();
        let tk = i.add_individual();
        i.add_to_class(speaker, sp);
        i.add_to_class(talk, tk);
        i.add_tuple(holds, vec![sp, tk]);
        let text = i.display(&s).to_string();
        assert!(text.contains("Speaker = {e0}"), "{text}");
        assert!(text.contains("Talk = {e1}"), "{text}");
        assert!(text.contains("⟨U1: e0, U2: e1⟩"), "{text}");
    }

    #[test]
    fn duplicate_tuples_collapse() {
        let (s, _, _, holds) = toy();
        let mut i = Interpretation::empty(&s);
        let a = i.add_individual();
        let b2 = i.add_individual();
        assert!(i.add_tuple(holds, vec![a, b2]));
        assert!(!i.add_tuple(holds, vec![a, b2]));
        assert_eq!(i.rel_extension(holds).len(), 1);
    }
}
