//! Exhaustive model search over tiny domains.
//!
//! This is a *test oracle*: on schemas small enough to enumerate, "the
//! reasoner says unsatisfiable" can be cross-checked against "no
//! interpretation up to domain size `k` is a model with the target class
//! populated". It is exponential in every direction and guarded by an
//! explicit candidate budget.

use std::collections::BTreeSet;

use crate::ids::ClassId;
use crate::interp::Interpretation;
use crate::schema::Schema;

/// Result of [`search`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A model with the target class populated (or any model, if no target
    /// was given) was found.
    Model(Interpretation),
    /// No such model exists with domain size up to the given bound.
    NoModelUpTo(usize),
    /// The search space exceeds the candidate budget.
    TooLarge,
}

/// Exhaustively searches for a model of `schema` over domains of size
/// `0..=max_domain` (starting at 1 when `target` is set). At most `budget`
/// candidate interpretations are examined.
pub fn search(
    schema: &Schema,
    target: Option<ClassId>,
    max_domain: usize,
    budget: u64,
) -> SearchOutcome {
    let nc = schema.num_classes();
    if nc > 16 {
        return SearchOutcome::TooLarge;
    }
    let start = usize::from(target.is_some());
    let mut spent: u64 = 0;
    for d in start..=max_domain {
        // Candidate count for this domain size.
        let class_combos = match (1u64 << nc).checked_pow(d as u32) {
            Some(v) => v,
            None => return SearchOutcome::TooLarge,
        };
        let mut tuple_bits: u32 = 0;
        for r in schema.rels() {
            let per_rel = (d as u64).checked_pow(schema.arity(r) as u32);
            match per_rel {
                Some(v) if v <= 24 => tuple_bits += v as u32,
                _ => return SearchOutcome::TooLarge,
            }
        }
        if tuple_bits > 24 {
            return SearchOutcome::TooLarge;
        }
        let total = class_combos.checked_mul(1u64 << tuple_bits);
        match total {
            Some(t) if spent.saturating_add(t) <= budget => spent += t,
            _ => return SearchOutcome::TooLarge,
        }

        if let Some(m) = search_domain(schema, target, d) {
            return SearchOutcome::Model(m);
        }
    }
    SearchOutcome::NoModelUpTo(max_domain)
}

/// All tuples over domain `d` for arity `k`, in lexicographic order.
fn all_tuples(d: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * d);
        for t in &out {
            for v in 0..d {
                let mut t2 = t.clone();
                t2.push(v);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

fn search_domain(schema: &Schema, target: Option<ClassId>, d: usize) -> Option<Interpretation> {
    let nc = schema.num_classes();
    let rel_tuples: Vec<Vec<Vec<usize>>> = schema
        .rels()
        .map(|r| all_tuples(d, schema.arity(r)))
        .collect();

    // Class assignment: one mask per individual.
    let mut class_masks = vec![0u32; d];
    loop {
        // Relationship extents: one subset mask per relationship.
        let mut rel_masks = vec![0u64; rel_tuples.len()];
        loop {
            let interp = materialize(schema, d, &class_masks, &rel_masks, &rel_tuples);
            let populated = target.is_none_or(|t| !interp.class_extension(t).is_empty());
            if populated && interp.is_model_of(schema) {
                return Some(interp);
            }
            if !bump_rel_masks(&mut rel_masks, &rel_tuples) {
                break;
            }
        }
        if !bump_class_masks(&mut class_masks, nc) {
            break;
        }
    }
    None
}

fn bump_class_masks(masks: &mut [u32], nc: usize) -> bool {
    let limit = 1u32 << nc;
    for m in masks.iter_mut() {
        *m += 1;
        if *m < limit {
            return true;
        }
        *m = 0;
    }
    false
}

fn bump_rel_masks(masks: &mut [u64], rel_tuples: &[Vec<Vec<usize>>]) -> bool {
    for (m, tuples) in masks.iter_mut().zip(rel_tuples) {
        *m += 1;
        if *m < (1u64 << tuples.len()) {
            return true;
        }
        *m = 0;
    }
    false
}

fn materialize(
    schema: &Schema,
    d: usize,
    class_masks: &[u32],
    rel_masks: &[u64],
    rel_tuples: &[Vec<Vec<usize>>],
) -> Interpretation {
    let mut class_ext = vec![BTreeSet::new(); schema.num_classes()];
    for (ind, &mask) in class_masks.iter().enumerate() {
        for (c, ext) in class_ext.iter_mut().enumerate() {
            if mask & (1 << c) != 0 {
                ext.insert(ind);
            }
        }
    }
    let mut rel_ext = vec![BTreeSet::new(); schema.num_rels()];
    for (ri, (&mask, tuples)) in rel_masks.iter().zip(rel_tuples).enumerate() {
        for (ti, t) in tuples.iter().enumerate() {
            if mask & (1 << ti) != 0 {
                rel_ext[ri].insert(t.clone());
            }
        }
    }
    Interpretation::from_parts(d, class_ext, rel_ext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Card, SchemaBuilder};

    #[test]
    fn finds_trivial_model() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let s = b.build().unwrap();
        match search(&s, Some(a), 1, 1_000) {
            SearchOutcome::Model(m) => assert!(!m.class_extension(a).is_empty()),
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn empty_model_without_target() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        let s = b.build().unwrap();
        match search(&s, None, 0, 10) {
            SearchOutcome::Model(m) => assert_eq!(m.domain_size(), 0),
            other => panic!("expected empty model, got {other:?}"),
        }
    }

    #[test]
    fn detects_figure1_unsat_within_bound() {
        // Figure 1: minc(C, R, U1) = 2, maxc(D, R, U2) = 1, D ≼ C.
        // No model with C populated exists at any size; verify up to 2.
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        let s = b.build().unwrap();
        assert_eq!(
            search(&s, Some(c), 2, 50_000_000),
            SearchOutcome::NoModelUpTo(2)
        );
    }

    #[test]
    fn budget_respected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        b.relationship("R", [("u", a), ("v", x)]).unwrap();
        let s = b.build().unwrap();
        assert_eq!(search(&s, Some(a), 3, 5), SearchOutcome::TooLarge);
    }

    #[test]
    fn satisfiable_schema_with_cards() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(1)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        let s = b.build().unwrap();
        match search(&s, Some(a), 2, 10_000_000) {
            SearchOutcome::Model(m) => {
                assert!(m.is_model_of(&s));
                assert!(!m.class_extension(a).is_empty());
            }
            other => panic!("expected model, got {other:?}"),
        }
    }
}
