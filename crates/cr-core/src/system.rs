//! The system of linear disequations `Ψ_S` associated with a CR-schema
//! (Section 3.2).
//!
//! Unknowns: one nonnegative variable per consistent compound class and per
//! consistent compound relationship. Rows, per Definition 3.1's derived
//! windows: for every relationship `R`, role `U` at position `k`, and
//! consistent compound class `C̄` containing the role's primary class,
//!
//! * if `minc̄(C̄, R, U) = m > 0`:  `m · Var(C̄) ≤ Σ { Var(R̄) : R̄[U] = C̄ }`
//! * if `maxc̄(C̄, R, U) = n ≠ ∞`:  `n · Var(C̄) ≥ Σ { Var(R̄) : R̄[U] = C̄ }`
//!
//! The system is homogeneous with integer coefficients, exactly as the paper
//! notes — which is what licenses scaling rational solutions to integer
//! ones.
//!
//! Inconsistent compound classes/relationships carry a forced-zero unknown
//! in the paper's presentation; we simply never materialize them. The
//! [`render_verbatim`] helper re-adds those zero rows textually for small
//! schemas, reproducing Figure 5 literally.

use std::fmt;

use cr_linear::{Cmp, LinExpr, LinSystem, VarId, VarKind};
use cr_rational::Rational;

use crate::error::{CrError, CrResult};
use crate::expansion::Expansion;
use crate::ids::RoleId;

/// Where a row of `Ψ_S` came from (provenance for display and debugging).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowOrigin {
    /// `m · Var(C̄) ≤ Σ Var(R̄)` from `minc̄(C̄, R, U) = m`.
    MinCard {
        /// Compound-class index.
        cc: usize,
        /// The role.
        role: RoleId,
        /// The derived minimum.
        min: u64,
    },
    /// `n · Var(C̄) ≥ Σ Var(R̄)` from `maxc̄(C̄, R, U) = n`.
    MaxCard {
        /// Compound-class index.
        cc: usize,
        /// The role.
        role: RoleId,
        /// The derived maximum.
        max: u64,
    },
}

/// `Ψ_S`: the linear system plus the mapping between expansion objects and
/// unknowns, and the dependency relation used by acceptability.
pub struct CrSystem {
    /// The underlying linear system (all unknowns nonnegative).
    pub lin: LinSystem,
    /// Unknown of each consistent compound class (parallel to
    /// [`Expansion::compound_classes`]).
    pub cclass_vars: Vec<VarId>,
    /// Unknown of each consistent compound relationship.
    pub crel_vars: Vec<VarId>,
    /// Provenance per row of `lin`.
    pub origins: Vec<RowOrigin>,
    /// Per compound relationship: the (deduplicated) compound classes it
    /// *depends on* — i.e. assigns to some role (Section 3.3).
    pub deps: Vec<Vec<usize>>,
    /// Per compound class: the compound relationships depending on it.
    pub dependents: Vec<Vec<usize>>,
}

impl CrSystem {
    /// Builds `Ψ_S` from an expansion.
    pub fn build(exp: &Expansion<'_>) -> CrSystem {
        let schema = exp.schema();
        let n_cc = exp.compound_classes().len();
        let n_cr = exp.compound_rels().len();
        let mut lin = LinSystem::new();
        let cclass_vars: Vec<VarId> = (0..n_cc).map(|_| lin.add_var(VarKind::Nonneg)).collect();
        let crel_vars: Vec<VarId> = (0..n_cr).map(|_| lin.add_var(VarKind::Nonneg)).collect();

        // Dependency relation.
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n_cr);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_cc];
        for (ri, crel) in exp.compound_rels().iter().enumerate() {
            let mut d = crel.roles.clone();
            d.sort_unstable();
            d.dedup();
            for &cc in &d {
                dependents[cc].push(ri);
            }
            deps.push(d);
        }

        // Cardinality rows, grouped exactly as in the paper: per
        // relationship, per role, per compound class containing the primary.
        let mut origins = Vec::new();
        for rel in schema.rels() {
            let crels_of_rel = exp.compound_rels_of(rel);
            for (k, &role) in schema.roles_of(rel).iter().enumerate() {
                let primary = schema.primary_class(role);
                for &cc in exp.compound_classes_containing(primary) {
                    let card = exp.derived_card(cc, role);
                    if card.min == 0 && card.max.is_none() {
                        continue;
                    }
                    // Σ { Var(R̄) : R̄[U_k] = C̄ }
                    let mut sum = LinExpr::new();
                    for &ri in crels_of_rel {
                        if exp.compound_rels()[ri].roles[k] == cc {
                            sum.add_term(crel_vars[ri], Rational::one());
                        }
                    }
                    if card.min > 0 {
                        // sum - m·cc >= 0
                        let mut e = sum.clone();
                        e.add_term(cclass_vars[cc], -Rational::from_int(card.min as i64));
                        lin.push(e, Cmp::Ge, Rational::zero());
                        origins.push(RowOrigin::MinCard {
                            cc,
                            role,
                            min: card.min,
                        });
                    }
                    if let Some(max) = card.max {
                        // n·cc - sum >= 0
                        let mut e = sum.negated();
                        e.add_term(cclass_vars[cc], Rational::from_int(max as i64));
                        lin.push(e, Cmp::Ge, Rational::zero());
                        origins.push(RowOrigin::MaxCard { cc, role, max });
                    }
                }
            }
        }

        CrSystem {
            lin,
            cclass_vars,
            crel_vars,
            origins,
            deps,
            dependents,
        }
    }

    /// Number of unknowns (compound classes + compound relationships).
    pub fn num_unknowns(&self) -> usize {
        self.cclass_vars.len() + self.crel_vars.len()
    }

    /// Number of cardinality rows.
    pub fn num_rows(&self) -> usize {
        self.lin.constraints().len()
    }

    /// Renders the system with expansion names (the pruned analogue of
    /// Figure 5; zero rows of inconsistent unknowns are omitted).
    pub fn render(&self, exp: &Expansion<'_>) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for i in 0..exp.compound_classes().len() {
            let _ = writeln!(
                out,
                "  x{} := Var({})  >= 0",
                self.cclass_vars[i].0,
                exp.cclass_name(i)
            );
        }
        for i in 0..exp.compound_rels().len() {
            let _ = writeln!(
                out,
                "  x{} := Var({})  >= 0",
                self.crel_vars[i].0,
                exp.crel_name(i)
            );
        }
        for (row, origin) in self.lin.constraints().iter().zip(&self.origins) {
            let schema = exp.schema();
            match origin {
                RowOrigin::MinCard { cc, role, min } => {
                    let _ = writeln!(
                        out,
                        "  [min {} · {} on {}.{}]  {} {} {}",
                        min,
                        exp.cclass_name(*cc),
                        schema.rel_name(schema.rel_of_role(*role)),
                        schema.role_name(*role),
                        row.expr,
                        row.cmp,
                        row.rhs
                    );
                }
                RowOrigin::MaxCard { cc, role, max } => {
                    let _ = writeln!(
                        out,
                        "  [max {} · {} on {}.{}]  {} {} {}",
                        max,
                        exp.cclass_name(*cc),
                        schema.rel_name(schema.rel_of_role(*role)),
                        schema.role_name(*role),
                        row.expr,
                        row.cmp,
                        row.rhs
                    );
                }
            }
        }
        out
    }
}

impl fmt::Debug for CrSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CrSystem {{ {} compound-class unknowns, {} compound-rel unknowns, {} rows }}",
            self.cclass_vars.len(),
            self.crel_vars.len(),
            self.num_rows()
        )
    }
}

/// Renders the *verbatim* Figure 5 form of `Ψ_S`, including the forced-zero
/// unknowns of inconsistent compound classes and relationships. Exponential
/// in the number of classes, so guarded: schemas with more than
/// `max_classes` classes are rejected.
pub fn render_verbatim(exp: &Expansion<'_>, max_classes: usize) -> CrResult<String> {
    use std::fmt::Write;
    let schema = exp.schema();
    let n = schema.num_classes();
    if n > max_classes || n > 16 {
        return Err(CrError::ExpansionTooLarge {
            what: "verbatim unknowns (2^classes)",
            limit: max_classes,
        });
    }
    let mut out = String::new();
    let subset_name = |mask: u32| {
        let names: Vec<&str> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| schema.class_name(crate::ids::ClassId::from_index(i)))
            .collect();
        format!("{{{}}}", names.join(","))
    };
    // Class unknowns: inconsistent ones pinned to zero.
    for mask in 1u32..(1 << n) {
        let set = crate::bitset::BitSet::from_iter(n, (0..n).filter(|i| mask & (1 << i) != 0));
        if exp.is_consistent(&set) {
            let _ = writeln!(out, "  Var({}) >= 0", subset_name(mask));
        } else {
            let _ = writeln!(out, "  Var({}) = 0", subset_name(mask));
        }
    }
    // Relationship unknowns over all compound-class combinations.
    for rel in schema.rels() {
        let arity = schema.arity(rel);
        let combos = ((1u64 << n) - 1).pow(arity as u32);
        if combos > 100_000 {
            return Err(CrError::ExpansionTooLarge {
                what: "verbatim relationship unknowns",
                limit: 100_000,
            });
        }
        let mut masks = vec![1u32; arity];
        loop {
            // Consistent iff every role's compound class is consistent and
            // contains the primary class.
            let consistent = masks.iter().enumerate().all(|(k, &mask)| {
                let set =
                    crate::bitset::BitSet::from_iter(n, (0..n).filter(|i| mask & (1 << i) != 0));
                let primary = schema.primary_class(schema.roles_of(rel)[k]);
                exp.is_consistent(&set) && set.contains(primary.index())
            });
            let parts: Vec<String> = schema
                .roles_of(rel)
                .iter()
                .zip(&masks)
                .map(|(&u, &m)| format!("{}:{}", schema.role_name(u), subset_name(m)))
                .collect();
            let name = format!("{}⟨{}⟩", schema.rel_name(rel), parts.join(", "));
            if consistent {
                let _ = writeln!(out, "  Var({name}) >= 0");
            } else {
                let _ = writeln!(out, "  Var({name}) = 0");
            }
            // Advance odometer over nonempty masks.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                masks[pos] += 1;
                if masks[pos] < (1 << n) {
                    break;
                }
                masks[pos] = 1;
                pos += 1;
            }
            if pos == arity {
                break;
            }
        }
    }
    // Cardinality rows from the pruned system (identical content).
    let sys = CrSystem::build(exp);
    out.push_str(&sys.render(exp));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{Expansion, ExpansionConfig};
    use crate::schema::{Card, SchemaBuilder};

    fn meeting() -> crate::schema::Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure5_shape() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        // 5 compound classes + 18 compound relationships.
        assert_eq!(sys.cclass_vars.len(), 5);
        assert_eq!(sys.crel_vars.len(), 18);
        assert_eq!(sys.num_unknowns(), 23);
        // Figure 5's cardinality rows (on consistent unknowns):
        //   Holds.U1 min: cc {S},{S,D},{S,T},{S,D,T}      -> 4 rows
        //   Holds.U1 max: cc {S,D},{S,D,T}                -> 2 rows
        //   Holds.U2 min+max: cc {T},{S,T},{S,D,T}        -> 6 rows
        //   Part.U3 min+max: cc {S,D},{S,D,T}             -> 4 rows
        //   Part.U4 min: cc {T},{S,T},{S,D,T}             -> 3 rows
        assert_eq!(sys.num_rows(), 19);
        let mins = sys
            .origins
            .iter()
            .filter(|o| matches!(o, RowOrigin::MinCard { .. }))
            .count();
        assert_eq!(mins, 12);
        // Homogeneous: every RHS is zero.
        assert!(sys.lin.constraints().iter().all(|c| c.rhs.is_zero()));
    }

    #[test]
    fn dependency_relation() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        // Every compound relationship depends on 1..=2 compound classes
        // (its two roles, possibly equal).
        for d in &sys.deps {
            assert!((1..=2).contains(&d.len()));
        }
        // dependents is the exact inverse of deps.
        for (ri, d) in sys.deps.iter().enumerate() {
            for &cc in d {
                assert!(sys.dependents[cc].contains(&ri));
            }
        }
        for (cc, rs) in sys.dependents.iter().enumerate() {
            for &ri in rs {
                assert!(sys.deps[ri].contains(&cc));
            }
        }
    }

    #[test]
    fn render_mentions_names() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let sys = CrSystem::build(&exp);
        let text = sys.render(&exp);
        assert!(text.contains("{Speaker,Discussant}"));
        assert!(text.contains("Holds.U1"));
    }

    #[test]
    fn verbatim_has_49_rel_unknowns_per_binary_rel() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let text = render_verbatim(&exp, 8).unwrap();
        // 7 class unknowns + 49 Holds + 49 Participates = 105 Var lines,
        // exactly the unknown inventory of Figure 5.
        let vars = text
            .lines()
            .filter(|l| l.trim_start().starts_with("Var("))
            .count();
        assert_eq!(vars, 7 + 49 + 49);
        // The paper pins c̄2 = {D} to zero.
        assert!(text.contains("Var({Discussant}) = 0"));
        assert!(text.contains("Var({Speaker}) >= 0"));
    }

    #[test]
    fn verbatim_guard() {
        let mut b = SchemaBuilder::new();
        for i in 0..12 {
            b.class(format!("C{i}"));
        }
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        assert!(render_verbatim(&exp, 8).is_err());
    }
}
