//! The aggregated (marginal) form of `Ψ_S`.
//!
//! In the paper's system every *compound relationship* gets its own unknown,
//! so a binary relationship over candidate sets of size `p` and `q`
//! contributes `p·q` unknowns — the product blow-up that dominates
//! Section 3.2. But those unknowns only ever appear in **group sums**
//! `Σ { Var(R̄) : R̄[U_k] = C̄ }`: the system never inspects an individual
//! `Var(R̄)`. The vector of group sums per role is exactly the **marginal**
//! of the (nonnegative) tensor of compound-relationship counts, and a
//! nonnegative tensor with prescribed per-axis marginals exists **iff** the
//! marginals have equal totals (the classical transportation-polytope
//! argument, integral by greedy filling). So `Ψ_S` is equivalent to a
//! system over
//!
//! * one unknown per consistent compound class (as before), and
//! * one unknown `S(R, U_k, C̄)` per relationship role and candidate
//!   compound class, with `K−1` equality rows per relationship tying the
//!   role totals together,
//!
//! which is *linear* in the number of compound classes per role instead of
//! multiplicative across roles. Acceptability transfers both ways: lifting
//! sums a direct solution (zero stays zero), and projecting fills the
//! tensor greedily using only positive marginals, so a reconstructed
//! compound relationship is positive only when every compound class it
//! depends on is.
//!
//! The [`Reasoner`](crate::sat::Reasoner) solves this form by default and
//! converts witnesses back to per-compound-relationship counts via
//! [`fill_tensor`]; the direct form remains available for the paper-verbatim
//! rendering, the Theorem 3.4 oracle, and cross-validation tests.

use cr_bigint::BigInt;
use cr_linear::{Cmp, LinExpr, LinSystem, Solution, VarId, VarKind};
use cr_rational::Rational;

use crate::budget::Budget;
use crate::error::CrResult;
use crate::expansion::Expansion;

/// The aggregated system: class unknowns plus per-(relationship, role,
/// compound-class) marginal unknowns.
pub struct AggSystem {
    /// The underlying linear system (all unknowns nonnegative).
    pub lin: LinSystem,
    /// Unknown per consistent compound class.
    pub cclass_vars: Vec<VarId>,
    /// `role_aggs[rel][k]` lists `(compound class index, marginal unknown)`
    /// for role position `k` of relationship `rel`; empty when the
    /// relationship is dead (some role has no candidate compound class).
    pub role_aggs: Vec<Vec<Vec<(usize, VarId)>>>,
}

impl AggSystem {
    /// Builds the aggregated system from an expansion (compound
    /// relationships need not be materialized: only the per-role candidate
    /// lists are consulted).
    pub fn build(exp: &Expansion<'_>) -> AggSystem {
        let schema = exp.schema();
        let n_cc = exp.compound_classes().len();
        let mut lin = LinSystem::new();
        let cclass_vars: Vec<VarId> = (0..n_cc).map(|_| lin.add_var(VarKind::Nonneg)).collect();

        let mut role_aggs: Vec<Vec<Vec<(usize, VarId)>>> = Vec::with_capacity(schema.num_rels());
        for rel in schema.rels() {
            let candidate_sets: Vec<&[usize]> = schema
                .roles_of(rel)
                .iter()
                .map(|&u| exp.compound_classes_containing(schema.primary_class(u)))
                .collect();
            let dead = candidate_sets.iter().any(|c| c.is_empty());
            let mut per_role = Vec::with_capacity(candidate_sets.len());
            if !dead {
                for cands in &candidate_sets {
                    per_role.push(
                        cands
                            .iter()
                            .map(|&cc| (cc, lin.add_var(VarKind::Nonneg)))
                            .collect::<Vec<_>>(),
                    );
                }
            }
            role_aggs.push(per_role);
        }

        // Cardinality rows per (rel, role, candidate compound class).
        for rel in schema.rels() {
            let aggs = &role_aggs[rel.index()];
            for (k, &role) in schema.roles_of(rel).iter().enumerate() {
                let primary = schema.primary_class(role);
                for &cc in exp.compound_classes_containing(primary) {
                    let card = exp.derived_card(cc, role);
                    let s_var = aggs
                        .get(k)
                        .and_then(|list| list.iter().find(|(c, _)| *c == cc))
                        .map(|(_, v)| *v);
                    if card.min > 0 {
                        // S - m·C >= 0 (S absent for dead relationships:
                        // the group sum is zero, forcing C to zero).
                        let mut e = LinExpr::new();
                        if let Some(s) = s_var {
                            e.add_term(s, Rational::one());
                        }
                        e.add_term(cclass_vars[cc], -Rational::from_int(card.min as i64));
                        lin.push(e, Cmp::Ge, Rational::zero());
                    }
                    if let Some(max) = card.max {
                        if let Some(s) = s_var {
                            // n·C - S >= 0; trivially true when S is absent.
                            let mut e = LinExpr::from_terms([]);
                            e.add_term(cclass_vars[cc], Rational::from_int(max as i64));
                            e.add_term(s, -Rational::one());
                            lin.push(e, Cmp::Ge, Rational::zero());
                        }
                    }
                }
            }
        }

        // Marginal-total equality rows: role 0's total equals every other
        // role's total.
        for rel in schema.rels() {
            let aggs = &role_aggs[rel.index()];
            if aggs.is_empty() {
                continue;
            }
            for k in 1..aggs.len() {
                let mut e = LinExpr::new();
                for &(_, v) in &aggs[0] {
                    e.add_term(v, Rational::one());
                }
                for &(_, v) in &aggs[k] {
                    e.add_term(v, -Rational::one());
                }
                lin.push(e, Cmp::Eq, Rational::zero());
            }
        }

        AggSystem {
            lin,
            cclass_vars,
            role_aggs,
        }
    }

    /// Number of unknowns.
    pub fn num_unknowns(&self) -> usize {
        self.lin.num_vars()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.lin.constraints().len()
    }

    /// The system restricted to supports inside `alive`, optionally with
    /// one compound class required at `>= 1`.
    fn restrict(&self, alive: &[bool], target: Option<usize>) -> LinSystem {
        let mut lin = self.lin.clone();
        for (cc, &a) in alive.iter().enumerate() {
            if !a {
                lin.push(
                    LinExpr::var(self.cclass_vars[cc]),
                    Cmp::Eq,
                    Rational::zero(),
                );
            }
        }
        for rel in &self.role_aggs {
            for role in rel {
                for &(cc, v) in role {
                    if !alive[cc] {
                        lin.push(LinExpr::var(v), Cmp::Eq, Rational::zero());
                    }
                }
            }
        }
        if let Some(cc) = target {
            lin.push(LinExpr::var(self.cclass_vars[cc]), Cmp::Ge, Rational::one());
        }
        lin
    }
}

/// An integer solution of the aggregated system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggSolution {
    /// Count per consistent compound class.
    pub cclass_counts: Vec<BigInt>,
    /// `marginals[rel][k]` — `(compound class, count)` per role position.
    pub marginals: Vec<Vec<Vec<(usize, BigInt)>>>,
}

/// Computes the maximal acceptable support and a witness over the
/// aggregated system (same greatest-fixpoint argument as
/// [`crate::sat::fixpoint`], with marginal unknowns playing the dependent
/// role).
pub fn maximal_support_agg(sys: &AggSystem) -> (Vec<bool>, Option<AggSolution>) {
    maximal_support_agg_governed(sys, &Budget::unlimited())
        .expect("the unlimited budget cannot be exceeded")
}

/// [`maximal_support_agg`] under a resource [`Budget`] — fixpoint passes
/// and their LP pivots are charged to [`Stage::Fixpoint`](crate::budget::Stage::Fixpoint).
pub fn maximal_support_agg_governed(
    sys: &AggSystem,
    budget: &Budget,
) -> CrResult<(Vec<bool>, Option<AggSolution>)> {
    maximal_support_agg_resumed(sys, budget, None)
}

/// [`maximal_support_agg_governed`] seeded with a checkpointed fixpoint
/// frontier (see [`crate::Budget::offer_frontier`]); `None` starts from
/// scratch.
pub fn maximal_support_agg_resumed(
    sys: &AggSystem,
    budget: &Budget,
    initial: Option<&[bool]>,
) -> CrResult<(Vec<bool>, Option<AggSolution>)> {
    let n_cc = sys.cclass_vars.len();
    let (alive, values) = crate::sat::fixpoint::support_by_max_lp(
        n_cc,
        &sys.cclass_vars,
        budget,
        initial,
        |alive| sys.restrict(alive, None),
    )?;
    let Some(values) = values else {
        return Ok((alive, None));
    };
    let (ints, _factor) = Solution::new(values).scale_to_integers();
    let witness = AggSolution {
        cclass_counts: sys
            .cclass_vars
            .iter()
            .map(|v| ints[v.index()].clone())
            .collect(),
        marginals: sys
            .role_aggs
            .iter()
            .map(|rel| {
                rel.iter()
                    .map(|role| {
                        role.iter()
                            .map(|&(cc, v)| (cc, ints[v.index()].clone()))
                            .collect()
                    })
                    .collect()
            })
            .collect(),
    };
    Ok((alive, Some(witness)))
}

/// Re-solves the converged system for a **minimum-norm** witness over the
/// given support: minimize the sum of all unknowns subject to every alive
/// compound-class count being at least one.
///
/// The fixpoint's own witness is whatever vertex the support-maximizing LP
/// happened to converge at — it routinely sits *on* upper cardinality
/// boundaries (`S = max·C` exactly), which makes it useless for the delta
/// fast path: the first max-tightening edit invalidates it and forces a
/// fresh LP. The minimum-norm witness instead hugs the *lower* boundaries,
/// leaving every upper window with slack proportional to its width, so a
/// stream of max-tightening edits (the common incremental edit) keeps
/// re-validating it by pure evaluation. Min-tightening edits may still
/// land on it and fall back to the seeded descent — correct, just not
/// zero-LP.
///
/// Costs one LP; callers invoke it only when snapshotting state for reuse
/// ([`Reasoner::reusable_state`](crate::sat::Reasoner::reusable_state)),
/// never on the plain check path. Returns `None` when the support is empty
/// or the re-solve fails (callers then keep the original witness).
pub fn harden_witness(sys: &AggSystem, alive: &[bool]) -> Option<AggSolution> {
    use cr_linear::{optimize_governed, Direction, OptOutcome};

    if alive.iter().all(|&a| !a) {
        return None;
    }
    let mut lin = sys.restrict(alive, None);
    let mut objective = LinExpr::new();
    for v in 0..lin.num_vars() {
        objective.add_term(VarId(v as u32), Rational::one());
    }
    for (cc, &a) in alive.iter().enumerate() {
        if a {
            lin.push(LinExpr::var(sys.cclass_vars[cc]), Cmp::Ge, Rational::one());
        }
    }
    let budget = Budget::unlimited();
    let outcome = optimize_governed(
        &lin,
        &objective,
        Direction::Minimize,
        &budget.stage(crate::budget::Stage::Fixpoint),
    )
    .ok()?;
    let OptOutcome::Optimal { solution, .. } = outcome else {
        return None;
    };
    let (ints, _factor) = Solution::new(solution.values().to_vec()).scale_to_integers();
    Some(AggSolution {
        cclass_counts: sys
            .cclass_vars
            .iter()
            .map(|v| ints[v.index()].clone())
            .collect(),
        marginals: sys
            .role_aggs
            .iter()
            .map(|rel| {
                rel.iter()
                    .map(|role| {
                        role.iter()
                            .map(|&(cc, v)| (cc, ints[v.index()].clone()))
                            .collect()
                    })
                    .collect()
            })
            .collect(),
    })
}

/// Greedily fills a `K`-axis nonnegative integer tensor with the given
/// per-axis marginals (all axes must total the same), returning its sparse
/// nonzero entries as `(role filler per axis, count)`.
///
/// The classical northwest-corner argument: repeatedly take the first
/// still-positive entry on each axis and emit their minimum; each step
/// exhausts at least one entry, so at most `Σ_k len(axis_k)` entries are
/// produced and every marginal is met exactly. Only positive marginals are
/// touched, which is what preserves acceptability on projection.
pub fn fill_tensor(marginals: &[Vec<(usize, BigInt)>]) -> Vec<(Vec<usize>, BigInt)> {
    let k = marginals.len();
    let mut remaining: Vec<Vec<(usize, BigInt)>> = marginals
        .iter()
        .map(|axis| {
            axis.iter()
                .filter(|(_, c)| c.is_positive())
                .cloned()
                .collect()
        })
        .collect();
    let mut heads = vec![0usize; k];
    let mut out = Vec::new();
    loop {
        // Advance heads past exhausted entries.
        for (axis, head) in remaining.iter().zip(heads.iter_mut()) {
            while *head < axis.len() && axis[*head].1.is_zero() {
                *head += 1;
            }
        }
        if heads
            .iter()
            .zip(&remaining)
            .any(|(&h, axis)| h >= axis.len())
        {
            debug_assert!(
                heads
                    .iter()
                    .zip(&remaining)
                    .all(|(&h, axis)| h >= axis.len()),
                "axis totals must be equal"
            );
            return out;
        }
        let step = heads
            .iter()
            .zip(&remaining)
            .map(|(&h, axis)| axis[h].1.clone())
            .min()
            .expect("k >= 2 axes");
        let coords: Vec<usize> = heads
            .iter()
            .zip(&remaining)
            .map(|(&h, axis)| axis[h].0)
            .collect();
        for (axis, &h) in remaining.iter_mut().zip(&heads) {
            axis[h].1 = &axis[h].1 - &step;
        }
        out.push((coords, step));
    }
}

/// Expands an aggregated witness into per-compound-relationship counts,
/// parallel to [`Expansion::compound_rels`]. Requires the expansion to have
/// its compound relationships materialized.
pub fn expand_to_crel_counts(exp: &Expansion<'_>, agg: &AggSolution) -> Vec<BigInt> {
    let schema = exp.schema();
    let mut counts = vec![BigInt::zero(); exp.compound_rels().len()];
    for rel in schema.rels() {
        let marginals = &agg.marginals[rel.index()];
        if marginals.is_empty() {
            continue;
        }
        // The expansion enumerates compound relationships in odometer order
        // over the (ascending) per-role candidate lists, role 0 fastest —
        // recover each filled tensor cell's index arithmetically.
        let candidates: Vec<&[usize]> = schema
            .roles_of(rel)
            .iter()
            .map(|&u| exp.compound_classes_containing(schema.primary_class(u)))
            .collect();
        let local_index = |coords: &[usize]| -> usize {
            let mut idx = 0;
            let mut stride = 1;
            for (cands, &cc) in candidates.iter().zip(coords) {
                let pos = cands
                    .binary_search(&cc)
                    .expect("filled coordinate is a candidate compound class");
                idx += pos * stride;
                stride *= cands.len();
            }
            idx
        };
        let rel_crels = exp.compound_rels_of(rel);
        for (coords, count) in fill_tensor(marginals) {
            let global = rel_crels[local_index(&coords)];
            debug_assert_eq!(exp.compound_rels()[global].roles, coords);
            counts[global] = count;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::ExpansionConfig;
    use crate::schema::{Card, SchemaBuilder};
    use crate::system::CrSystem;

    fn meeting() -> crate::schema::Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn aggregated_is_much_smaller() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let direct = CrSystem::build(&exp);
        let agg = AggSystem::build(&exp);
        // Direct: 5 + 18 unknowns. Aggregated: 5 + (4+3) + (2+3) = 17,
        // and for larger schemas the gap is multiplicative.
        assert_eq!(direct.num_unknowns(), 23);
        assert_eq!(agg.num_unknowns(), 17);
    }

    #[test]
    fn agg_support_matches_direct_support() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let direct = CrSystem::build(&exp);
        let agg = AggSystem::build(&exp);
        let (sup_d, _) = crate::sat::fixpoint::maximal_acceptable_support(&direct);
        let (sup_a, wit_a) = maximal_support_agg(&agg);
        assert_eq!(sup_d, sup_a);
        assert!(wit_a.is_some());
    }

    #[test]
    fn expanded_witness_verifies_against_direct_system() {
        let schema = meeting();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let direct = CrSystem::build(&exp);
        let agg = AggSystem::build(&exp);
        let (_, wit) = maximal_support_agg(&agg);
        let wit = wit.unwrap();
        let crel_counts = expand_to_crel_counts(&exp, &wit);
        let sol = crate::sat::AcceptableSolution {
            cclass_counts: wit.cclass_counts.clone(),
            crel_counts,
        };
        assert!(
            sol.verify(&direct),
            "projected aggregated witness must satisfy the paper's system"
        );
    }

    #[test]
    fn fill_tensor_balances() {
        let b = |v: i64| BigInt::from(v);
        let marginals = vec![vec![(0, b(3)), (1, b(2))], vec![(5, b(1)), (6, b(4))]];
        let filled = fill_tensor(&marginals);
        let total: BigInt = filled.iter().map(|(_, c)| c.clone()).sum();
        assert_eq!(total, b(5));
        // Marginals reconstructed exactly.
        let mut axis0 = [BigInt::zero(), BigInt::zero()];
        for (coords, c) in &filled {
            axis0[coords[0]] += c;
        }
        assert_eq!(axis0, [b(3), b(2)]);
        // Sparse: at most len(a)+len(b) entries.
        assert!(filled.len() <= 4);
    }

    #[test]
    fn fill_tensor_three_axes() {
        let b = |v: i64| BigInt::from(v);
        let marginals = vec![
            vec![(0, b(2)), (1, b(3))],
            vec![(0, b(5))],
            vec![(2, b(1)), (3, b(1)), (4, b(3))],
        ];
        let filled = fill_tensor(&marginals);
        let total: BigInt = filled.iter().map(|(_, c)| c.clone()).sum();
        assert_eq!(total, b(5));
        for (coords, _) in &filled {
            assert_eq!(coords.len(), 3);
        }
    }

    #[test]
    fn fill_tensor_skips_zero_marginals() {
        let b = |v: i64| BigInt::from(v);
        let marginals = vec![vec![(0, b(0)), (1, b(2))], vec![(9, b(2)), (10, b(0))]];
        let filled = fill_tensor(&marginals);
        assert_eq!(filled, vec![(vec![1, 9], b(2))]);
    }

    #[test]
    fn dead_relationship_kills_demanding_classes() {
        // Disjointness empties the candidate set of one role; a class with
        // a positive minimum on the other role must die.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let p = b.class("P");
        let q = b.class("Q");
        // X's only consistent compound class would be {X, P, Q}, killed by
        // disjointness below.
        let x = b.class("X");
        b.isa(x, p);
        b.isa(x, q);
        b.disjoint([p, q]).unwrap();
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::at_least(1)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let agg = AggSystem::build(&exp);
        let (alive, _) = maximal_support_agg(&agg);
        for &cc in exp.compound_classes_containing(a) {
            assert!(!alive[cc], "A needs tuples into an empty class");
        }
        for &cc in exp.compound_classes_containing(p) {
            let set = &exp.compound_classes()[cc];
            // Compound classes containing A die with A; only A-free,
            // Q-free atoms of P are unconstrained survivors.
            if !set.contains(q.index()) && !set.contains(a.index()) {
                assert!(alive[cc], "plain P survives");
            }
        }
    }
}
