//! CR schemas: classes, relationships with named roles, ISA statements,
//! cardinality constraints, and the Section 5 extensions (disjointness and
//! covering constraints).

mod builder;
mod canon;

pub use builder::SchemaBuilder;
pub use canon::{canonical_form, canonical_hash, canonical_text_hash};

use std::fmt;

use crate::ids::{ClassId, RelId, RoleId};

/// A cardinality window `(min, max)`; `max == None` means `∞`.
///
/// Per Definition 2.1 the default for an unconstrained participation is
/// `(0, ∞)` — see [`Card::UNCONSTRAINED`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Card {
    /// Minimum number of participations.
    pub min: u64,
    /// Maximum number of participations (`None` = unbounded).
    pub max: Option<u64>,
}

impl Card {
    /// The default `(0, ∞)` window.
    pub const UNCONSTRAINED: Card = Card { min: 0, max: None };

    /// Builds `(min, max)`.
    pub fn new(min: u64, max: Option<u64>) -> Card {
        Card { min, max }
    }

    /// Builds `(min, ∞)`.
    pub fn at_least(min: u64) -> Card {
        Card { min, max: None }
    }

    /// Builds `(0, max)`.
    pub fn at_most(max: u64) -> Card {
        Card {
            min: 0,
            max: Some(max),
        }
    }

    /// Builds the exact window `(n, n)`.
    pub fn exactly(n: u64) -> Card {
        Card {
            min: n,
            max: Some(n),
        }
    }

    /// Whether a participation count satisfies the window.
    pub fn admits(&self, count: u64) -> bool {
        count >= self.min && self.max.is_none_or(|m| count <= m)
    }

    /// The tightest window implied by both `self` and `other`
    /// (componentwise max of mins, min of maxes) — Definition 3.1.
    pub fn tighten(&self, other: &Card) -> Card {
        Card {
            min: self.min.max(other.min),
            max: match (self.max, other.max) {
                (None, m) | (m, None) => m,
                (Some(a), Some(b)) => Some(a.min(b)),
            },
        }
    }

    /// Whether the window admits no count at all (`min > max`).
    pub fn is_empty_window(&self) -> bool {
        self.max.is_some_and(|m| self.min > m)
    }
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "({},{})", self.min, m),
            None => write!(f, "({},∞)", self.min),
        }
    }
}

/// A declared cardinality constraint `minc/maxc(class, rel, role)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CardDecl {
    /// The constrained class (an ISA-descendant of the role's primary
    /// class).
    pub class: ClassId,
    /// The role (determines the relationship).
    pub role: RoleId,
    /// The declared window.
    pub card: Card,
}

pub(crate) struct ClassDecl {
    pub(crate) name: String,
}

pub(crate) struct RoleDecl {
    pub(crate) name: String,
    pub(crate) rel: RelId,
    pub(crate) primary: ClassId,
}

pub(crate) struct RelDecl {
    pub(crate) name: String,
    pub(crate) roles: Vec<RoleId>,
}

/// A validated CR schema.
///
/// Built with [`SchemaBuilder`]; immutable afterwards. All reasoning
/// entry points take a `&Schema`.
pub struct Schema {
    pub(crate) classes: Vec<ClassDecl>,
    pub(crate) rels: Vec<RelDecl>,
    pub(crate) roles: Vec<RoleDecl>,
    /// Declared ISA statements `(sub, sup)`.
    pub(crate) isa: Vec<(ClassId, ClassId)>,
    /// Declared cardinality constraints.
    pub(crate) cards: Vec<CardDecl>,
    /// Section 5 extension: each group's classes are pairwise disjoint.
    pub(crate) disjointness: Vec<Vec<ClassId>>,
    /// Section 5 extension: `(c, covers)` asserts `c ⊆ covers_1 ∪ …`.
    pub(crate) coverings: Vec<(ClassId, Vec<ClassId>)>,
}

impl Schema {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of relationships.
    pub fn num_rels(&self) -> usize {
        self.rels.len()
    }

    /// Number of roles across all relationships.
    pub fn num_roles(&self) -> usize {
        self.roles.len()
    }

    /// Iterates over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// Iterates over all relationship ids.
    pub fn rels(&self) -> impl Iterator<Item = RelId> {
        (0..self.rels.len()).map(RelId::from_index)
    }

    /// The name of a class.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c.index()].name
    }

    /// The name of a relationship.
    pub fn rel_name(&self, r: RelId) -> &str {
        &self.rels[r.index()].name
    }

    /// The name of a role.
    pub fn role_name(&self, u: RoleId) -> &str {
        &self.roles[u.index()].name
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::from_index)
    }

    /// Looks a relationship up by name.
    pub fn rel_by_name(&self, name: &str) -> Option<RelId> {
        self.rels
            .iter()
            .position(|r| r.name == name)
            .map(RelId::from_index)
    }

    /// Looks a role of `rel` up by name.
    pub fn role_by_name(&self, rel: RelId, name: &str) -> Option<RoleId> {
        self.rels[rel.index()]
            .roles
            .iter()
            .copied()
            .find(|&u| self.roles[u.index()].name == name)
    }

    /// The roles of a relationship, in declaration order.
    pub fn roles_of(&self, r: RelId) -> &[RoleId] {
        &self.rels[r.index()].roles
    }

    /// The arity of a relationship.
    pub fn arity(&self, r: RelId) -> usize {
        self.rels[r.index()].roles.len()
    }

    /// The relationship a role belongs to.
    pub fn rel_of_role(&self, u: RoleId) -> RelId {
        self.roles[u.index()].rel
    }

    /// The primary class of a role.
    pub fn primary_class(&self, u: RoleId) -> ClassId {
        self.roles[u.index()].primary
    }

    /// The position of a role within its relationship.
    pub fn role_position(&self, u: RoleId) -> usize {
        let rel = self.rel_of_role(u);
        self.rels[rel.index()]
            .roles
            .iter()
            .position(|&x| x == u)
            .expect("role belongs to its relationship")
    }

    /// Declared ISA statements `(sub, sup)`, in declaration order.
    pub fn isa_statements(&self) -> &[(ClassId, ClassId)] {
        &self.isa
    }

    /// Declared cardinality constraints, in declaration order.
    pub fn card_declarations(&self) -> &[CardDecl] {
        &self.cards
    }

    /// The *declared* cardinality window for `(class, role)`, or the
    /// `(0, ∞)` default if none was declared. This does **not** fold in
    /// windows inherited from superclasses — that is Definition 3.1's job,
    /// performed on compound classes by the expansion.
    pub fn declared_card(&self, class: ClassId, role: RoleId) -> Card {
        self.cards
            .iter()
            .find(|d| d.class == class && d.role == role)
            .map(|d| d.card)
            .unwrap_or(Card::UNCONSTRAINED)
    }

    /// Disjointness groups (Section 5 extension).
    pub fn disjointness_groups(&self) -> &[Vec<ClassId>] {
        &self.disjointness
    }

    /// Covering constraints (Section 5 extension).
    pub fn coverings(&self) -> &[(ClassId, Vec<ClassId>)] {
        &self.coverings
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Schema {{")?;
        for c in self.classes() {
            writeln!(f, "  class {}", self.class_name(c))?;
        }
        for (sub, sup) in &self.isa {
            writeln!(f, "  {} ≼ {}", self.class_name(*sub), self.class_name(*sup))?;
        }
        for r in self.rels() {
            let roles: Vec<String> = self
                .roles_of(r)
                .iter()
                .map(|&u| {
                    format!(
                        "{}: {}",
                        self.role_name(u),
                        self.class_name(self.primary_class(u))
                    )
                })
                .collect();
            writeln!(f, "  rel {} ⟨{}⟩", self.rel_name(r), roles.join(", "))?;
        }
        for d in &self.cards {
            writeln!(
                f,
                "  card {} in {}.{}: {}",
                self.class_name(d.class),
                self.rel_name(self.rel_of_role(d.role)),
                self.role_name(d.role),
                d.card
            )?;
        }
        for g in &self.disjointness {
            let names: Vec<&str> = g.iter().map(|&c| self.class_name(c)).collect();
            writeln!(f, "  disjoint {{{}}}", names.join(", "))?;
        }
        for (c, cov) in &self.coverings {
            let names: Vec<&str> = cov.iter().map(|&c| self.class_name(c)).collect();
            writeln!(f, "  cover {} ≼ {}", self.class_name(*c), names.join(" ∪ "))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_admits() {
        let c = Card::new(1, Some(3));
        assert!(!c.admits(0));
        assert!(c.admits(1) && c.admits(3));
        assert!(!c.admits(4));
        assert!(Card::UNCONSTRAINED.admits(0));
        assert!(Card::UNCONSTRAINED.admits(u64::MAX));
    }

    #[test]
    fn card_tighten() {
        let a = Card::new(1, None);
        let b = Card::new(0, Some(2));
        assert_eq!(a.tighten(&b), Card::new(1, Some(2)));
        assert_eq!(b.tighten(&a), Card::new(1, Some(2)));
        assert_eq!(
            Card::new(3, Some(5)).tighten(&Card::new(1, Some(2))),
            Card::new(3, Some(2))
        );
    }

    #[test]
    fn card_empty_window() {
        assert!(Card::new(3, Some(2)).is_empty_window());
        assert!(!Card::new(3, Some(3)).is_empty_window());
        assert!(!Card::at_least(100).is_empty_window());
    }

    #[test]
    fn card_display() {
        assert_eq!(Card::new(1, Some(2)).to_string(), "(1,2)");
        assert_eq!(Card::at_least(1).to_string(), "(1,∞)");
    }
}
