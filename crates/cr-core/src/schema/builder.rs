//! Incremental construction and validation of [`Schema`]s.

use crate::error::{CrError, CrResult};
use crate::ids::{ClassId, RelId, RoleId};
use crate::isa::IsaClosure;
use crate::schema::{Card, CardDecl, ClassDecl, RelDecl, RoleDecl, Schema};

/// Builds a [`Schema`] incrementally; [`SchemaBuilder::build`] validates the
/// whole declaration set.
///
/// Validation enforces the well-formedness rules of Definition 2.1:
/// relationship arity at least 2, role names unique per relationship, and
/// cardinality constraints `card(C, R.U)` only for classes `C ≼* C_U`
/// (ISA-descendants of the role's primary class, the *refinement* rule).
#[derive(Default)]
pub struct SchemaBuilder {
    classes: Vec<ClassDecl>,
    rels: Vec<RelDecl>,
    roles: Vec<RoleDecl>,
    isa: Vec<(ClassId, ClassId)>,
    cards: Vec<CardDecl>,
    disjointness: Vec<Vec<ClassId>>,
    coverings: Vec<(ClassId, Vec<ClassId>)>,
}

impl SchemaBuilder {
    /// A builder with no declarations.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// A builder pre-populated with the *structure* of an existing schema —
    /// classes and relationships with their roles, but none of the
    /// constraints (ISA, cardinalities, disjointness, coverings). Returns
    /// the builder together with the class and role id mappings (both are
    /// dense and order-preserving, so `classes[c.index()]` and
    /// `roles[u.index()]` translate old ids).
    ///
    /// Used by the implication and explanation machinery, which replay a
    /// schema with constraints added or removed.
    pub fn copy_structure(schema: &Schema) -> (SchemaBuilder, Vec<ClassId>, Vec<RoleId>) {
        let mut b = SchemaBuilder::new();
        let classes: Vec<ClassId> = schema
            .classes()
            .map(|c| b.class(schema.class_name(c)))
            .collect();
        let mut roles = Vec::with_capacity(schema.num_roles());
        for r in schema.rels() {
            let decl: Vec<(String, ClassId)> = schema
                .roles_of(r)
                .iter()
                .map(|&u| {
                    (
                        schema.role_name(u).to_string(),
                        classes[schema.primary_class(u).index()],
                    )
                })
                .collect();
            let rel = b
                .relationship(
                    schema.rel_name(r),
                    decl.iter().map(|(n, c)| (n.as_str(), *c)),
                )
                .expect("roles validated in the source schema");
            for k in 0..schema.arity(r) {
                roles.push(b.role(rel, k));
            }
        }
        (b, classes, roles)
    }

    /// Declares a class.
    pub fn class(&mut self, name: impl Into<String>) -> ClassId {
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(ClassDecl { name: name.into() });
        id
    }

    /// Declares a relationship with its roles `(role_name, primary_class)`.
    ///
    /// Fails immediately if the arity is below 2 or a role name repeats.
    pub fn relationship<'a>(
        &mut self,
        name: impl Into<String>,
        roles: impl IntoIterator<Item = (&'a str, ClassId)>,
    ) -> CrResult<RelId> {
        let name = name.into();
        let rel_id = RelId::from_index(self.rels.len());
        let mut role_ids = Vec::new();
        let mut seen = Vec::new();
        for (role_name, primary) in roles {
            if seen.contains(&role_name) {
                return Err(CrError::DuplicateRole {
                    rel: name,
                    role: role_name.to_string(),
                });
            }
            seen.push(role_name);
            self.check_class(primary)?;
            let role_id = RoleId::from_index(self.roles.len());
            self.roles.push(RoleDecl {
                name: role_name.to_string(),
                rel: rel_id,
                primary,
            });
            role_ids.push(role_id);
        }
        if role_ids.len() < 2 {
            return Err(CrError::ArityTooSmall {
                rel: name,
                arity: role_ids.len(),
            });
        }
        self.rels.push(RelDecl {
            name,
            roles: role_ids,
        });
        Ok(rel_id)
    }

    /// The role at `position` of `rel` (panics if out of range).
    pub fn role(&self, rel: RelId, position: usize) -> RoleId {
        self.rels[rel.index()].roles[position]
    }

    /// Declares `sub ≼ sup`.
    pub fn isa(&mut self, sub: ClassId, sup: ClassId) {
        self.isa.push((sub, sup));
    }

    /// Declares a cardinality constraint for `(class, role)`.
    ///
    /// Duplicate `(class, role)` declarations are rejected immediately; the
    /// `class ≼* primary` refinement condition is checked at
    /// [`build`](Self::build) time because ISA statements may still be
    /// added.
    pub fn card(&mut self, class: ClassId, role: RoleId, card: Card) -> CrResult<()> {
        self.check_class(class)?;
        if role.index() >= self.roles.len() {
            return Err(CrError::InvalidId { what: "role" });
        }
        if self
            .cards
            .iter()
            .any(|d| d.class == class && d.role == role)
        {
            return Err(CrError::DuplicateCard { class, role });
        }
        self.cards.push(CardDecl { class, role, card });
        Ok(())
    }

    /// Declares a group of pairwise disjoint classes (Section 5 extension).
    pub fn disjoint(&mut self, classes: impl IntoIterator<Item = ClassId>) -> CrResult<()> {
        let classes: Vec<ClassId> = classes.into_iter().collect();
        if classes.len() < 2 {
            return Err(CrError::DegenerateConstraint {
                what: "disjointness group with fewer than two classes",
            });
        }
        for &c in &classes {
            self.check_class(c)?;
        }
        self.disjointness.push(classes);
        Ok(())
    }

    /// Declares the covering `class ⊆ covers_1 ∪ … ∪ covers_n` (Section 5
    /// extension).
    pub fn covering(
        &mut self,
        class: ClassId,
        covers: impl IntoIterator<Item = ClassId>,
    ) -> CrResult<()> {
        let covers: Vec<ClassId> = covers.into_iter().collect();
        if covers.is_empty() {
            return Err(CrError::DegenerateConstraint {
                what: "covering with no covering classes",
            });
        }
        self.check_class(class)?;
        for &c in &covers {
            self.check_class(c)?;
        }
        self.coverings.push((class, covers));
        Ok(())
    }

    /// Validates all declarations and produces the immutable [`Schema`].
    pub fn build(self) -> CrResult<Schema> {
        // Unique class / relationship names.
        for (i, c) in self.classes.iter().enumerate() {
            if self.classes[..i].iter().any(|d| d.name == c.name) {
                return Err(CrError::DuplicateName {
                    name: c.name.clone(),
                });
            }
        }
        for (i, r) in self.rels.iter().enumerate() {
            if self.rels[..i].iter().any(|d| d.name == r.name) {
                return Err(CrError::DuplicateName {
                    name: r.name.clone(),
                });
            }
        }
        for &(sub, sup) in &self.isa {
            if sub.index() >= self.classes.len() || sup.index() >= self.classes.len() {
                return Err(CrError::InvalidId { what: "isa class" });
            }
        }

        let schema = Schema {
            classes: self.classes,
            rels: self.rels,
            roles: self.roles,
            isa: self.isa,
            cards: self.cards,
            disjointness: self.disjointness,
            coverings: self.coverings,
        };

        // Refinement rule: card(C, R.U) requires C ≼* primary(U).
        let closure = IsaClosure::compute(&schema);
        for d in &schema.cards {
            if !closure.is_subclass_of(d.class, schema.primary_class(d.role)) {
                return Err(CrError::CardOnNonSubclass {
                    class: d.class,
                    role: d.role,
                });
            }
        }
        Ok(schema)
    }

    fn check_class(&self, c: ClassId) -> CrResult<()> {
        if c.index() >= self.classes.len() {
            return Err(CrError::InvalidId { what: "class" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_valid_schema() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        let schema = b.build().unwrap();
        assert_eq!(schema.num_classes(), 2);
        assert_eq!(schema.arity(r), 2);
        assert_eq!(schema.class_name(a), "A");
        assert_eq!(schema.primary_class(schema.roles_of(r)[1]), x);
    }

    #[test]
    fn rejects_unary_relationship() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let err = b.relationship("R", [("u", a)]).unwrap_err();
        assert!(matches!(err, CrError::ArityTooSmall { arity: 1, .. }));
    }

    #[test]
    fn rejects_duplicate_role_names() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let err = b.relationship("R", [("u", a), ("u", a)]).unwrap_err();
        assert!(matches!(err, CrError::DuplicateRole { .. }));
    }

    #[test]
    fn rejects_duplicate_class_names() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("A");
        assert!(matches!(b.build(), Err(CrError::DuplicateName { .. })));
    }

    #[test]
    fn rejects_card_on_unrelated_class() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", a)]).unwrap();
        let u = b.role(r, 0);
        b.card(x, u, Card::at_least(1)).unwrap();
        assert!(matches!(b.build(), Err(CrError::CardOnNonSubclass { .. })));
    }

    #[test]
    fn accepts_card_via_isa_chain() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let m = b.class("M");
        let x = b.class("X");
        b.isa(x, m);
        b.isa(m, a);
        let r = b.relationship("R", [("u", a), ("v", a)]).unwrap();
        let u = b.role(r, 0);
        b.card(x, u, Card::exactly(1)).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_duplicate_card() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let r = b.relationship("R", [("u", a), ("v", a)]).unwrap();
        let u = b.role(r, 0);
        b.card(a, u, Card::at_least(1)).unwrap();
        let err = b.card(a, u, Card::at_least(2)).unwrap_err();
        assert!(matches!(err, CrError::DuplicateCard { .. }));
    }

    #[test]
    fn rejects_degenerate_extensions() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        assert!(b.disjoint([a]).is_err());
        assert!(b.covering(a, []).is_err());
    }

    #[test]
    fn name_lookups() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        let schema = b.build().unwrap();
        assert_eq!(schema.class_by_name("X"), Some(x));
        assert_eq!(schema.class_by_name("nope"), None);
        assert_eq!(schema.rel_by_name("R"), Some(r));
        let u = schema.role_by_name(r, "v").unwrap();
        assert_eq!(schema.role_name(u), "v");
        assert_eq!(schema.role_position(u), 1);
        assert_eq!(schema.rel_of_role(u), r);
    }
}
