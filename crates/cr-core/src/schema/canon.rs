//! Canonical content form and hash of a [`Schema`].
//!
//! Two schemas that differ only in declaration order (of classes, ISA
//! statements, relationships, roles within a relationship, cardinality
//! declarations, disjointness groups, or coverings) or in DSL surface
//! syntax (whitespace, comments, inline-vs-standalone `isa`) describe the
//! same set of constraints, so a verdict cache must give them the same key.
//! [`canonical_form`] renders a schema as a deterministic, order-insensitive
//! text; [`canonical_hash`] is a 128-bit FNV-1a over that text.
//!
//! Guarantees, property-tested in `tests/hash.rs`:
//!
//! * **Reorder invariance.** Permuting declarations (and roles within a
//!   relationship — roles are matched by name, not position) leaves the
//!   canonical form, and hence the hash, unchanged.
//! * **Round-trip stability.** Pretty-printing (`cr_lang::print_schema`,
//!   canonical or not) and reparsing yields the same hash.
//! * **Hash inequality implies schema inequality.** Equal schemas have
//!   equal canonical forms by construction, so differing hashes certify
//!   differing constraint sets. (The converse — equal hashes implying equal
//!   schemas — holds only up to 128-bit collisions; correctness-critical
//!   consumers such as the `cr-server` verdict cache key on the full
//!   canonical form and use the hash for sharding and display.)
//!
//! The canonical form orders everything by *name*: classes sorted, ISA
//! pairs sorted and deduplicated, relationships sorted with their roles
//! sorted by role name, and so on. Names are length-prefixed when hashed
//! via the rendered text's quoting-free grammar: every line is
//! `kind<TAB>field<TAB>field…<NL>`, and schema names cannot contain tabs or
//! newlines (the DSL lexer admits only identifier characters), so the
//! rendering is injective on validated schemas.

use super::Schema;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming 128-bit FNV-1a.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Renders the order-insensitive canonical form of `schema`.
///
/// One declaration per line, lines sorted within each section, sections in
/// a fixed order. The result is independent of declaration order and is
/// the authoritative cache key for schema-level verdicts.
pub fn canonical_form(schema: &Schema) -> String {
    // Infallible: the failpoint can panic or delay (corrupting a cache key
    // is *not* on the menu) but not error.
    cr_faults::point!("core.canon");
    let mut out = String::with_capacity(256);

    let mut classes: Vec<&str> = schema.classes().map(|c| schema.class_name(c)).collect();
    classes.sort_unstable();
    for name in classes {
        out.push_str("class\t");
        out.push_str(name);
        out.push('\n');
    }

    let mut isa: Vec<(&str, &str)> = schema
        .isa_statements()
        .iter()
        .map(|&(sub, sup)| (schema.class_name(sub), schema.class_name(sup)))
        .collect();
    isa.sort_unstable();
    isa.dedup();
    for (sub, sup) in isa {
        out.push_str("isa\t");
        out.push_str(sub);
        out.push('\t');
        out.push_str(sup);
        out.push('\n');
    }

    let mut rels: Vec<String> = schema
        .rels()
        .map(|r| {
            let mut roles: Vec<String> = schema
                .roles_of(r)
                .iter()
                .map(|&u| {
                    format!(
                        "{}\t{}",
                        schema.role_name(u),
                        schema.class_name(schema.primary_class(u))
                    )
                })
                .collect();
            roles.sort_unstable();
            format!("rel\t{}\t{}\n", schema.rel_name(r), roles.join("\t"))
        })
        .collect();
    rels.sort_unstable();
    for line in rels {
        out.push_str(&line);
    }

    let mut cards: Vec<String> = schema
        .card_declarations()
        .iter()
        .map(|d| {
            let max = match d.card.max {
                Some(m) => m.to_string(),
                None => "*".to_string(),
            };
            format!(
                "card\t{}\t{}\t{}\t{}\t{}\n",
                schema.class_name(d.class),
                schema.rel_name(schema.rel_of_role(d.role)),
                schema.role_name(d.role),
                d.card.min,
                max
            )
        })
        .collect();
    cards.sort_unstable();
    for line in cards {
        out.push_str(&line);
    }

    let mut groups: Vec<String> = schema
        .disjointness_groups()
        .iter()
        .map(|g| {
            let mut names: Vec<&str> = g.iter().map(|&c| schema.class_name(c)).collect();
            names.sort_unstable();
            names.dedup();
            format!("disjoint\t{}\n", names.join("\t"))
        })
        .collect();
    groups.sort_unstable();
    groups.dedup();
    for line in groups {
        out.push_str(&line);
    }

    let mut covers: Vec<String> = schema
        .coverings()
        .iter()
        .map(|(c, covers)| {
            let mut names: Vec<&str> = covers.iter().map(|&k| schema.class_name(k)).collect();
            names.sort_unstable();
            names.dedup();
            format!("cover\t{}\t{}\n", schema.class_name(*c), names.join("\t"))
        })
        .collect();
    covers.sort_unstable();
    covers.dedup();
    for line in covers {
        out.push_str(&line);
    }

    out
}

/// The 128-bit canonical content hash of `schema`: FNV-1a over
/// [`canonical_form`]. Stable across processes and releases (the canonical
/// form is part of the cache-key contract).
pub fn canonical_hash(schema: &Schema) -> u128 {
    fnv1a_128(canonical_form(schema).as_bytes())
}

/// The hash of an already-rendered canonical form. By construction
/// `canonical_text_hash(&canonical_form(s)) == canonical_hash(s)` — the
/// persistence layer uses this to recompute shard hashes from stored
/// canonical text without re-parsing a schema.
pub fn canonical_text_hash(canonical: &str) -> u128 {
    fnv1a_128(canonical.as_bytes())
}

impl Schema {
    /// The order-insensitive canonical rendering (see [`canonical_form`]).
    pub fn canonical_form(&self) -> String {
        canonical_form(self)
    }

    /// The 128-bit canonical content hash (see [`canonical_hash`]).
    pub fn canonical_hash(&self) -> u128 {
        canonical_hash(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Card, SchemaBuilder};

    fn meeting(reordered: bool) -> Schema {
        let mut b = SchemaBuilder::new();
        // Same declarations, two different interleavings.
        if reordered {
            let talk = b.class("Talk");
            let speaker = b.class("Speaker");
            let discussant = b.class("Discussant");
            b.isa(discussant, speaker);
            let holds = b
                .relationship("Holds", [("U2", talk), ("U1", speaker)])
                .unwrap();
            let (u2, u1) = (b.role(holds, 0), b.role(holds, 1));
            b.card(talk, u2, Card::exactly(1)).unwrap();
            b.card(speaker, u1, Card::at_least(1)).unwrap();
            b.card(discussant, u1, Card::new(0, Some(2))).unwrap();
            b.build().unwrap()
        } else {
            let speaker = b.class("Speaker");
            let discussant = b.class("Discussant");
            let talk = b.class("Talk");
            b.isa(discussant, speaker);
            let holds = b
                .relationship("Holds", [("U1", speaker), ("U2", talk)])
                .unwrap();
            let (u1, u2) = (b.role(holds, 0), b.role(holds, 1));
            b.card(speaker, u1, Card::at_least(1)).unwrap();
            b.card(discussant, u1, Card::new(0, Some(2))).unwrap();
            b.card(talk, u2, Card::exactly(1)).unwrap();
            b.build().unwrap()
        }
    }

    #[test]
    fn reordered_declarations_hash_equal() {
        let a = meeting(false);
        let b = meeting(true);
        assert_eq!(a.canonical_form(), b.canonical_form());
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn constraint_changes_change_the_hash() {
        let a = meeting(false);
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let (u1, u2) = (b.role(holds, 0), b.role(holds, 1));
        b.card(speaker, u1, Card::at_least(2)).unwrap(); // 1 → 2
        b.card(discussant, u1, Card::new(0, Some(2))).unwrap();
        b.card(talk, u2, Card::exactly(1)).unwrap();
        let changed = b.build().unwrap();
        assert_ne!(a.canonical_hash(), changed.canonical_hash());
    }

    #[test]
    fn duplicate_isa_and_groups_are_deduped() {
        let mut b = SchemaBuilder::new();
        let x = b.class("X");
        let y = b.class("Y");
        b.isa(x, y);
        b.isa(x, y);
        let r = b.relationship("R", [("u", x), ("v", y)]).unwrap();
        let _ = r;
        let a = b.build().unwrap();

        let mut b = SchemaBuilder::new();
        let x = b.class("X");
        let y = b.class("Y");
        b.isa(x, y);
        b.relationship("R", [("u", x), ("v", y)]).unwrap();
        let once = b.build().unwrap();
        assert_eq!(a.canonical_hash(), once.canonical_hash());
    }

    #[test]
    fn fnv_vector() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(fnv1a_128(b""), FNV_OFFSET);
        // And hashing is sensitive to every byte.
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
    }

    /// The service layer shares schemas, budgets, and cancellation tokens
    /// across worker threads; keep the whole bundle `Send + Sync` by
    /// construction. (Compile-time audit — the test body is trivial.)
    #[test]
    fn core_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Schema>();
        assert_send_sync::<crate::Budget>();
        assert_send_sync::<crate::CancelToken>();
        assert_send_sync::<crate::ManualClock>();
        assert_send_sync::<cr_trace::Tracer>();
        assert_send_sync::<crate::CrError>();
    }
}
