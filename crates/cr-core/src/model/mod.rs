//! Constructing a finite model from an acceptable solution (the
//! constructive content of Theorem 3.3).
//!
//! Given an acceptable integer solution of `Ψ_S`, we materialize a database
//! state with exactly `X(C̄)` individuals per compound class and `X(R̄)`
//! *distinct* labeled tuples per compound relationship, spreading role
//! fillers so evenly that every cardinality window is met:
//!
//! 1. **Scaling.** Distinct tuples require `X(R̄) ≤ Π_k X(C̄_k)`. The system
//!    is a homogeneous cone, so any positive multiple of a solution is a
//!    solution; we scale by the least `α` with
//!    `α·X(R̄) ≤ α²·(two largest role counts)` for every compound
//!    relationship (distinctness only needs one role *pair* to differ).
//! 2. **Balanced fillers.** Per group `(C̄, R, role)` a rotating cursor
//!    round-robins fillers across all compound relationships of the group,
//!    so the combined per-individual participation count is
//!    `⌊total/N⌋ / ⌈total/N⌉` — inside the derived window because `Ψ_S`
//!    bounds the group total by `minc̄·N` and `maxc̄·N`.
//! 3. **Distinctness.** For the chosen role pair the per-crel filler counts
//!    form near-uniform bipartite degree sequences with
//!    `T ≤ N_a·N_b`; a Gale–Ryser greedy realizes them as a simple
//!    bipartite graph, whose edges become the tuples' pair fillers.
//!
//! The result is **verified** against the independent Definition 2.2
//! checker before being returned; on the (never observed) failure the
//! solution is doubled and construction retried a few times — documented in
//! DESIGN.md as the constructive+verified deviation from the paper's
//! existence argument.

use std::collections::HashMap;

use cr_bigint::BigInt;

use crate::error::{CrError, CrResult};
use crate::expansion::Expansion;
use crate::ids::ClassId;
use crate::interp::Interpretation;
use crate::sat::{AcceptableSolution, Reasoner};

/// Size budget for model construction.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Maximum number of individuals.
    pub max_individuals: u64,
    /// Maximum total number of tuples.
    pub max_tuples: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_individuals: 1_000_000,
            max_tuples: 4_000_000,
        }
    }
}

impl Reasoner<'_> {
    /// Builds a verified finite model populating every satisfiable class
    /// (from the maximal-support witness). `None` when no class is
    /// satisfiable — the empty interpretation is then the only model shape,
    /// available via [`Interpretation::empty`].
    pub fn construct_model(&self, config: &ModelConfig) -> CrResult<Option<Interpretation>> {
        let tracer = self.tracer();
        let _span = tracer.span(crate::budget::Stage::Model.as_str());
        match self.witness() {
            None => Ok(None),
            Some(w) => {
                let interp = construct_model(self.expansion(), w, config)?;
                tracer.add(
                    cr_trace::Counter::ModelIndividuals,
                    interp.domain_size() as u64,
                );
                let tuples: usize = self
                    .schema()
                    .rels()
                    .map(|r| interp.rel_extension(r).len())
                    .sum();
                tracer.add(cr_trace::Counter::ModelTuples, tuples as u64);
                Ok(Some(interp))
            }
        }
    }
}

/// Builds a verified finite model realizing (a scaled multiple of)
/// `solution`.
pub fn construct_model(
    exp: &Expansion<'_>,
    solution: &AcceptableSolution,
    config: &ModelConfig,
) -> CrResult<Interpretation> {
    cr_faults::point!("core.model.build", |_| Err(CrError::FaultInjected {
        site: "core.model.build"
    }));
    let mut scaled = solution.clone();
    let alpha = required_scaling(exp, solution);
    if !alpha.is_one() {
        scale(&mut scaled, &alpha);
    }
    for attempt in 0..4 {
        let interp = materialize(exp, &scaled, config)?;
        let violations = interp.check(exp.schema());
        if violations.is_empty() {
            return Ok(interp);
        }
        debug_assert!(
            false,
            "constructed model failed verification (attempt {attempt}): {violations:?}"
        );
        scale(&mut scaled, &BigInt::from(2));
    }
    // Unreachable by the construction argument; surface as a budget error
    // rather than returning an invalid model.
    Err(CrError::ModelTooLarge {
        limit: config.max_individuals,
    })
}

fn scale(sol: &mut AcceptableSolution, alpha: &BigInt) {
    for v in sol.cclass_counts.iter_mut() {
        *v = &*v * alpha;
    }
    for v in sol.crel_counts.iter_mut() {
        *v = &*v * alpha;
    }
}

/// Least `α >= 1` making `α·T <= (α·N_a)(α·N_b)` hold for every compound
/// relationship, where `N_a, N_b` are the two largest role counts.
fn required_scaling(exp: &Expansion<'_>, sol: &AcceptableSolution) -> BigInt {
    let mut alpha = BigInt::one();
    for (ri, crel) in exp.compound_rels().iter().enumerate() {
        let t = &sol.crel_counts[ri];
        if !t.is_positive() {
            continue;
        }
        let mut counts: Vec<&BigInt> = crel
            .roles
            .iter()
            .map(|&cc| &sol.cclass_counts[cc])
            .collect();
        counts.sort();
        let (na, nb) = (counts[counts.len() - 1], counts[counts.len() - 2]);
        let prod = na * nb;
        // ceil(t / prod)
        let (q, r) = t.div_rem(&prod);
        let need = if r.is_zero() { q } else { q + BigInt::one() };
        if need > alpha {
            alpha = need;
        }
    }
    alpha
}

fn to_u64(v: &BigInt, limit: u64) -> CrResult<u64> {
    v.to_u64()
        .filter(|&x| x <= limit)
        .ok_or(CrError::ModelTooLarge { limit })
}

fn materialize(
    exp: &Expansion<'_>,
    sol: &AcceptableSolution,
    config: &ModelConfig,
) -> CrResult<Interpretation> {
    let schema = exp.schema();
    let n_cc = exp.compound_classes().len();

    // Individuals per compound class, as contiguous ranges.
    let mut counts = Vec::with_capacity(n_cc);
    let mut total: u64 = 0;
    for v in &sol.cclass_counts {
        let c = to_u64(v, config.max_individuals)?;
        total = total
            .checked_add(c)
            .filter(|&t| t <= config.max_individuals)
            .ok_or(CrError::ModelTooLarge {
                limit: config.max_individuals,
            })?;
        counts.push(c as usize);
    }
    let mut starts = Vec::with_capacity(n_cc);
    let mut interp = Interpretation::empty(schema);
    for (cc, &count) in counts.iter().enumerate() {
        let start = interp.domain_size();
        starts.push(start);
        for _ in 0..count {
            let ind = interp.add_individual();
            for class in exp.compound_classes()[cc].iter() {
                interp.add_to_class(ClassId::from_index(class), ind);
            }
        }
    }

    // Rotating cursor per (compound class, relationship, role position).
    let mut cursors: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut tuple_budget = config.max_tuples;

    for (ri, crel) in exp.compound_rels().iter().enumerate() {
        let t = to_u64(&sol.crel_counts[ri], config.max_tuples)?;
        if t == 0 {
            continue;
        }
        tuple_budget = tuple_budget.checked_sub(t).ok_or(CrError::ModelTooLarge {
            limit: config.max_tuples,
        })?;
        let t = t as usize;
        let arity = crel.roles.len();

        // Choose the distinctness pair: the two positions with the largest
        // compound-class counts.
        let mut order: Vec<usize> = (0..arity).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(counts[crel.roles[k]]));
        let (pa, pb) = (order[0], order[1]);
        let (na, nb) = (counts[crel.roles[pa]], counts[crel.roles[pb]]);
        debug_assert!(t <= na * nb, "scaling must guarantee t <= na*nb");

        // Cursor-offset balanced degrees for the pair, then Gale-Ryser.
        let da = take_degrees(&mut cursors, (crel.roles[pa], crel.rel.index(), pa), na, t);
        let db = take_degrees(&mut cursors, (crel.roles[pb], crel.rel.index(), pb), nb, t);
        let edges = realize_bipartite(&da, &db);
        debug_assert_eq!(edges.len(), t);

        // Round-robin fillers for the remaining roles.
        let mut others: Vec<(usize, usize, usize)> = Vec::new(); // (pos, n, cursor)
        for &k in &order[2..] {
            let n = counts[crel.roles[k]];
            let key = (crel.roles[k], crel.rel.index(), k);
            let cur = cursors.entry(key).or_insert(0);
            others.push((k, n, *cur));
            *cur = (*cur + t) % n;
        }

        for (ti, &(ea, eb)) in edges.iter().enumerate() {
            let mut tuple = vec![0usize; arity];
            tuple[pa] = starts[crel.roles[pa]] + ea;
            tuple[pb] = starts[crel.roles[pb]] + eb;
            for &(k, n, cur) in &others {
                tuple[k] = starts[crel.roles[k]] + (cur + ti) % n;
            }
            let fresh = interp.add_tuple(crel.rel, tuple);
            debug_assert!(fresh, "pair distinctness must make tuples unique");
        }
    }
    Ok(interp)
}

/// The per-vertex counts of a length-`t` round-robin window over `n`
/// vertices starting at the group's cursor; advances the cursor.
fn take_degrees(
    cursors: &mut HashMap<(usize, usize, usize), usize>,
    key: (usize, usize, usize),
    n: usize,
    t: usize,
) -> Vec<usize> {
    let cur = cursors.entry(key).or_insert(0);
    let mut deg = vec![t / n; n];
    for off in 0..(t % n) {
        deg[(*cur + off) % n] += 1;
    }
    *cur = (*cur + t) % n;
    deg
}

/// Gale–Ryser greedy: realizes bipartite degree sequences `(da, db)` as a
/// simple bipartite graph. Both sequences here are near-uniform with equal
/// sums `t <= |da|·|db|`, which satisfies the Gale–Ryser dominance
/// condition, so the greedy always succeeds.
fn realize_bipartite(da: &[usize], db: &[usize]) -> Vec<(usize, usize)> {
    let mut remaining: Vec<(usize, usize)> = db.iter().copied().enumerate().collect();
    let mut left: Vec<usize> = (0..da.len()).collect();
    // Process left vertices in non-increasing degree order.
    left.sort_by_key(|&i| std::cmp::Reverse(da[i]));
    let mut edges = Vec::with_capacity(da.iter().sum());
    for &i in &left {
        let d = da[i];
        if d == 0 {
            continue;
        }
        // Connect to the d right vertices with the largest remaining degree.
        remaining.sort_by_key(|&(j, rem)| (std::cmp::Reverse(rem), j));
        assert!(
            remaining.len() >= d && remaining[d - 1].1 > 0,
            "bipartite degree sequence not realizable (t > na*nb?)"
        );
        for slot in remaining.iter_mut().take(d) {
            edges.push((i, slot.0));
            slot.1 -= 1;
        }
    }
    debug_assert!(remaining.iter().all(|&(_, r)| r == 0));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::Reasoner;
    use crate::schema::{Card, Schema, SchemaBuilder};

    fn build_and_verify(schema: &Schema) -> Interpretation {
        let r = Reasoner::new(schema).unwrap();
        let m = r
            .construct_model(&ModelConfig::default())
            .unwrap()
            .expect("satisfiable schema");
        assert!(m.is_model_of(schema), "violations: {:?}", m.check(schema));
        m
    }

    #[test]
    fn meeting_schema_model() {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        let schema = b.build().unwrap();
        let m = build_and_verify(&schema);
        // Figure 6's model populates speakers, discussants and talks.
        assert!(!m.class_extension(speaker).is_empty());
        assert!(!m.class_extension(discussant).is_empty());
        assert!(!m.class_extension(talk).is_empty());
    }

    #[test]
    fn exact_window_forcing_scaling() {
        // One X, every A holds exactly 2 of it: with a single X individual
        // distinct pairs run out, so the construction must scale.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        let schema = b.build().unwrap();
        build_and_verify(&schema);
    }

    #[test]
    fn ternary_relationship_model() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let y = b.class("Y");
        let r = b.relationship("R", [("u", a), ("v", x), ("w", y)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(3)).unwrap();
        b.card(x, b.role(r, 1), Card::new(1, Some(2))).unwrap();
        b.card(y, b.role(r, 2), Card::at_least(1)).unwrap();
        let schema = b.build().unwrap();
        build_and_verify(&schema);
    }

    #[test]
    fn self_relationship_model() {
        // Both roles typed by the same class: distinct pairs over the same
        // range.
        let mut b = SchemaBuilder::new();
        let p = b.class("Person");
        let r = b.relationship("Knows", [("who", p), ("whom", p)]).unwrap();
        b.card(p, b.role(r, 0), Card::exactly(2)).unwrap();
        b.card(p, b.role(r, 1), Card::exactly(2)).unwrap();
        let schema = b.build().unwrap();
        build_and_verify(&schema);
    }

    #[test]
    fn refinement_model() {
        // Subclass refines the superclass window; the model must honor both.
        let mut b = SchemaBuilder::new();
        let s = b.class("S");
        let sub = b.class("Sub");
        let t = b.class("T");
        b.isa(sub, s);
        let r = b.relationship("R", [("u", s), ("v", t)]).unwrap();
        b.card(s, b.role(r, 0), Card::new(1, Some(5))).unwrap();
        b.card(sub, b.role(r, 0), Card::new(2, Some(2))).unwrap();
        b.card(t, b.role(r, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        build_and_verify(&schema);
    }

    #[test]
    fn unsat_schema_yields_none() {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        let schema = b.build().unwrap();
        let reasoner = Reasoner::new(&schema).unwrap();
        assert!(reasoner
            .construct_model(&ModelConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn gale_ryser_realizes_balanced_sequences() {
        let edges = realize_bipartite(&[2, 2, 2], &[3, 3]);
        assert_eq!(edges.len(), 6);
        let mut seen = edges.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "edges must be distinct");
    }

    #[test]
    fn gale_ryser_with_offsets() {
        // Unbalanced-but-near-uniform degrees as produced by cursors.
        let da = [1, 2, 2];
        let db = [2, 2, 1];
        let edges = realize_bipartite(&da, &db);
        assert_eq!(edges.len(), 5);
        let mut la = [0usize; 3];
        let mut lb = [0usize; 3];
        for &(i, j) in &edges {
            la[i] += 1;
            lb[j] += 1;
        }
        assert_eq!(la, da);
        assert_eq!(lb, db);
        let mut uniq = edges.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), edges.len());
    }

    #[test]
    fn budget_enforced() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let reasoner = Reasoner::new(&schema).unwrap();
        let tiny = ModelConfig {
            max_individuals: 0,
            max_tuples: 0,
        };
        assert!(matches!(
            reasoner.construct_model(&tiny),
            Err(CrError::ModelTooLarge { .. })
        ));
    }
}
