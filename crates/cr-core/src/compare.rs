//! Schema subsumption and equivalence.
//!
//! Two schemas over the same signature (classes, relationships, roles,
//! matched by name) can be compared semantically with the Section 4
//! implication machinery: `A` **subsumes** `B` when every declared
//! constraint of `B` is finitely implied by `A` — every finite model of `A`
//! is then a model of `B` — and the schemas are **equivalent** when they
//! subsume each other. This is the design-tool question "did my edit
//! actually change the schema's meaning, or only its presentation?": adding
//! a constraint the schema already implied (say, the Figure 7 inferences)
//! yields an equivalent schema.

use crate::error::{CrError, CrResult};
use crate::expansion::ExpansionConfig;
use crate::ids::{ClassId, RoleId};
use crate::implication::{implies_maxc, implies_minc};
use crate::sat::Reasoner;
use crate::schema::Schema;

/// Outcome of a one-directional subsumption check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsumptionReport {
    /// Constraints of the target schema *not* implied by the source,
    /// rendered human-readably. Empty iff subsumption holds.
    pub failing: Vec<String>,
}

impl SubsumptionReport {
    /// Whether every target constraint was implied.
    pub fn holds(&self) -> bool {
        self.failing.is_empty()
    }
}

/// Maps `b`'s ids onto `a`'s through names; errors if the signatures
/// differ (class set, relationship set, role names/positions, or role
/// typing).
fn signature_map(a: &Schema, b: &Schema) -> CrResult<(Vec<ClassId>, Vec<RoleId>)> {
    let mismatch = |what: &'static str| CrError::SignatureMismatch { what };
    if a.num_classes() != b.num_classes() || a.num_rels() != b.num_rels() {
        return Err(mismatch("class or relationship count"));
    }
    let mut class_map = Vec::with_capacity(b.num_classes());
    for c in b.classes() {
        class_map.push(
            a.class_by_name(b.class_name(c))
                .ok_or(mismatch("class name"))?,
        );
    }
    let mut role_map = vec![RoleId::from_index(0); b.num_roles()];
    for rb in b.rels() {
        let ra = a
            .rel_by_name(b.rel_name(rb))
            .ok_or(mismatch("relationship name"))?;
        if a.arity(ra) != b.arity(rb) {
            return Err(mismatch("relationship arity"));
        }
        for (k, &ub) in b.roles_of(rb).iter().enumerate() {
            let ua = a
                .role_by_name(ra, b.role_name(ub))
                .ok_or(mismatch("role name"))?;
            if a.role_position(ua) != k {
                return Err(mismatch("role position"));
            }
            if a.class_name(a.primary_class(ua)) != b.class_name(b.primary_class(ub)) {
                return Err(mismatch("role primary class"));
            }
            role_map[ub.index()] = ua;
        }
    }
    Ok((class_map, role_map))
}

/// Checks whether `a` subsumes `b`: every declared constraint of `b` holds
/// in every finite model of `a`.
pub fn subsumes(a: &Schema, b: &Schema, config: &ExpansionConfig) -> CrResult<SubsumptionReport> {
    let (class_map, role_map) = signature_map(a, b)?;
    let reasoner = Reasoner::with_config(a, config)?;
    let mut failing = Vec::new();

    for &(sub, sup) in b.isa_statements() {
        if !reasoner.implies_isa(class_map[sub.index()], class_map[sup.index()]) {
            failing.push(format!("{} ≼ {}", b.class_name(sub), b.class_name(sup)));
        }
    }
    for d in b.card_declarations() {
        let class = class_map[d.class.index()];
        let role = role_map[d.role.index()];
        if d.card.min > 0 && !implies_minc(a, class, role, d.card.min, config)? {
            failing.push(format!(
                "minc({}, {}.{}) = {}",
                b.class_name(d.class),
                b.rel_name(b.rel_of_role(d.role)),
                b.role_name(d.role),
                d.card.min
            ));
        }
        if let Some(max) = d.card.max {
            if !implies_maxc(a, class, role, max, config)? {
                failing.push(format!(
                    "maxc({}, {}.{}) = {}",
                    b.class_name(d.class),
                    b.rel_name(b.rel_of_role(d.role)),
                    b.role_name(d.role),
                    max
                ));
            }
        }
    }
    for group in b.disjointness_groups() {
        for (i, &c1) in group.iter().enumerate() {
            for &c2 in &group[i + 1..] {
                if !reasoner.implies_disjoint(class_map[c1.index()], class_map[c2.index()]) {
                    failing.push(format!(
                        "disjoint({}, {})",
                        b.class_name(c1),
                        b.class_name(c2)
                    ));
                }
            }
        }
    }
    for (c, covers) in b.coverings() {
        let mapped: Vec<ClassId> = covers.iter().map(|k| class_map[k.index()]).collect();
        if !reasoner.implies_covering(class_map[c.index()], &mapped) {
            let names: Vec<&str> = covers.iter().map(|&k| b.class_name(k)).collect();
            failing.push(format!(
                "cover {} ≼ {}",
                b.class_name(*c),
                names.join(" ∪ ")
            ));
        }
    }
    Ok(SubsumptionReport { failing })
}

/// Whether the two schemas have exactly the same finite models (mutual
/// subsumption over a shared signature).
pub fn equivalent(a: &Schema, b: &Schema, config: &ExpansionConfig) -> CrResult<bool> {
    Ok(subsumes(a, b, config)?.holds() && subsumes(b, a, config)?.holds())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meeting() -> Schema {
        use crate::schema::{Card, SchemaBuilder};
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        b.build().unwrap()
    }

    /// The meeting schema with the Figure 7 inferences *declared*: same
    /// finite models, so the schemas must be equivalent.
    fn meeting_tightened() -> Schema {
        use crate::schema::{Card, SchemaBuilder};
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        b.isa(speaker, discussant); // Figure 7: implied, now declared
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        // Figure 7: maxc(Speaker, Holds, U1) = 1, now declared.
        b.card(speaker, b.role(holds, 0), Card::new(1, Some(1)))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        // Figure 7: maxc(Talk, Participates, U4) = 1, now declared.
        b.card(talk, b.role(participates, 1), Card::new(1, Some(1)))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn declaring_implied_constraints_preserves_equivalence() {
        let a = meeting();
        let b = meeting_tightened();
        let config = ExpansionConfig::default();
        // The tightened schema is subsumed trivially; the interesting
        // direction is that the original already implies every tightening.
        assert!(subsumes(&a, &b, &config).unwrap().holds());
        assert!(subsumes(&b, &a, &config).unwrap().holds());
        assert!(equivalent(&a, &b, &config).unwrap());
    }

    #[test]
    fn genuinely_stronger_schema_is_not_subsumed() {
        use crate::schema::{Card, SchemaBuilder};
        let a = meeting();
        // Strengthen: every discussant participates in *two* talks.
        let mut bb = SchemaBuilder::new();
        let speaker = bb.class("Speaker");
        let discussant = bb.class("Discussant");
        let talk = bb.class("Talk");
        bb.isa(discussant, speaker);
        let holds = bb
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = bb
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        bb.card(speaker, bb.role(holds, 0), Card::at_least(1))
            .unwrap();
        bb.card(discussant, bb.role(participates, 0), Card::exactly(2))
            .unwrap();
        let b = bb.build().unwrap();

        let config = ExpansionConfig::default();
        let report = subsumes(&a, &b, &config).unwrap();
        assert!(!report.holds());
        assert!(report
            .failing
            .iter()
            .any(|f| f.contains("minc(Discussant, Participates.U3) = 2")));
    }

    #[test]
    fn signature_mismatch_detected() {
        use crate::schema::SchemaBuilder;
        let a = meeting();
        let mut bb = SchemaBuilder::new();
        bb.class("Speaker");
        let b = bb.build().unwrap();
        let config = ExpansionConfig::default();
        assert!(matches!(
            subsumes(&a, &b, &config),
            Err(CrError::SignatureMismatch { .. })
        ));
    }

    #[test]
    fn disjointness_and_covering_subsumption() {
        use crate::schema::SchemaBuilder;
        // a: disjoint declared. b: same signature, disjointness declared too
        // but also a covering a does NOT imply.
        let build = |with_cover: bool| {
            let mut bb = SchemaBuilder::new();
            let s = bb.class("S");
            let p = bb.class("P");
            let q = bb.class("Q");
            bb.isa(p, s);
            bb.isa(q, s);
            bb.disjoint([p, q]).unwrap();
            if with_cover {
                bb.covering(s, [p, q]).unwrap();
            }
            bb.build().unwrap()
        };
        let a = build(false);
        let b = build(true);
        let config = ExpansionConfig::default();
        // b is stronger: a does not imply the covering.
        let ab = subsumes(&a, &b, &config).unwrap();
        assert!(!ab.holds());
        assert!(ab.failing.iter().any(|f| f.starts_with("cover")));
        // but b subsumes a.
        assert!(subsumes(&b, &a, &config).unwrap().holds());
    }
}
