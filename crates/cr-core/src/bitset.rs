//! Fixed-universe bitsets.
//!
//! Compound classes are subsets of the schema's classes, and the expansion
//! manipulates very many of them; a compact `u64`-word bitset with hashing
//! keeps that tractable.

use std::fmt;

/// A set over a fixed universe `0..universe` of small indices.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    universe: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over `0..universe`.
    pub fn new(universe: usize) -> Self {
        BitSet {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// The full set over `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = BitSet::new(universe);
        for i in 0..universe {
            s.insert(i);
        }
        s
    }

    /// Builds a set from member indices.
    pub fn from_iter(universe: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(universe);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The universe size this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts `i`; panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.universe,
            "bitset index {i} out of universe {}",
            self.universe
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.universe,
            "bitset index {i} out of universe {}",
            self.universe
        );
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether `i` is a member.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.universe && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `self ⊆ other`. Panics on universe mismatch.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets share a member.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of shared members.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(1));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        assert!(!BitSet::new(10).contains(10_000));
    }

    #[test]
    fn subset_and_intersection() {
        let a = BitSet::from_iter(70, [1, 5, 65]);
        let b = BitSet::from_iter(70, [1, 5, 65, 69]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_len(&b), 3);
        let c = BitSet::from_iter(70, [2]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn set_ops() {
        let mut a = BitSet::from_iter(10, [1, 2, 3]);
        let b = BitSet::from_iter(10, [3, 4]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 4]);
        a.difference_with(&BitSet::from_iter(10, [4]));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn iter_order_and_first() {
        let s = BitSet::from_iter(130, [128, 0, 64, 63]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 128]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::new(4).first(), None);
    }

    #[test]
    fn full() {
        let s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
    }

    #[test]
    fn eq_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = BitSet::from_iter(10, [1, 2]);
        let b = BitSet::from_iter(10, [2, 1]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
