//! Logical implication of ISA and cardinality constraints (Section 4).
//!
//! * `S ⊨ C ≼ D` reduces to a support query: the maximal acceptable support
//!   answers "can some compound class containing `C` but not `D` be
//!   populated?" — if none can, every finite model satisfies `C ≼ D`.
//! * `S ⊨ minc(C, R, U) = m` holds iff the auxiliary class `C_exc ≼ C` with
//!   `maxc(C_exc, R, U) = m − 1` is unsatisfiable in the extended schema
//!   (an instance violating the implied minimum is exactly an instance of
//!   `C_exc`); symmetrically `S ⊨ maxc(C, R, U) = n` uses
//!   `minc(C_exc, R, U) = n + 1`.
//!
//! On top of the paper's per-constraint checks, [`implied_minc`] /
//! [`implied_maxc`] compute the *tightest* implied windows by monotone
//! doubling-plus-binary search (this regenerates Figure 7). The implied
//! minimum search always terminates for satisfiable classes; the implied
//! maximum may genuinely not exist (unbounded participation), so that
//! search carries an explicit cap and reports
//! [`ImpliedBound::NoBoundUpTo`] honestly when it is hit.

use crate::budget::{Budget, Stage};
use crate::error::{CrError, CrResult};
use crate::expansion::ExpansionConfig;
use crate::ids::{ClassId, RoleId};
use crate::isa::IsaClosure;
use crate::sat::{Reasoner, Strategy};
use crate::schema::{Card, Schema, SchemaBuilder};

/// Result of a tightest-implied-bound query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImpliedBound {
    /// The queried class is itself unsatisfiable; every bound is vacuously
    /// implied.
    Unsatisfiable,
    /// The tightest implied bound.
    Bound(u64),
    /// (Max-bound queries only.) No bound up to the search cap is implied;
    /// participation is unbounded at least up to this value.
    NoBoundUpTo(u64),
}

/// Three-valued answer of a *governed* implication query: under a resource
/// [`Budget`] the honest outcomes are "holds", "does not hold", and "the
/// budget ran out before the question was decided". The last is
/// [`Verdict::Unknown`] — a budget trip mid-query is *not* evidence either
/// way, so it must not collapse onto `False`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The schema finitely implies the queried constraint.
    True,
    /// The schema does not finitely imply the queried constraint.
    False,
    /// The budget was exhausted before an answer was reached.
    Unknown {
        /// Human-readable account of which guard tripped (the
        /// [`CrError::BudgetExceeded`] display).
        reason: String,
    },
}

impl Verdict {
    /// Whether this is a definite [`Verdict::True`].
    pub fn is_true(&self) -> bool {
        matches!(self, Verdict::True)
    }

    /// Whether the query was actually decided (not [`Verdict::Unknown`]).
    pub fn is_known(&self) -> bool {
        !matches!(self, Verdict::Unknown { .. })
    }
}

impl From<bool> for Verdict {
    fn from(b: bool) -> Verdict {
        if b {
            Verdict::True
        } else {
            Verdict::False
        }
    }
}

/// Three-valued answer of a governed tightest-bound search (the
/// [`Verdict`] analogue for [`implied_minc_governed`] /
/// [`implied_maxc_governed`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundVerdict {
    /// The search completed.
    Known(ImpliedBound),
    /// The budget was exhausted mid-search.
    Unknown {
        /// Human-readable account of which guard tripped.
        reason: String,
    },
}

impl Reasoner<'_> {
    /// Whether the schema finitely implies `sub ≼ sup`.
    pub fn implies_isa(&self, sub: ClassId, sup: ClassId) -> bool {
        // Some compound class with sub but without sup populated?
        self.expansion()
            .compound_classes_containing(sub)
            .iter()
            .all(|&cc| {
                !self.support()[cc] || self.expansion().compound_classes()[cc].contains(sup.index())
            })
    }

    /// Whether the schema finitely implies that `c1` and `c2` are disjoint
    /// (no finite model gives them a common instance): no compound class in
    /// the maximal acceptable support contains both.
    pub fn implies_disjoint(&self, c1: ClassId, c2: ClassId) -> bool {
        self.expansion()
            .compound_classes_containing(c1)
            .iter()
            .all(|&cc| {
                !self.support()[cc] || !self.expansion().compound_classes()[cc].contains(c2.index())
            })
    }

    /// Whether the schema finitely implies the covering
    /// `class ⊆ covers_1 ∪ …`: every supported compound class containing
    /// `class` contains some cover.
    pub fn implies_covering(&self, class: ClassId, covers: &[ClassId]) -> bool {
        self.expansion()
            .compound_classes_containing(class)
            .iter()
            .all(|&cc| {
                !self.support()[cc]
                    || covers
                        .iter()
                        .any(|d| self.expansion().compound_classes()[cc].contains(d.index()))
            })
    }

    /// All implied-but-undeclared ISA pairs, in id order.
    pub fn implied_isa_pairs(&self) -> Vec<(ClassId, ClassId)> {
        let schema = self.schema();
        let closure = IsaClosure::compute(schema);
        let mut out = Vec::new();
        for sub in schema.classes() {
            for sup in schema.classes() {
                if sub != sup && !closure.is_subclass_of(sub, sup) && self.implies_isa(sub, sup) {
                    out.push((sub, sup));
                }
            }
        }
        out
    }
}

/// Rebuilds `schema` plus one auxiliary class `C_exc ≼ parent` carrying a
/// single cardinality declaration on `role`.
fn with_exc_class(
    schema: &Schema,
    parent: ClassId,
    role: RoleId,
    card: Card,
) -> CrResult<(Schema, ClassId)> {
    let (mut b, classes, role_map) = SchemaBuilder::copy_structure(schema);
    // A name no user class can carry (user names come from the builder
    // API / DSL identifiers).
    let exc = b.class("\u{22A5}exc");
    b.isa(exc, classes[parent.index()]);
    for &(sub, sup) in schema.isa_statements() {
        b.isa(classes[sub.index()], classes[sup.index()]);
    }
    for d in schema.card_declarations() {
        b.card(classes[d.class.index()], role_map[d.role.index()], d.card)
            .expect("declared cards are unique in the source schema");
    }
    b.card(exc, role_map[role.index()], card)?;
    for group in schema.disjointness_groups() {
        b.disjoint(group.iter().map(|c| classes[c.index()]))?;
    }
    for (c, covers) in schema.coverings() {
        b.covering(
            classes[c.index()],
            covers.iter().map(|c| classes[c.index()]),
        )?;
    }
    let built = b.build()?;
    Ok((built, exc))
}

fn check_query_well_formed(schema: &Schema, class: ClassId, role: RoleId) -> CrResult<()> {
    let closure = IsaClosure::compute(schema);
    if !closure.is_subclass_of(class, schema.primary_class(role)) {
        return Err(CrError::CardOnNonSubclass { class, role });
    }
    Ok(())
}

/// Whether `schema ⊨ minc(class, role) = m` (Section 4).
///
/// ```
/// use cr_core::expansion::ExpansionConfig;
/// use cr_core::implication::implies_minc;
/// use cr_core::schema::{Card, SchemaBuilder};
///
/// // Every A partakes exactly twice, so minc = 2 is implied but 3 is not.
/// let mut b = SchemaBuilder::new();
/// let a = b.class("A");
/// let x = b.class("X");
/// let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
/// let u = b.role(r, 0);
/// b.card(a, u, Card::exactly(2)).unwrap();
/// let schema = b.build().unwrap();
///
/// let config = ExpansionConfig::default();
/// assert!(implies_minc(&schema, a, u, 2, &config).unwrap());
/// assert!(!implies_minc(&schema, a, u, 3, &config).unwrap());
/// ```
pub fn implies_minc(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    m: u64,
    config: &ExpansionConfig,
) -> CrResult<bool> {
    implies_minc_with(schema, class, role, m, config, &Budget::unlimited())
}

/// [`implies_minc`] metered against `budget`, propagating
/// [`CrError::BudgetExceeded`] (the [`Verdict`]-returning wrapper is
/// [`implies_minc_governed`]). One [`Stage::Implication`] unit per
/// auxiliary-schema probe, plus whatever the probe's own expansion and
/// fixpoint charge.
fn implies_minc_with(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    m: u64,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<bool> {
    check_query_well_formed(schema, class, role)?;
    if m == 0 {
        return Ok(true); // counts are nonnegative
    }
    let _span = budget.tracer().span(Stage::Implication.as_str());
    budget.charge(Stage::Implication, 1)?;
    budget.tracer().add(cr_trace::Counter::ImplicationProbes, 1);
    let (extended, exc) = with_exc_class(schema, class, role, Card::at_most(m - 1))?;
    let r = Reasoner::with_budget(&extended, config, Strategy::default(), budget)?;
    Ok(!r.is_class_satisfiable(exc))
}

/// [`implies_minc`] under a resource [`Budget`]: a budget trip yields
/// [`Verdict::Unknown`] instead of an error — the caller asked a yes/no
/// question and "ran out of budget" is the honest third answer.
pub fn implies_minc_governed(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    m: u64,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<Verdict> {
    verdict_of(implies_minc_with(schema, class, role, m, config, budget))
}

/// Whether `schema ⊨ maxc(class, role) = n` (Section 4).
pub fn implies_maxc(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    n: u64,
    config: &ExpansionConfig,
) -> CrResult<bool> {
    implies_maxc_with(schema, class, role, n, config, &Budget::unlimited())
}

fn implies_maxc_with(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    n: u64,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<bool> {
    check_query_well_formed(schema, class, role)?;
    let _span = budget.tracer().span(Stage::Implication.as_str());
    budget.charge(Stage::Implication, 1)?;
    budget.tracer().add(cr_trace::Counter::ImplicationProbes, 1);
    let (extended, exc) = with_exc_class(schema, class, role, Card::at_least(n + 1))?;
    let r = Reasoner::with_budget(&extended, config, Strategy::default(), budget)?;
    Ok(!r.is_class_satisfiable(exc))
}

/// [`implies_maxc`] under a resource [`Budget`] (see
/// [`implies_minc_governed`] for the three-valued contract).
pub fn implies_maxc_governed(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    n: u64,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<Verdict> {
    verdict_of(implies_maxc_with(schema, class, role, n, config, budget))
}

/// Collapses a budget trip to [`Verdict::Unknown`]; other errors (ill-formed
/// query, oversized expansion) stay errors.
fn verdict_of(result: CrResult<bool>) -> CrResult<Verdict> {
    match result {
        Ok(b) => Ok(Verdict::from(b)),
        Err(e @ CrError::BudgetExceeded { .. }) => Ok(Verdict::Unknown {
            reason: e.to_string(),
        }),
        Err(e) => Err(e),
    }
}

/// The [`BoundVerdict`] analogue of [`verdict_of`].
fn bound_verdict_of(result: CrResult<ImpliedBound>) -> CrResult<BoundVerdict> {
    match result {
        Ok(b) => Ok(BoundVerdict::Known(b)),
        Err(e @ CrError::BudgetExceeded { .. }) => Ok(BoundVerdict::Unknown {
            reason: e.to_string(),
        }),
        Err(e) => Err(e),
    }
}

/// The largest `m` with `schema ⊨ minc(class, role) = m`.
pub fn implied_minc(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    config: &ExpansionConfig,
) -> CrResult<ImpliedBound> {
    implied_minc_with(schema, class, role, config, &Budget::unlimited())
}

/// [`implied_minc`] under a resource [`Budget`]: the whole
/// doubling-plus-binary search is metered, and exhaustion mid-search yields
/// [`BoundVerdict::Unknown`] rather than a spuriously loose bound.
pub fn implied_minc_governed(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<BoundVerdict> {
    bound_verdict_of(implied_minc_with(schema, class, role, config, budget))
}

fn implied_minc_with(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<ImpliedBound> {
    check_query_well_formed(schema, class, role)?;
    let base = Reasoner::with_budget(schema, config, Strategy::default(), budget)?;
    if !base.is_class_satisfiable(class) {
        return Ok(ImpliedBound::Unsatisfiable);
    }
    if !implies_minc_with(schema, class, role, 1, config, budget)? {
        return Ok(ImpliedBound::Bound(0));
    }
    // Double until a non-implied bound appears (terminates: the class is
    // satisfiable, so some model realizes a finite count).
    let mut lo = 1u64; // implied
    let mut hi = 2u64;
    while implies_minc_with(schema, class, role, hi, config, budget)? {
        lo = hi;
        hi *= 2;
    }
    // Invariant: minc=lo implied, minc=hi not; binary search the frontier.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if implies_minc_with(schema, class, role, mid, config, budget)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(ImpliedBound::Bound(lo))
}

/// The smallest `n` with `schema ⊨ maxc(class, role) = n`, searching up to
/// `cap` (participation maxima can be genuinely unbounded, in which case
/// [`ImpliedBound::NoBoundUpTo`] is returned).
pub fn implied_maxc(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    config: &ExpansionConfig,
    cap: u64,
) -> CrResult<ImpliedBound> {
    implied_maxc_with(schema, class, role, config, cap, &Budget::unlimited())
}

/// [`implied_maxc`] under a resource [`Budget`] (see
/// [`implied_minc_governed`]).
pub fn implied_maxc_governed(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    config: &ExpansionConfig,
    cap: u64,
    budget: &Budget,
) -> CrResult<BoundVerdict> {
    bound_verdict_of(implied_maxc_with(schema, class, role, config, cap, budget))
}

fn implied_maxc_with(
    schema: &Schema,
    class: ClassId,
    role: RoleId,
    config: &ExpansionConfig,
    cap: u64,
    budget: &Budget,
) -> CrResult<ImpliedBound> {
    check_query_well_formed(schema, class, role)?;
    let base = Reasoner::with_budget(schema, config, Strategy::default(), budget)?;
    if !base.is_class_satisfiable(class) {
        return Ok(ImpliedBound::Unsatisfiable);
    }
    if implies_maxc_with(schema, class, role, 0, config, budget)? {
        return Ok(ImpliedBound::Bound(0));
    }
    // Double until an implied bound appears or the cap is passed.
    let mut lo = 0u64; // not implied
    let mut hi = 1u64;
    loop {
        if hi > cap {
            return Ok(ImpliedBound::NoBoundUpTo(cap));
        }
        if implies_maxc_with(schema, class, role, hi, config, budget)? {
            break;
        }
        lo = hi;
        hi *= 2;
    }
    // Invariant: maxc=hi implied, maxc=lo not.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if implies_maxc_with(schema, class, role, mid, config, budget)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(ImpliedBound::Bound(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's meeting schema (Figures 2/3).
    fn meeting() -> (
        Schema,
        ClassId,
        ClassId,
        ClassId,
        RoleId,
        RoleId,
        RoleId,
        RoleId,
    ) {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        let (u1, u2) = (b.role(holds, 0), b.role(holds, 1));
        let (u3, u4) = (b.role(participates, 0), b.role(participates, 1));
        b.card(speaker, u1, Card::at_least(1)).unwrap();
        b.card(discussant, u1, Card::at_most(2)).unwrap();
        b.card(talk, u2, Card::exactly(1)).unwrap();
        b.card(discussant, u3, Card::exactly(1)).unwrap();
        b.card(talk, u4, Card::at_least(1)).unwrap();
        (
            b.build().unwrap(),
            speaker,
            discussant,
            talk,
            u1,
            u2,
            u3,
            u4,
        )
    }

    #[test]
    fn figure7_isa_inference() {
        // S ⊨ Speaker ≼ Discussant: every talk has exactly one holder and
        // at least one (exactly one) discussant, discussants hold talks...
        // — the paper's first Figure 7 inference.
        let (schema, speaker, discussant, ..) = meeting();
        let r = Reasoner::new(&schema).unwrap();
        assert!(r.implies_isa(speaker, discussant));
        // The declared direction also holds, trivially.
        assert!(r.implies_isa(discussant, speaker));
        let pairs = r.implied_isa_pairs();
        assert!(pairs.contains(&(speaker, discussant)));
    }

    #[test]
    fn figure7_max_participates() {
        // S ⊨ maxc(Talk, Participates, U4) = 1.
        let (schema, _, _, talk, _, _, _, u4) = meeting();
        let config = ExpansionConfig::default();
        assert!(implies_maxc(&schema, talk, u4, 1, &config).unwrap());
        assert!(!implies_maxc(&schema, talk, u4, 0, &config).unwrap());
        assert_eq!(
            implied_maxc(&schema, talk, u4, &config, 1 << 16).unwrap(),
            ImpliedBound::Bound(1)
        );
    }

    #[test]
    fn figure7_max_holds() {
        // S ⊨ maxc(Speaker, Holds, U1) = 1, although the declaration allows
        // up to 2 for discussants and ∞ for speakers.
        let (schema, speaker, _, _, u1, ..) = meeting();
        let config = ExpansionConfig::default();
        assert!(implies_maxc(&schema, speaker, u1, 1, &config).unwrap());
        assert_eq!(
            implied_maxc(&schema, speaker, u1, &config, 1 << 16).unwrap(),
            ImpliedBound::Bound(1)
        );
    }

    #[test]
    fn implied_minc_on_meeting() {
        // Every speaker holds at least one talk (declared), and the
        // interaction does not force more than that.
        let (schema, speaker, _, _, u1, ..) = meeting();
        let config = ExpansionConfig::default();
        assert_eq!(
            implied_minc(&schema, speaker, u1, &config).unwrap(),
            ImpliedBound::Bound(1)
        );
    }

    #[test]
    fn unbounded_max_reports_cap() {
        // A speaker-only schema with no max constraint: participation is
        // unbounded.
        let mut b = SchemaBuilder::new();
        let s = b.class("S");
        let t = b.class("T");
        let r = b.relationship("R", [("u", s), ("v", t)]).unwrap();
        let u = b.role(r, 0);
        b.card(s, u, Card::at_least(1)).unwrap();
        let schema = b.build().unwrap();
        let config = ExpansionConfig::default();
        assert_eq!(
            implied_maxc(&schema, s, u, &config, 64).unwrap(),
            ImpliedBound::NoBoundUpTo(64)
        );
    }

    #[test]
    fn unsat_class_vacuous_bounds() {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        let (u1, u2) = (b.role(r, 0), b.role(r, 1));
        b.card(c, u1, Card::at_least(2)).unwrap();
        b.card(d, u2, Card::at_most(1)).unwrap();
        let schema = b.build().unwrap();
        let config = ExpansionConfig::default();
        assert_eq!(
            implied_minc(&schema, c, u1, &config).unwrap(),
            ImpliedBound::Unsatisfiable
        );
        assert_eq!(
            implied_maxc(&schema, c, u1, &config, 64).unwrap(),
            ImpliedBound::Unsatisfiable
        );
    }

    #[test]
    fn governed_queries_answer_or_say_unknown() {
        let (schema, speaker, _, talk, u1, _, _, u4) = meeting();
        let config = ExpansionConfig::default();

        // Generous budget: the governed answers match the ungoverned ones.
        let free = Budget::unlimited();
        assert_eq!(
            implies_maxc_governed(&schema, talk, u4, 1, &config, &free).unwrap(),
            Verdict::True
        );
        assert_eq!(
            implies_maxc_governed(&schema, talk, u4, 0, &config, &free).unwrap(),
            Verdict::False
        );
        assert_eq!(
            implied_minc_governed(&schema, speaker, u1, &config, &free).unwrap(),
            BoundVerdict::Known(ImpliedBound::Bound(1))
        );

        // Starved budget: the only honest answer is Unknown — never a
        // definite verdict, never a panic.
        let starved = Budget::unlimited().with_max_steps(3);
        let v = implies_maxc_governed(&schema, talk, u4, 1, &config, &starved).unwrap();
        assert!(matches!(v, Verdict::Unknown { .. }), "got {v:?}");
        let starved = Budget::unlimited().with_stage_limit(Stage::Implication, 1);
        let b = implied_maxc_governed(&schema, speaker, u1, &config, 1 << 16, &starved).unwrap();
        assert!(matches!(b, BoundVerdict::Unknown { .. }), "got {b:?}");
        // The Unknown reason names the tripped guard.
        if let BoundVerdict::Unknown { reason } = b {
            assert!(reason.contains("implication"), "{reason}");
        }
    }

    #[test]
    fn ill_formed_queries_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", a)]).unwrap();
        let u = b.role(r, 0);
        let schema = b.build().unwrap();
        let config = ExpansionConfig::default();
        // X is unrelated to role u's primary class A.
        assert!(matches!(
            implies_minc(&schema, x, u, 1, &config),
            Err(CrError::CardOnNonSubclass { .. })
        ));
    }

    #[test]
    fn isa_not_implied_when_separable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let schema = {
            b.relationship("R", [("u", a), ("v", x)]).unwrap();
            b.build().unwrap()
        };
        let r = Reasoner::new(&schema).unwrap();
        assert!(!r.implies_isa(a, x));
        assert!(!r.implies_isa(x, a));
        assert!(r.implied_isa_pairs().is_empty());
    }
}
