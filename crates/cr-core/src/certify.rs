//! Self-certifying verdicts: independent re-validation of reasoner output.
//!
//! The production pipeline (expansion → `Ψ_S` → greatest fixpoint) is a
//! long chain of exact but intricate code; under fault injection — or a
//! plain bug — it could in principle return a *wrong* verdict rather than
//! a clean error. This module closes that gap by re-deriving every verdict
//! through machinery that is independent of (and much simpler than) the
//! solver path that produced it:
//!
//! * **SAT side.** The reasoner's witness is plugged back into the
//!   paper-verbatim system with [`AcceptableSolution::verify`](crate::sat::AcceptableSolution::verify) — pure
//!   rational arithmetic, no simplex — and its positive entries are
//!   required to coincide exactly with the claimed maximal support.
//! * **UNSAT side.** For every compound class *outside* the support, a
//!   Farkas/Motzkin certificate ([`cr_linear::FarkasCertificate`]) is
//!   derived proving that `Ψ_S` restricted to the support admits no
//!   solution with that class positive. Checking a certificate is a handful
//!   of dot products; together with the witness (which shows the support
//!   itself *is* jointly achievable) this certifies each class-level
//!   verdict: a class is satisfiable iff one of its compound classes is in
//!   the support.
//! * **Differential oracle.** On small expansions (at most
//!   [`zenum::MAX_Z_UNKNOWNS`] compound classes) every class verdict is
//!   additionally recomputed by the paper's literal Theorem 3.4
//!   `Z ⊆ V_C` enumeration and compared.
//!
//! Certification cost is metered against the caller's [`Budget`] and the
//! outcome lands in the `certify_checks` / `certify_failures` /
//! `certify_farkas_steps` trace counters, so it is visible in every
//! [`RunReport`](cr_trace::RunReport). The chaos harness
//! (`tests/chaos.rs`) uses this module as ground truth: a fault may abort
//! a request, but any verdict that *is* returned must certify.

use cr_linear::{farkas_certificate_governed, LinearError};
use cr_trace::Counter;

use crate::budget::{Budget, Stage};
use crate::error::{CrError, CrResult};
use crate::expansion::ExpansionConfig;
use crate::sat::{fixpoint, zenum, Reasoner, Strategy};
use crate::schema::Schema;

/// Outcome of a certification pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CertifyReport {
    /// Individual checks performed (witness plug-back, support equality,
    /// Farkas certificates, differential comparisons).
    pub checks: u64,
    /// Farkas certificates derived and verified.
    pub farkas_certificates: u64,
    /// Class verdicts additionally cross-checked by the Z-enumeration
    /// oracle (0 when the expansion is too large for it).
    pub differential_classes: u64,
    /// Human-readable descriptions of every failed check; empty means the
    /// verdict is certified.
    pub failures: Vec<String>,
    /// The independently re-validated unsatisfiable classes, by name, in
    /// id order — callers compare this against the verdict they are
    /// certifying.
    pub unsat_classes: Vec<String>,
}

impl CertifyReport {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Certifies the verdicts of an already-built [`Reasoner`].
///
/// Errors only on resource exhaustion ([`CrError::BudgetExceeded`]) or an
/// injected fault; a *failed check* is not an error — it is recorded in
/// [`CertifyReport::failures`] (and the `certify_failures` counter) so the
/// caller can report exactly what was refuted.
pub fn certify_reasoner(reasoner: &Reasoner<'_>, budget: &Budget) -> CrResult<CertifyReport> {
    let tracer = budget.tracer();
    let sys = reasoner.system();
    let support = reasoner.support();
    let mut report = CertifyReport::default();
    let check = |report: &mut CertifyReport, passed: bool, failure: String| {
        report.checks += 1;
        tracer.add(Counter::CertifyChecks, 1);
        if !passed {
            tracer.add(Counter::CertifyFailures, 1);
            report.failures.push(failure);
        }
    };

    // SAT side: the witness must satisfy Ψ_S + acceptability by direct
    // arithmetic, and be positive on exactly the claimed support.
    match reasoner.witness() {
        Some(w) => {
            check(
                &mut report,
                w.verify(sys),
                "witness fails Ψ_S or acceptability re-validation".to_string(),
            );
            let support_matches = support
                .iter()
                .enumerate()
                .all(|(cc, &alive)| w.cclass_counts[cc].is_positive() == alive);
            check(
                &mut report,
                support_matches,
                "witness support differs from the claimed maximal support".to_string(),
            );
        }
        None => check(
            &mut report,
            support.iter().all(|&alive| !alive),
            "no witness although the claimed support is nonempty".to_string(),
        ),
    }

    // UNSAT side: each excluded compound class gets a Farkas certificate
    // that the support cannot be extended by it.
    for (cc, &alive) in support.iter().enumerate() {
        if alive {
            continue;
        }
        budget.charge(Stage::Fixpoint, 1)?;
        let probe = fixpoint::restrict(sys, support, Some(cc));
        let cert = match farkas_certificate_governed(&probe, &budget) {
            Ok(c) => c,
            Err(LinearError::Interrupted) => return Err(budget.exceeded_err(Stage::Simplex)),
            Err(LinearError::FaultInjected { site }) => {
                return Err(CrError::FaultInjected { site })
            }
            Err(e) => unreachable!("certificate search cannot fail otherwise: {e}"),
        };
        report.farkas_certificates += 1;
        tracer.add(Counter::CertifyFarkasSteps, 1);
        // The certificate's own `check` already ran inside the derivation;
        // what we assert here is that a certificate *exists* (the exclusion
        // is genuine) and independently re-verifies against the probe.
        check(
            &mut report,
            cert.as_ref().is_some_and(|c| c.check(&probe).is_ok()),
            format!("no Farkas certificate for excluded compound class {cc}"),
        );
    }

    // Differential oracle on small expansions: the literal Theorem 3.4
    // enumeration must agree with the fixpoint on every class.
    let schema = reasoner.schema();
    for class in schema.classes() {
        let claimed = reasoner.is_class_satisfiable(class);
        if !claimed {
            report
                .unsat_classes
                .push(schema.class_name(class).to_string());
        }
        match zenum::satisfiable_by_z_enumeration_governed(reasoner.expansion(), sys, class, budget)
        {
            Ok(oracle) => {
                report.differential_classes += 1;
                check(
                    &mut report,
                    oracle == claimed,
                    format!(
                        "Z-enumeration oracle disagrees on class {} (oracle: {}, fixpoint: {})",
                        schema.class_name(class),
                        oracle,
                        claimed
                    ),
                );
            }
            // Too large for the exponential oracle: skip, not a failure.
            Err(CrError::ZEnumerationTooLarge { .. }) => {}
            Err(e) => return Err(e),
        }
    }

    Ok(report)
}

/// Builds a fresh [`Reasoner`] for `schema` and certifies it — the
/// entry point behind `crsat check --certify` and the server's
/// `"certify": true` request flag. The rebuild is deliberate when
/// certifying a *cached* verdict: it re-derives everything from the schema
/// text, so a corrupted cache entry is caught too.
pub fn certify_check(schema: &Schema, budget: &Budget) -> CrResult<CertifyReport> {
    let reasoner = Reasoner::with_budget(
        schema,
        &ExpansionConfig::default(),
        Strategy::Aggregated,
        budget,
    )?;
    certify_reasoner(&reasoner, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Card, SchemaBuilder};

    fn meeting() -> Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::at_most(2))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.build().unwrap()
    }

    fn figure1() -> Schema {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn satisfiable_schema_certifies_clean() {
        let schema = meeting();
        let report = certify_check(&schema, &Budget::unlimited()).unwrap();
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert!(report.checks > 0);
        assert!(report.unsat_classes.is_empty());
        assert!(
            report.differential_classes > 0,
            "small schema must be cross-checked"
        );
    }

    #[test]
    fn unsat_schema_certifies_with_farkas_chain() {
        let schema = figure1();
        let report = certify_check(&schema, &Budget::unlimited()).unwrap();
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.unsat_classes, vec!["C", "D"]);
        assert!(
            report.farkas_certificates > 0,
            "every excluded compound class needs a certificate"
        );
    }

    #[test]
    fn certification_is_metered() {
        let schema = figure1();
        let tracer = cr_trace::Tracer::new(Box::new(cr_trace::NullSink));
        let budget = Budget::unlimited().with_tracer(&tracer);
        let report = certify_check(&schema, &budget).unwrap();
        assert_eq!(tracer.counter(Counter::CertifyChecks), report.checks);
        assert_eq!(tracer.counter(Counter::CertifyFailures), 0);
        assert_eq!(
            tracer.counter(Counter::CertifyFarkasSteps),
            report.farkas_certificates
        );
    }

    #[test]
    fn certification_respects_the_budget() {
        let schema = figure1();
        let starved = Budget::unlimited().with_max_steps(3);
        assert!(matches!(
            certify_check(&schema, &starved),
            Err(CrError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn a_corrupted_reasoner_verdict_is_refuted() {
        // Forge a wrong SAT verdict by certifying a reasoner whose support
        // we cannot easily corrupt directly — instead check the failure
        // path through the report API: a fabricated failure list reports
        // not-ok.
        let mut report = CertifyReport::default();
        assert!(report.ok());
        report.failures.push("forged".to_string());
        assert!(!report.ok());
    }
}
