//! Unrestricted (infinite-model) satisfiability.
//!
//! The paper restricts attention to **finite** satisfiability because
//! databases are finite — and that restriction has teeth: its Figure 1
//! schema (`|R| >= 2|C|`, `|R| <= |D|`, `D ≼ C`) has no finite model but a
//! perfectly good *infinite* one (countably many `C`/`D` individuals absorb
//! the 2:1 ratio). This module decides the unrestricted notion, making the
//! contrast executable.
//!
//! For the CR language the classical unraveling argument applies. Call a
//! consistent compound class **viable** when
//!
//! 1. every derived window on it is nonempty (`minc̄ <= maxc̄`), and
//! 2. for every role group with `minc̄ >= 1`, each *other* role of that
//!    relationship has some viable compound class whose own derived window
//!    on that role admits at least one participation (`maxc̄ >= 1`).
//!
//! The viable set is the greatest fixpoint of this condition. A class is
//! unrestrictedly satisfiable iff some viable compound class contains it:
//! one direction by reading the conditions off any model; the other by
//! building a tree model — create a root in the compound class, satisfy
//! each minimum demand with fresh tuples whose other fillers are fresh
//! individuals typed by the witnessing viable compound classes, and recurse
//! (each fresh individual enters with participation count 1, which its
//! nonempty window admits because `maxc̄ >= 1`, and its residual minimum
//! demands spawn further fresh tuples). The tree is infinite in general —
//! exactly the paper's point: *counting*, not typing, is what makes finite
//! reasoning hard.
//!
//! Because no counting is involved, the procedure needs no linear algebra:
//! it is a polynomial fixpoint over the expansion.

use crate::expansion::Expansion;
use crate::ids::ClassId;

/// Decides unrestricted satisfiability for every compound class; returns
/// the viability vector (parallel to [`Expansion::compound_classes`]).
pub fn viable_compound_classes(exp: &Expansion<'_>) -> Vec<bool> {
    let schema = exp.schema();
    let n_cc = exp.compound_classes().len();
    let mut viable = vec![true; n_cc];

    // Condition 1 is support-independent: prune empty windows once.
    for rel in schema.rels() {
        for &role in schema.roles_of(rel) {
            let primary = schema.primary_class(role);
            for &cc in exp.compound_classes_containing(primary) {
                if exp.derived_card(cc, role).is_empty_window() {
                    viable[cc] = false;
                }
            }
        }
    }

    // Greatest fixpoint of condition 2.
    loop {
        let mut changed = false;
        for rel in schema.rels() {
            let roles = schema.roles_of(rel).to_vec();
            for (k, &role) in roles.iter().enumerate() {
                let primary = schema.primary_class(role);
                for &cc in exp.compound_classes_containing(primary) {
                    if !viable[cc] || exp.derived_card(cc, role).min == 0 {
                        continue;
                    }
                    // Demand: every other role needs a viable filler class
                    // admitting at least one participation.
                    let supported = roles.iter().enumerate().all(|(k2, &role2)| {
                        if k2 == k {
                            return true;
                        }
                        let primary2 = schema.primary_class(role2);
                        exp.compound_classes_containing(primary2)
                            .iter()
                            .any(|&cc2| viable[cc2] && exp.derived_card(cc2, role2).max != Some(0))
                    });
                    if !supported {
                        viable[cc] = false;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    viable
}

/// Whether `class` is satisfiable when infinite database states are
/// admitted.
pub fn unrestricted_satisfiable(exp: &Expansion<'_>, class: ClassId) -> bool {
    let viable = viable_compound_classes(exp);
    exp.compound_classes_containing(class)
        .iter()
        .any(|&cc| viable[cc])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{Expansion, ExpansionConfig};
    use crate::sat::Reasoner;
    use crate::schema::{Card, Schema, SchemaBuilder};

    fn figure1() -> (Schema, ClassId, ClassId) {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        (b.build().unwrap(), c, d)
    }

    #[test]
    fn figure1_is_the_finite_infinite_gap() {
        // The paper's motivating example: finitely unsatisfiable, but
        // satisfiable over infinite domains.
        let (schema, c, d) = figure1();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        assert!(unrestricted_satisfiable(&exp, c));
        assert!(unrestricted_satisfiable(&exp, d));
        let finite = Reasoner::new(&schema).unwrap();
        assert!(!finite.is_class_satisfiable(c));
        assert!(!finite.is_class_satisfiable(d));
    }

    #[test]
    fn empty_window_unsat_everywhere() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::new(3, Some(2))).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        assert!(!unrestricted_satisfiable(&exp, a));
        assert!(unrestricted_satisfiable(&exp, x));
    }

    #[test]
    fn demand_into_zero_capacity_cascades() {
        // A needs a tuple, but every filler class for the other role caps
        // its participation at 0: unsatisfiable even with infinite domains.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("X");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        b.card(a, b.role(r, 0), Card::at_least(1)).unwrap();
        b.card(x, b.role(r, 1), Card::at_most(0)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        assert!(!unrestricted_satisfiable(&exp, a));
        assert!(unrestricted_satisfiable(&exp, x));
    }

    #[test]
    fn finite_sat_implies_unrestricted_sat() {
        // Sanity on the meeting schema: finite satisfiability must imply
        // unrestricted satisfiability.
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        b.isa(discussant, speaker);
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let finite = Reasoner::new(&schema).unwrap();
        for class in schema.classes() {
            if finite.is_class_satisfiable(class) {
                assert!(unrestricted_satisfiable(&exp, class));
            }
        }
    }

    #[test]
    fn ratio_cycles_only_bind_finitely() {
        // |A| = 2|B| and |B| = 2|A| via two relationships: finitely forces
        // emptiness, infinitely fine.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let x = b.class("B");
        let r = b.relationship("R", [("u", a), ("v", x)]).unwrap();
        let s = b.relationship("S", [("p", x), ("q", a)]).unwrap();
        b.card(a, b.role(r, 0), Card::exactly(2)).unwrap();
        b.card(x, b.role(r, 1), Card::exactly(1)).unwrap();
        b.card(x, b.role(s, 0), Card::exactly(2)).unwrap();
        b.card(a, b.role(s, 1), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let exp = Expansion::build(&schema, &ExpansionConfig::default()).unwrap();
        let finite = Reasoner::new(&schema).unwrap();
        assert!(!finite.is_class_satisfiable(a));
        assert!(unrestricted_satisfiable(&exp, a));
        assert!(unrestricted_satisfiable(&exp, x));
    }
}
