//! Reusable intermediate state for incremental (delta) checking.
//!
//! A full [`Reasoner`] run spends its time in three
//! places: enumerating the consistent compound classes (the Venn atoms),
//! building the aggregated disequation system, and descending the greatest
//! fixpoint to the maximal acceptable support `P*`. For a *constraint-only*
//! edit — cardinality windows changed, ISA/disjointness/covering assertions
//! added — most of that work is provably reusable:
//!
//! * **Atoms.** Cardinality changes never touch atom consistency, and
//!   *adding* an ISA/disjointness/covering assertion can only *shrink* the
//!   atom set (consistency at a leaf is a conjunction of per-assertion
//!   checks). So the edited atoms are exactly the base atoms that survive
//!   [`consistent_at_leaf`](crate::expansion) under the edited schema — a
//!   linear filter instead of an exponential DFS. Edits that *remove*
//!   ISA/disjointness/covering (or touch classes/relationships themselves)
//!   can create new atoms and are out of scope here; callers fall back to a
//!   from-scratch run.
//! * **Support.** For a *tightening* edit (additions only), every acceptable
//!   solution of the edited system is acceptable in the base system, so the
//!   edited `P*` is contained in the base `P*` restricted to surviving
//!   atoms — which therefore seeds the monotone fixpoint descent, typically
//!   converging in one or two passes instead of `O(|atoms|)`. For a
//!   *loosening* edit (a cardinality window removed or widened) the support
//!   can only grow, so the descent restarts from all-true — still reusing
//!   the filtered atoms.
//! * **Witness.** The base run's marginal-form witness
//!   ([`AggSolution`]) is a concrete nonnegative
//!   integer point. When no atom was invalidated the edited aggregated
//!   system has the *identical* variable layout (construction order depends
//!   only on atoms and candidate lists, never on cardinality values), so
//!   the witness can be re-checked against the edited rows by pure
//!   evaluation. If it still satisfies them, the base support is achievable
//!   in the edited system, pinning `P*` exactly — **zero LPs solved**.
//!
//! The soundness of each reuse step is re-verified the same way the
//! from-scratch path is: in debug builds the final witness is checked
//! against the paper-verbatim system `Ψ_S`.

use crate::agg::{AggSolution, AggSystem};
use crate::bitset::BitSet;
use crate::budget::Budget;
use crate::error::{CrError, CrResult};
use crate::expansion::{Expansion, ExpansionConfig};
use crate::sat::{AcceptableSolution, Reasoner};
use crate::schema::Schema;
use cr_rational::Rational;

/// The `what` tag [`reasoner_from_state`] puts on the
/// [`CrError::ExpansionTooLarge`] it raises when a diff invalidates more
/// base atoms than the caller's cap allows — callers match on it to
/// distinguish "fall back to a full check" from genuine expansion
/// overflow.
pub const INVALIDATION_CAP: &str = "delta invalidated atoms";

/// The intermediate state of a completed reasoning run that an edited
/// schema can reuse. Produced by
/// [`Reasoner::reusable_state`](crate::sat::Reasoner::reusable_state);
/// deliberately schema-borrow-free so it can outlive the base schema (and
/// be held in caches keyed by canonical hash).
#[derive(Clone, Debug)]
pub struct ReusableState {
    /// The consistent compound classes of the base schema, sorted (the
    /// order [`Expansion`] produces). Bit `i` refers to class index `i` of
    /// the base schema — reuse is only sound against an edited schema whose
    /// class indexing agrees, which callers guarantee by building both
    /// sides from canonical form.
    pub atoms: Vec<BitSet>,
    /// The maximal acceptable support over `atoms` (parallel indexing).
    pub support: Vec<bool>,
    /// The marginal-form witness, positive exactly on the support (absent
    /// when the support is empty or the run used the Direct strategy).
    pub agg_witness: Option<AggSolution>,
}

/// How much of the base run a delta run actually reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseReport {
    /// Base atoms rejected by the edited schema's consistency filter.
    pub atoms_invalidated: usize,
    /// Whether the base support and witness were reused verbatim (the
    /// zero-LP fast path: no fixpoint descent ran at all).
    pub support_reused: bool,
}

/// Builds a [`Reasoner`] for `schema` by reusing `state` from a prior run
/// on a base schema, instead of re-running the full pipeline.
///
/// `tighten_only` must be `true` iff the edit consists solely of
/// *additions* on canonical form (no constraint removed) — the caller
/// derives this from the diff classification. It gates whether the base
/// support may seed the fixpoint (see the module docs for why that is
/// sound only for tightening edits).
///
/// `max_invalidated`, when set, caps how many base atoms the edited
/// schema's filter may reject: past the cap the run aborts with
/// [`CrError::ExpansionTooLarge`] (`what == `[`INVALIDATION_CAP`]) *before*
/// any fixpoint work, so callers can fall back to a from-scratch run when
/// the dirty slice grows too large for the delta path to pay off.
///
/// Returns the reasoner plus a [`ReuseReport`]. Errors mirror the
/// from-scratch path (budget, expansion caps), plus
/// [`CrError::SignatureMismatch`] when `state` cannot belong to a schema
/// shaped like this one — callers treat that as "fall back to full check".
pub fn reasoner_from_state<'s>(
    schema: &'s Schema,
    state: &ReusableState,
    tighten_only: bool,
    max_invalidated: Option<usize>,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<(Reasoner<'s>, ReuseReport)> {
    if state.support.len() != state.atoms.len() {
        return Err(CrError::SignatureMismatch {
            what: "delta state support/atom lengths",
        });
    }
    if state
        .atoms
        .iter()
        .any(|a| a.universe() != schema.num_classes())
    {
        return Err(CrError::SignatureMismatch {
            what: "delta state atom universe vs schema class count",
        });
    }

    let tracer = budget.tracer().clone();
    let (expansion, atoms_invalidated) =
        Expansion::build_from_candidates(schema, config, budget, &state.atoms)?;
    if let Some(cap) = max_invalidated {
        if atoms_invalidated > cap {
            return Err(CrError::ExpansionTooLarge {
                what: INVALIDATION_CAP,
                limit: cap,
            });
        }
    }
    let agg = AggSystem::build(&expansion);
    tracer.add(
        cr_trace::Counter::DisequationsEmitted,
        agg.num_rows() as u64,
    );

    // Map the base support onto the surviving atoms. Both lists are sorted
    // and the survivors are a subsequence of the base atoms, so one merge
    // walk suffices.
    let survivors = expansion.compound_classes();
    let mut seed = vec![true; survivors.len()];
    let mut j = 0;
    for (i, atom) in survivors.iter().enumerate() {
        while j < state.atoms.len() && &state.atoms[j] != atom {
            j += 1;
        }
        debug_assert!(j < state.atoms.len(), "survivor not among base atoms");
        if j < state.atoms.len() {
            seed[i] = state.support[j];
            j += 1;
        }
    }

    // Zero-LP fast path: nothing invalidated and the stored witness still
    // satisfies the edited rows by pure evaluation. Then the base support
    // is achievable in the edited system, so `P*` is unchanged: for a
    // tightening edit `P*` cannot grow past the base one, and for a
    // loosening edit an all-true base support leaves no room to grow.
    if atoms_invalidated == 0 && (tighten_only || seed.iter().all(|&s| s)) {
        if let Some(w) = &state.agg_witness {
            if let Some(values) = witness_values(&agg, w) {
                if agg.lin.check(&values).is_ok() {
                    let witness = AcceptableSolution {
                        crel_counts: crate::agg::expand_to_crel_counts(&expansion, w),
                        cclass_counts: w.cclass_counts.clone(),
                    };
                    // The inherited witness was hardened when the base
                    // state was snapshotted — flag it so the next
                    // snapshot in an edit stream reuses it LP-free.
                    let reasoner = Reasoner::from_parts(
                        expansion,
                        seed,
                        Some(witness),
                        Some(w.clone()),
                        true,
                        tracer,
                    );
                    let report = ReuseReport {
                        atoms_invalidated,
                        support_reused: true,
                    };
                    return Ok((reasoner, report));
                }
            }
        }
    }

    // Fixpoint descent on the dirty slice. A tightening edit may seed from
    // the (restricted) base support — any superset of the true fixpoint
    // converges to it; a loosening edit must restart from all-true.
    let frontier = if tighten_only { Some(&seed[..]) } else { None };
    let (support, agg_witness) = crate::agg::maximal_support_agg_resumed(&agg, budget, frontier)?;
    let witness = agg_witness.as_ref().map(|w| AcceptableSolution {
        crel_counts: crate::agg::expand_to_crel_counts(&expansion, w),
        cclass_counts: w.cclass_counts.clone(),
    });
    debug_assert!(
        expansion.compound_rels().len() > 100_000
            || witness
                .as_ref()
                .is_none_or(|w| { w.verify(&crate::system::CrSystem::build(&expansion)) }),
    );
    let reasoner = Reasoner::from_parts(expansion, support, witness, agg_witness, false, tracer);
    let report = ReuseReport {
        atoms_invalidated,
        support_reused: false,
    };
    Ok((reasoner, report))
}

/// Lays the witness's counts out as a value vector over the edited
/// aggregated system's unknowns, or `None` when the shapes disagree (which
/// can only happen if the caller's alignment guarantee was violated — the
/// fast path then simply declines).
fn witness_values(agg: &AggSystem, w: &AggSolution) -> Option<Vec<Rational>> {
    if w.cclass_counts.len() != agg.cclass_vars.len() || w.marginals.len() != agg.role_aggs.len() {
        return None;
    }
    let mut values = vec![Rational::zero(); agg.lin.num_vars()];
    for (count, var) in w.cclass_counts.iter().zip(&agg.cclass_vars) {
        values[var.index()] = Rational::from_int(count.clone());
    }
    for (wrel, arel) in w.marginals.iter().zip(&agg.role_aggs) {
        if wrel.len() != arel.len() {
            return None;
        }
        for (wrole, arole) in wrel.iter().zip(arel) {
            if wrole.len() != arole.len() {
                return None;
            }
            for (&(wcc, ref count), &(acc, var)) in wrole.iter().zip(arole) {
                if wcc != acc {
                    return None;
                }
                values[var.index()] = Rational::from_int(count.clone());
            }
        }
    }
    Some(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Reasoner, Strategy};
    use crate::schema::{Card, SchemaBuilder};

    fn meeting() -> Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.isa(discussant, speaker);
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::new(0, Some(2)))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        b.build().unwrap()
    }

    /// Rebuilds the meeting schema with one cardinality changed:
    /// `card Talk in Participates.U4` gets the given window.
    fn meeting_edited(min: u64, max: Option<u64>) -> Schema {
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.isa(discussant, speaker);
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::new(0, Some(2)))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::new(min, max))
            .unwrap();
        b.build().unwrap()
    }

    fn delta_matches_scratch(base: &Schema, edited: &Schema, tighten_only: bool) -> ReuseReport {
        let config = ExpansionConfig::default();
        let budget = Budget::unlimited();
        let base_run = Reasoner::with_budget(base, &config, Strategy::Aggregated, &budget).unwrap();
        let state = base_run.reusable_state();
        let (delta, report) =
            reasoner_from_state(edited, &state, tighten_only, None, &config, &budget).unwrap();
        let scratch =
            Reasoner::with_budget(edited, &config, Strategy::Aggregated, &budget).unwrap();
        assert_eq!(delta.support(), scratch.support());
        assert_eq!(
            delta.unsatisfiable_classes(),
            scratch.unsatisfiable_classes()
        );
        assert_eq!(delta.unsatisfiable_rels(), scratch.unsatisfiable_rels());
        report
    }

    #[test]
    fn identical_schema_takes_fast_path() {
        let base = meeting();
        let edited = meeting();
        let report = delta_matches_scratch(&base, &edited, true);
        assert_eq!(report.atoms_invalidated, 0);
        assert!(report.support_reused, "no-op edit must not solve any LP");
    }

    #[test]
    fn widening_card_is_loosening_and_matches() {
        let base = meeting();
        let edited = meeting_edited(0, None);
        let report = delta_matches_scratch(&base, &edited, false);
        assert_eq!(report.atoms_invalidated, 0);
    }

    #[test]
    fn tightening_card_that_flips_unsat_matches() {
        // Forcing each Talk into >= 3 Participates tuples while each
        // Discussant participates exactly once and holds at most 2 talks
        // makes the discussant side infeasible (Figure 1 style imbalance).
        let base = meeting();
        let edited = meeting_edited(3, None);
        let report = delta_matches_scratch(&base, &edited, true);
        assert_eq!(report.atoms_invalidated, 0);
        assert!(
            !report.support_reused,
            "a flipped verdict cannot reuse the witness"
        );
    }

    #[test]
    fn added_disjointness_invalidates_atoms() {
        let base = meeting();
        let mut b = SchemaBuilder::new();
        let speaker = b.class("Speaker");
        let discussant = b.class("Discussant");
        let talk = b.class("Talk");
        let holds = b
            .relationship("Holds", [("U1", speaker), ("U2", talk)])
            .unwrap();
        let participates = b
            .relationship("Participates", [("U3", discussant), ("U4", talk)])
            .unwrap();
        b.isa(discussant, speaker);
        b.card(speaker, b.role(holds, 0), Card::at_least(1))
            .unwrap();
        b.card(discussant, b.role(holds, 0), Card::new(0, Some(2)))
            .unwrap();
        b.card(talk, b.role(holds, 1), Card::exactly(1)).unwrap();
        b.card(discussant, b.role(participates, 0), Card::exactly(1))
            .unwrap();
        b.card(talk, b.role(participates, 1), Card::at_least(1))
            .unwrap();
        b.disjoint([discussant, talk]).unwrap();
        let edited = b.build().unwrap();
        let report = delta_matches_scratch(&base, &edited, true);
        assert!(report.atoms_invalidated > 0);
    }

    #[test]
    fn mismatched_state_is_rejected() {
        let base = meeting();
        let run = Reasoner::new(&base).unwrap();
        let state = run.reusable_state();
        let mut b = SchemaBuilder::new();
        b.class("Lonely");
        let other = b.build().unwrap();
        let result = reasoner_from_state(
            &other,
            &state,
            true,
            None,
            &ExpansionConfig::default(),
            &Budget::unlimited(),
        );
        assert!(matches!(
            result.err(),
            Some(CrError::SignatureMismatch { .. })
        ));
    }
}
