//! Versioned checkpoints for interrupted reasoning runs.
//!
//! When the [`Budget`] trips mid-fixpoint, the engine
//! deposits its surviving candidate set on the budget (see
//! [`Budget::offer_frontier`](crate::Budget::offer_frontier)); a caller
//! that wants to resume later serializes that state — together with the
//! schema source and its canonical hash — into a [`Checkpoint`]. The CLI
//! writes it with `crsat check --checkpoint FILE` and reads it back with
//! `crsat resume FILE`.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "command": "check",
//!   "schema": "class A\n...",
//!   "canonical_hash": "00f3…(32 hex digits)",
//!   "strategy": "aggregated",
//!   "stage": "fixpoint",
//!   "frontier": "110101",
//!   "steps": 4321
//! }
//! ```
//!
//! * `schema` is re-parseable DSL source (the CLI stores
//!   `cr_lang::print_schema` output, *not* the canonical form, which is a
//!   hashing format and deliberately not parseable).
//! * `canonical_hash` binds the checkpoint to the schema's canonical
//!   content: resume recomputes the hash of the re-parsed schema and
//!   refuses a checkpoint whose hash disagrees — editing the schema file
//!   between interrupt and resume cannot smuggle a stale frontier in.
//! * `frontier` encodes the fixpoint's `alive` set as a `'0'`/`'1'`
//!   string, one character per compound class in expansion order; `null`
//!   (or absent) means the run was interrupted before the fixpoint
//!   produced a resumable state (e.g. during expansion) and resume simply
//!   starts over.
//! * `steps` is the interrupted budget's charged-unit account, reported on
//!   resume as `resumed_from_step`.
//!
//! Version policy: `version` is checked on parse and mismatches are
//! rejected — a checkpoint is a short-lived artifact (hours, not years),
//! so cross-version migration is deliberately out of scope. Adding a key
//! is a compatible change; renaming/removing one bumps
//! [`CHECKPOINT_VERSION`].

use std::fmt::Write as _;

use cr_trace::json::{self, write_escaped, Value};

use crate::budget::{Budget, Stage};

/// Current checkpoint schema version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A serialized snapshot of an interrupted reasoning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// The interrupted command (`"check"` today).
    pub command: String,
    /// Re-parseable schema source.
    pub schema_source: String,
    /// Lowercase 32-digit hex of the schema's 128-bit canonical hash.
    pub canonical_hash: String,
    /// Solving strategy of the interrupted run (`"aggregated"`/`"direct"`).
    pub strategy: String,
    /// Name of the interrupted stage ([`Stage::as_str`]).
    pub stage: String,
    /// The fixpoint's surviving candidate set, if one was deposited.
    pub frontier: Option<Vec<bool>>,
    /// Work units the interrupted budget had charged.
    pub steps: u64,
}

impl Checkpoint {
    /// Assembles a checkpoint from an interrupted `budget` (harvesting the
    /// frontier the engine deposited, if any).
    pub fn from_interrupted(
        command: &str,
        schema_source: String,
        canonical_hash: u128,
        strategy: &str,
        tripped_stage: Stage,
        budget: &Budget,
    ) -> Checkpoint {
        let frontier = budget.take_frontier();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            command: command.to_string(),
            schema_source,
            canonical_hash: format!("{canonical_hash:032x}"),
            strategy: strategy.to_string(),
            stage: frontier
                .as_ref()
                .map(|f| f.stage.as_str().to_string())
                .unwrap_or_else(|| tripped_stage.as_str().to_string()),
            frontier: frontier.map(|f| f.alive),
            steps: budget.steps(),
        }
    }

    /// Serializes to the version-1 JSON schema (single line, trailing
    /// newline included so the file is a well-formed text file).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.schema_source.len());
        let _ = write!(out, "{{\"version\":{}", self.version);
        out.push_str(",\"command\":");
        write_escaped(&mut out, &self.command);
        out.push_str(",\"schema\":");
        write_escaped(&mut out, &self.schema_source);
        out.push_str(",\"canonical_hash\":");
        write_escaped(&mut out, &self.canonical_hash);
        out.push_str(",\"strategy\":");
        write_escaped(&mut out, &self.strategy);
        out.push_str(",\"stage\":");
        write_escaped(&mut out, &self.stage);
        out.push_str(",\"frontier\":");
        match &self.frontier {
            None => out.push_str("null"),
            Some(alive) => {
                out.push('"');
                out.extend(alive.iter().map(|&a| if a { '1' } else { '0' }));
                out.push('"');
            }
        }
        let _ = write!(out, ",\"steps\":{}}}", self.steps);
        out.push('\n');
        out
    }

    /// Parses and validates a version-1 checkpoint.
    pub fn from_json(input: &str) -> Result<Checkpoint, String> {
        let v = json::parse(input).map_err(|e| format!("checkpoint is not valid JSON: {e}"))?;
        let obj = v.as_obj().ok_or("checkpoint must be a JSON object")?;
        let version = obj
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer \"version\"")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads version {CHECKPOINT_VERSION})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string {key:?}"))
        };
        let frontier = match obj.get("frontier") {
            None | Some(Value::Null) => None,
            Some(Value::Str(bits)) => {
                let mut alive = Vec::with_capacity(bits.len());
                for ch in bits.chars() {
                    match ch {
                        '0' => alive.push(false),
                        '1' => alive.push(true),
                        other => return Err(format!("invalid frontier character {other:?}")),
                    }
                }
                Some(alive)
            }
            Some(_) => return Err("\"frontier\" must be a bit string or null".to_string()),
        };
        Ok(Checkpoint {
            version,
            command: str_field("command")?,
            schema_source: str_field("schema")?,
            canonical_hash: str_field("canonical_hash")?,
            strategy: str_field("strategy")?,
            stage: str_field("stage")?,
            frontier,
            steps: obj
                .get("steps")
                .and_then(Value::as_u64)
                .ok_or("missing or non-integer \"steps\"")?,
        })
    }

    /// Verifies the checkpoint was taken against `schema_hash` (the
    /// canonical hash of the schema the resuming run re-parsed).
    pub fn matches_schema(&self, schema_hash: u128) -> bool {
        self.canonical_hash == format!("{schema_hash:032x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(frontier: Option<Vec<bool>>) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            command: "check".to_string(),
            schema_source: "class A\nclass B\nisa A B\n".to_string(),
            canonical_hash: format!("{:032x}", 0xDEAD_BEEFu128),
            strategy: "aggregated".to_string(),
            stage: "fixpoint".to_string(),
            frontier,
            steps: 4321,
        }
    }

    #[test]
    fn json_round_trips_with_and_without_frontier() {
        for cp in [
            sample(None),
            sample(Some(vec![true, false, true, true, false])),
            sample(Some(Vec::new())),
        ] {
            let parsed = Checkpoint::from_json(&cp.to_json()).expect("parse back");
            assert_eq!(parsed, cp);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut cp = sample(None);
        cp.version = CHECKPOINT_VERSION + 1;
        let err = Checkpoint::from_json(&cp.to_json()).unwrap_err();
        assert!(err.contains("version"), "unhelpful error: {err}");
    }

    #[test]
    fn hash_binding_detects_schema_edits() {
        let cp = sample(None);
        assert!(cp.matches_schema(0xDEAD_BEEF));
        assert!(!cp.matches_schema(0xDEAD_BEEF + 1));
    }

    #[test]
    fn garbage_frontier_is_rejected() {
        let json = sample(None)
            .to_json()
            .replace("\"frontier\":null", "\"frontier\":\"10x\"");
        assert!(Checkpoint::from_json(&json).is_err());
    }

    #[test]
    fn from_interrupted_harvests_the_offered_frontier() {
        let budget = Budget::unlimited();
        budget.charge(Stage::Fixpoint, 17).expect("unlimited");
        budget.offer_frontier(Stage::Fixpoint, &[true, false, true]);
        let cp = Checkpoint::from_interrupted(
            "check",
            "class A\n".to_string(),
            7,
            "aggregated",
            Stage::Fixpoint,
            &budget,
        );
        assert_eq!(cp.frontier, Some(vec![true, false, true]));
        assert_eq!(cp.stage, "fixpoint");
        assert_eq!(cp.steps, 17);
        assert!(cp.matches_schema(7));
        // The slot was drained: a second harvest sees no frontier and
        // records the tripped stage instead.
        let cp2 = Checkpoint::from_interrupted(
            "check",
            "class A\n".to_string(),
            7,
            "aggregated",
            Stage::Expansion,
            &budget,
        );
        assert_eq!(cp2.frontier, None);
        assert_eq!(cp2.stage, "expansion");
    }
}
