//! Typed indices into a [`Schema`](crate::Schema).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index. Callers are responsible for
            /// the index being valid for the schema at hand.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a class.
    ClassId,
    "c"
);
id_type!(
    /// Identifies a relationship.
    RelId,
    "r"
);
id_type!(
    /// Identifies a role; roles are globally unique (each role belongs to
    /// exactly one relationship, as the paper requires).
    RoleId,
    "u"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_debug() {
        let c = ClassId::from_index(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c:?}"), "c3");
        assert_eq!(format!("{:?}", RelId::from_index(0)), "r0");
        assert_eq!(format!("{:?}", RoleId::from_index(9)), "u9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ClassId::from_index(1) < ClassId::from_index(2));
    }
}
