//! Error type for schema construction and reasoning.

use std::fmt;

use crate::ids::{ClassId, RoleId};

/// Errors reported by `cr-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrError {
    /// Two classes (or two relationships) share a name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A relationship was declared with fewer than two roles (the paper
    /// requires arity >= 2).
    ArityTooSmall {
        /// The relationship.
        rel: String,
        /// The declared arity.
        arity: usize,
    },
    /// Two roles of the same relationship share a name.
    DuplicateRole {
        /// The relationship.
        rel: String,
        /// The duplicated role name.
        role: String,
    },
    /// A cardinality constraint `card(C, R.U)` was declared for a class `C`
    /// that is not an ISA-descendant of the role's primary class (the paper
    /// only defines minc/maxc for `C ≼* C_U`).
    CardOnNonSubclass {
        /// The constrained class.
        class: ClassId,
        /// The role.
        role: RoleId,
    },
    /// The same `(class, role)` pair received two cardinality declarations.
    DuplicateCard {
        /// The constrained class.
        class: ClassId,
        /// The role.
        role: RoleId,
    },
    /// A disjointness or covering declaration mentioned fewer than two /
    /// one classes respectively.
    DegenerateConstraint {
        /// Human-readable description.
        what: &'static str,
    },
    /// The expansion exceeded the configured size budget (it is exponential
    /// in the number of classes; see
    /// [`ExpansionConfig`](crate::expansion::ExpansionConfig)).
    ExpansionTooLarge {
        /// What overflowed ("compound classes" or "compound relationships").
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// Model construction would materialize more individuals/tuples than
    /// the configured budget.
    ModelTooLarge {
        /// The configured limit.
        limit: u64,
    },
    /// An operation needed a satisfiable class but the class is
    /// unsatisfiable.
    UnsatisfiableClass {
        /// The class.
        class: ClassId,
    },
    /// The literal Theorem 3.4 `Z`-enumeration was asked to run on an
    /// expansion with too many compound classes (it is exponential in that
    /// number).
    ZEnumerationTooLarge {
        /// Number of compound-class unknowns.
        unknowns: usize,
    },
    /// A referenced id does not belong to the schema.
    InvalidId {
        /// Human-readable description.
        what: &'static str,
    },
    /// Two schemas being compared do not share a signature (classes,
    /// relationships, roles matched by name).
    SignatureMismatch {
        /// What differed.
        what: &'static str,
    },
    /// A resource [`Budget`](crate::budget::Budget) was exhausted: the
    /// deadline passed, a step limit tripped, or the computation was
    /// cancelled. The reasoning question is *unanswered* — this is not an
    /// unsatisfiability verdict.
    BudgetExceeded {
        /// Pipeline stage whose charge tripped the governor.
        stage: crate::budget::Stage,
        /// Work spent when the governor tripped: work units for step
        /// limits, elapsed milliseconds for deadlines.
        spent: u64,
        /// The limit that was exceeded, in the same unit as `spent`;
        /// `0` means the computation was cancelled by the caller.
        limit: u64,
    },
    /// A `cr-faults` failpoint injected a failure at the named site (only
    /// reachable in builds with `--features faults`). Like
    /// [`BudgetExceeded`](CrError::BudgetExceeded), the question is
    /// *unanswered* — this is never a verdict.
    FaultInjected {
        /// The failpoint site that fired.
        site: &'static str,
    },
}

impl fmt::Display for CrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrError::DuplicateName { name } => write!(f, "duplicate name {name:?}"),
            CrError::ArityTooSmall { rel, arity } => write!(
                f,
                "relationship {rel:?} has arity {arity}; the CR model requires at least 2"
            ),
            CrError::DuplicateRole { rel, role } => {
                write!(f, "relationship {rel:?} declares role {role:?} twice")
            }
            CrError::CardOnNonSubclass { class, role } => write!(
                f,
                "cardinality constraint on class {class:?} for role {role:?}, but the class \
                 is not an ISA-descendant of the role's primary class"
            ),
            CrError::DuplicateCard { class, role } => write!(
                f,
                "two cardinality declarations for class {class:?} on role {role:?}"
            ),
            CrError::DegenerateConstraint { what } => write!(f, "degenerate constraint: {what}"),
            CrError::ExpansionTooLarge { what, limit } => {
                write!(f, "expansion exceeds the budget of {limit} {what}")
            }
            CrError::ModelTooLarge { limit } => {
                write!(
                    f,
                    "constructed model would exceed the budget of {limit} elements"
                )
            }
            CrError::UnsatisfiableClass { class } => {
                write!(f, "class {class:?} is unsatisfiable")
            }
            CrError::ZEnumerationTooLarge { unknowns } => write!(
                f,
                "Z-enumeration over {unknowns} compound-class unknowns is too large \
                 (2^{unknowns} subsets)"
            ),
            CrError::InvalidId { what } => write!(f, "invalid id: {what}"),
            CrError::SignatureMismatch { what } => {
                write!(f, "schema signatures differ: {what}")
            }
            CrError::BudgetExceeded {
                stage,
                spent,
                limit,
            } => {
                if *limit == 0 {
                    write!(
                        f,
                        "reasoning cancelled during {stage} (after {spent} work units)"
                    )
                } else {
                    write!(
                        f,
                        "resource budget exceeded during {stage}: spent {spent} of {limit}"
                    )
                }
            }
            CrError::FaultInjected { site } => write!(f, "fault injected at {site}"),
        }
    }
}

impl std::error::Error for CrError {}

/// Shared result alias.
pub(crate) type CrResult<T> = Result<T, CrError>;
