//! Explaining unsatisfiability: minimal unsatisfiable constraint sets.
//!
//! Section 5 of the paper proposes, as future work, "a technique that
//! provides the designer with a minimum number of constraints that are
//! unsatisfiable, thus supporting her in schema debugging". This module
//! implements the standard deletion-based **minimal unsatisfiable subset**
//! over the schema's removable constraints (ISA statements, cardinality
//! declarations, disjointness groups, coverings): every constraint in the
//! returned core is necessary — removing any single one restores
//! satisfiability of the target class.
//!
//! Removing an ISA statement can orphan cardinality refinements that were
//! only well-formed through it (`card(C, R.U)` needs `C ≼* primary`); such
//! orphans are dropped together with the statement, so "removing an ISA
//! edge" means removing it *and* everything that rode on it.

use crate::budget::Budget;
use crate::error::CrResult;
use crate::expansion::ExpansionConfig;
use crate::ids::ClassId;
use crate::isa::IsaClosure;
use crate::sat::{Reasoner, Strategy};
use crate::schema::{Schema, SchemaBuilder};

/// A removable constraint of a schema, referenced by declaration index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintRef {
    /// `schema.isa_statements()[i]`.
    Isa(usize),
    /// `schema.card_declarations()[i]`.
    Card(usize),
    /// `schema.disjointness_groups()[i]`.
    Disjoint(usize),
    /// `schema.coverings()[i]`.
    Covering(usize),
}

impl ConstraintRef {
    /// Human-readable rendering against the schema it refers to.
    pub fn describe(&self, schema: &Schema) -> String {
        match *self {
            ConstraintRef::Isa(i) => {
                let (sub, sup) = schema.isa_statements()[i];
                format!("{} ≼ {}", schema.class_name(sub), schema.class_name(sup))
            }
            ConstraintRef::Card(i) => {
                let d = &schema.card_declarations()[i];
                format!(
                    "card {} in {}.{}: {}",
                    schema.class_name(d.class),
                    schema.rel_name(schema.rel_of_role(d.role)),
                    schema.role_name(d.role),
                    d.card
                )
            }
            ConstraintRef::Disjoint(i) => {
                let names: Vec<&str> = schema.disjointness_groups()[i]
                    .iter()
                    .map(|&c| schema.class_name(c))
                    .collect();
                format!("disjoint {{{}}}", names.join(", "))
            }
            ConstraintRef::Covering(i) => {
                let (c, covers) = &schema.coverings()[i];
                let names: Vec<&str> = covers.iter().map(|&c| schema.class_name(c)).collect();
                format!("cover {} ≼ {}", schema.class_name(*c), names.join(" ∪ "))
            }
        }
    }
}

/// All removable constraints of a schema, in a stable order.
fn all_constraints(schema: &Schema) -> Vec<ConstraintRef> {
    let mut out = Vec::new();
    out.extend((0..schema.isa_statements().len()).map(ConstraintRef::Isa));
    out.extend((0..schema.card_declarations().len()).map(ConstraintRef::Card));
    out.extend((0..schema.disjointness_groups().len()).map(ConstraintRef::Disjoint));
    out.extend((0..schema.coverings().len()).map(ConstraintRef::Covering));
    out
}

/// Rebuilds `schema` with only the `active` constraints, dropping
/// cardinality declarations orphaned by removed ISA statements.
fn subschema(schema: &Schema, active: &[bool], refs: &[ConstraintRef]) -> Schema {
    let keep = |r: ConstraintRef| {
        refs.iter()
            .position(|&x| x == r)
            .map(|i| active[i])
            .unwrap_or(true)
    };
    let (mut b, classes, role_map) = SchemaBuilder::copy_structure(schema);
    for (i, &(sub, sup)) in schema.isa_statements().iter().enumerate() {
        if keep(ConstraintRef::Isa(i)) {
            b.isa(classes[sub.index()], classes[sup.index()]);
        }
    }
    // Closure over the *kept* ISA edges decides which cards survive.
    let kept_schema_probe = {
        let mut probe = SchemaBuilder::new();
        let pc: Vec<ClassId> = schema
            .classes()
            .map(|c| probe.class(schema.class_name(c)))
            .collect();
        for (i, &(sub, sup)) in schema.isa_statements().iter().enumerate() {
            if keep(ConstraintRef::Isa(i)) {
                probe.isa(pc[sub.index()], pc[sup.index()]);
            }
        }
        probe
            .build()
            .expect("classes and isa alone always validate")
    };
    let closure = IsaClosure::compute(&kept_schema_probe);
    for (i, d) in schema.card_declarations().iter().enumerate() {
        if keep(ConstraintRef::Card(i))
            && closure.is_subclass_of(d.class, schema.primary_class(d.role))
        {
            b.card(classes[d.class.index()], role_map[d.role.index()], d.card)
                .expect("unique in the source schema");
        }
    }
    for (i, group) in schema.disjointness_groups().iter().enumerate() {
        if keep(ConstraintRef::Disjoint(i)) {
            b.disjoint(group.iter().map(|c| classes[c.index()]))
                .expect("validated in the source schema");
        }
    }
    for (i, (c, covers)) in schema.coverings().iter().enumerate() {
        if keep(ConstraintRef::Covering(i)) {
            b.covering(
                classes[c.index()],
                covers.iter().map(|c| classes[c.index()]),
            )
            .expect("validated in the source schema");
        }
    }
    b.build().expect("subschema of a valid schema validates")
}

fn class_unsat(
    schema: &Schema,
    class: ClassId,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<bool> {
    let r = Reasoner::with_budget(schema, config, Strategy::default(), budget)?;
    Ok(!r.is_class_satisfiable(class))
}

/// Computes a minimal unsatisfiable subset of constraints for an
/// unsatisfiable `class`: with the returned constraints (and the schema's
/// structure) the class is unsatisfiable, and dropping any single one of
/// them restores satisfiability. Returns `None` when the class is in fact
/// satisfiable.
///
/// ```
/// use cr_core::expansion::ExpansionConfig;
/// use cr_core::explain::minimal_unsat_core;
/// use cr_core::schema::{Card, SchemaBuilder};
///
/// // The paper's Figure 1 — all three constraints conspire.
/// let mut b = SchemaBuilder::new();
/// let c = b.class("C");
/// let d = b.class("D");
/// b.isa(d, c);
/// let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
/// b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
/// b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
/// let schema = b.build().unwrap();
///
/// let core = minimal_unsat_core(&schema, c, &ExpansionConfig::default())
///     .unwrap()
///     .expect("Figure 1 is finitely unsatisfiable");
/// assert_eq!(core.len(), 3);
/// ```
pub fn minimal_unsat_core(
    schema: &Schema,
    class: ClassId,
    config: &ExpansionConfig,
) -> CrResult<Option<Vec<ConstraintRef>>> {
    minimal_unsat_core_governed(schema, class, config, &Budget::unlimited())
}

/// [`minimal_unsat_core`] under a resource [`Budget`]: every deletion
/// probe's expansion and fixpoint charge the shared budget, so the whole
/// quadratic-in-constraints search is interruptible. The search runs under
/// an `"explain"` span on the budget's tracer.
pub fn minimal_unsat_core_governed(
    schema: &Schema,
    class: ClassId,
    config: &ExpansionConfig,
    budget: &Budget,
) -> CrResult<Option<Vec<ConstraintRef>>> {
    let _span = budget.tracer().span("explain");
    if !class_unsat(schema, class, config, budget)? {
        return Ok(None);
    }
    let refs = all_constraints(schema);
    let mut active = vec![true; refs.len()];
    for i in 0..refs.len() {
        active[i] = false;
        let sub = subschema(schema, &active, &refs);
        if !class_unsat(&sub, class, config, budget)? {
            // Constraint i is necessary; keep it.
            active[i] = true;
        }
    }
    Ok(Some(
        refs.into_iter()
            .zip(&active)
            .filter_map(|(r, &a)| a.then_some(r))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Card;

    fn figure1() -> (Schema, ClassId) {
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        (b.build().unwrap(), c)
    }

    #[test]
    fn satisfiable_class_has_no_core() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let schema = b.build().unwrap();
        let core = minimal_unsat_core(&schema, a, &ExpansionConfig::default()).unwrap();
        assert!(core.is_none());
    }

    #[test]
    fn figure1_core_is_all_three_constraints() {
        // ISA + both cards are all needed to make Figure 1 unsatisfiable.
        let (schema, c) = figure1();
        let core = minimal_unsat_core(&schema, c, &ExpansionConfig::default())
            .unwrap()
            .expect("unsat");
        assert_eq!(core.len(), 3);
        assert!(core.contains(&ConstraintRef::Isa(0)));
        assert!(core.contains(&ConstraintRef::Card(0)));
        assert!(core.contains(&ConstraintRef::Card(1)));
    }

    #[test]
    fn irrelevant_constraints_dropped() {
        // Figure 1 plus an unrelated satisfiable corner: the core must not
        // mention the unrelated card.
        let mut b = SchemaBuilder::new();
        let c = b.class("C");
        let d = b.class("D");
        let e = b.class("E");
        let f = b.class("F");
        b.isa(d, c);
        let r = b.relationship("R", [("U1", c), ("U2", d)]).unwrap();
        let q = b.relationship("Q", [("V1", e), ("V2", f)]).unwrap();
        b.card(c, b.role(r, 0), Card::at_least(2)).unwrap();
        b.card(d, b.role(r, 1), Card::at_most(1)).unwrap();
        b.card(e, b.role(q, 0), Card::exactly(1)).unwrap();
        let schema = b.build().unwrap();
        let core = minimal_unsat_core(&schema, c, &ExpansionConfig::default())
            .unwrap()
            .expect("unsat");
        assert_eq!(core.len(), 3);
        assert!(!core.contains(&ConstraintRef::Card(2)));
    }

    #[test]
    fn core_from_disjointness() {
        // A ≼ P, A ≼ Q, disjoint(P, Q): A unsatisfiable; every piece needed.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let p = b.class("P");
        let q = b.class("Q");
        b.isa(a, p);
        b.isa(a, q);
        b.disjoint([p, q]).unwrap();
        let schema = b.build().unwrap();
        let core = minimal_unsat_core(&schema, a, &ExpansionConfig::default())
            .unwrap()
            .expect("unsat");
        assert_eq!(core.len(), 3);
        assert!(core.contains(&ConstraintRef::Disjoint(0)));
    }

    #[test]
    fn describe_is_readable() {
        let (schema, _) = figure1();
        assert_eq!(ConstraintRef::Isa(0).describe(&schema), "D ≼ C");
        assert!(ConstraintRef::Card(0)
            .describe(&schema)
            .contains("card C in R.U1"));
    }
}
