//! End-to-end tests of the `crsat` binary.

use std::path::PathBuf;
use std::process::Command;

fn crsat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_crsat"))
}

fn schema_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../schemas")
        .join(name)
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("crsat-test-{name}-{}.cr", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn check_satisfiable_schema_exits_zero() {
    let out = crsat()
        .args(["check", schema_path("meeting.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Speaker"));
    assert!(stdout.contains("all 3 classes satisfiable"));
}

#[test]
fn check_unsat_schema_exits_one() {
    let out = crsat()
        .args(["check", schema_path("figure1.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("UNSATISFIABLE"));
}

#[test]
fn explain_names_the_core() {
    let out = crsat()
        .args(["explain", schema_path("figure1.cr").to_str().unwrap(), "C"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("minimal core (3 constraints)"), "{stdout}");
    assert!(stdout.contains("D ≼ C"));
}

#[test]
fn implies_isa_query() {
    let out = crsat()
        .args([
            "implies",
            schema_path("meeting.cr").to_str().unwrap(),
            "isa",
            "Speaker",
            "Discussant",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("implied"));
}

#[test]
fn bounds_query() {
    let out = crsat()
        .args([
            "bounds",
            schema_path("meeting.cr").to_str().unwrap(),
            "Speaker",
            "Holds.U1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(1, 1)"), "{stdout}");
}

#[test]
fn model_verifies() {
    let out = crsat()
        .args(["model", schema_path("meeting.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("verified against Definition 2.2: ok"));
}

#[test]
fn fmt_is_idempotent() {
    let out = crsat()
        .args(["fmt", schema_path("meeting.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let once = String::from_utf8(out.stdout).unwrap();
    let tmp = write_temp("fmt", &once);
    let out2 = crsat()
        .args(["fmt", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    let twice = String::from_utf8(out2.stdout).unwrap();
    assert_eq!(once, twice);
    let _ = std::fs::remove_file(tmp);
}

#[test]
fn parse_error_reports_position() {
    let tmp = write_temp("bad", "class A\nclass B;");
    let out = crsat()
        .args(["check", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("2:1"), "position missing: {stderr}");
    let _ = std::fs::remove_file(tmp);
}

#[test]
fn unknown_command_usage() {
    let out = crsat().args(["frobnicate", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage"));
}

#[test]
fn report_on_university_schema() {
    let out = crsat()
        .args(["report", schema_path("university.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("## Satisfiability"));
    assert!(stdout.contains("TA: satisfiable"));
    // TA inherits Student's minimum 1 under its own declared (0,2).
    assert!(
        stdout.contains("TA in Enrolls.who: declared (0,2), implied (1,"),
        "{stdout}"
    );
}

#[test]
fn check_sealed_hierarchy() {
    let out = crsat()
        .args(["check", schema_path("shapes.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("all 5 classes satisfiable"), "{stdout}");
}

#[test]
fn system_verbatim_matches_figure5_inventory() {
    let out = crsat()
        .args(["system", schema_path("meeting.cr").to_str().unwrap(), "-v"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let vars = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("Var("))
        .count();
    assert_eq!(vars, 105, "Figure 5 unknown inventory");
}
