//! End-to-end tests of the `crsat` binary.

use std::path::PathBuf;
use std::process::Command;

fn crsat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_crsat"))
}

fn schema_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../schemas")
        .join(name)
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("crsat-test-{name}-{}.cr", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn check_satisfiable_schema_exits_zero() {
    let out = crsat()
        .args(["check", schema_path("meeting.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Speaker"));
    assert!(stdout.contains("all 3 classes satisfiable"));
}

#[test]
fn check_unsat_schema_exits_one() {
    let out = crsat()
        .args(["check", schema_path("figure1.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("UNSATISFIABLE"));
}

#[test]
fn explain_names_the_core() {
    let out = crsat()
        .args(["explain", schema_path("figure1.cr").to_str().unwrap(), "C"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("minimal core (3 constraints)"), "{stdout}");
    assert!(stdout.contains("D ≼ C"));
}

#[test]
fn implies_isa_query() {
    let out = crsat()
        .args([
            "implies",
            schema_path("meeting.cr").to_str().unwrap(),
            "isa",
            "Speaker",
            "Discussant",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("implied"));
}

#[test]
fn bounds_query() {
    let out = crsat()
        .args([
            "bounds",
            schema_path("meeting.cr").to_str().unwrap(),
            "Speaker",
            "Holds.U1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(1, 1)"), "{stdout}");
}

#[test]
fn model_verifies() {
    let out = crsat()
        .args(["model", schema_path("meeting.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("verified against Definition 2.2: ok"));
}

#[test]
fn fmt_is_idempotent() {
    let out = crsat()
        .args(["fmt", schema_path("meeting.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let once = String::from_utf8(out.stdout).unwrap();
    let tmp = write_temp("fmt", &once);
    let out2 = crsat()
        .args(["fmt", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    let twice = String::from_utf8(out2.stdout).unwrap();
    assert_eq!(once, twice);
    let _ = std::fs::remove_file(tmp);
}

#[test]
fn parse_error_reports_position() {
    let tmp = write_temp("bad", "class A\nclass B;");
    let out = crsat()
        .args(["check", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("2:1"), "position missing: {stderr}");
    let _ = std::fs::remove_file(tmp);
}

#[test]
fn unknown_command_usage() {
    let out = crsat().args(["frobnicate", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage"));
}

#[test]
fn report_on_university_schema() {
    let out = crsat()
        .args(["report", schema_path("university.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("## Satisfiability"));
    assert!(stdout.contains("TA: satisfiable"));
    // TA inherits Student's minimum 1 under its own declared (0,2).
    assert!(
        stdout.contains("TA in Enrolls.who: declared (0,2), implied (1,"),
        "{stdout}"
    );
}

#[test]
fn check_sealed_hierarchy() {
    let out = crsat()
        .args(["check", schema_path("shapes.cr").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("all 5 classes satisfiable"), "{stdout}");
}

#[test]
fn stats_file_written_on_success() {
    let stats = std::env::temp_dir().join(format!("crsat-stats-ok-{}.json", std::process::id()));
    let out = crsat()
        .args([
            "check",
            schema_path("meeting.cr").to_str().unwrap(),
            "--stats",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let report = cr_trace::json::parse(std::fs::read_to_string(&stats).unwrap().trim()).unwrap();
    assert_eq!(report.get("command").unwrap().as_str(), Some("check"));
    assert_eq!(report.get("outcome").unwrap().as_str(), Some("ok"));
    let counters = report.get("counters").unwrap();
    assert!(
        counters
            .get("compound_classes_considered")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(counters.get("simplex_pivots").unwrap().as_u64().unwrap() > 0);
    let stages = report.get("stages").unwrap().as_arr().unwrap();
    let expansion = stages
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("expansion"))
        .expect("expansion stage present");
    assert_eq!(expansion.get("calls").unwrap().as_u64(), Some(1));
    assert!(expansion.get("duration_ns").unwrap().as_u64().unwrap() > 0);
    let _ = std::fs::remove_file(stats);
}

#[test]
fn stats_file_written_on_budget_exceeded() {
    // The stats report must be written even when the process exits 3, and
    // the machine-readable stderr protocol line must keep its exact shape.
    let stats = std::env::temp_dir().join(format!("crsat-stats-be-{}.json", std::process::id()));
    let out = crsat()
        .args([
            "check",
            schema_path("university.cr").to_str().unwrap(),
            "--max-expansion=3",
            "--stats",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.starts_with("budget-exceeded stage=expansion spent="),
        "protocol line changed: {stderr:?}"
    );
    assert!(stderr.contains(" limit=3"), "{stderr:?}");
    assert_eq!(stderr.lines().count(), 1, "exactly one stderr line");
    let report = cr_trace::json::parse(std::fs::read_to_string(&stats).unwrap().trim()).unwrap();
    assert_eq!(
        report.get("outcome").unwrap().as_str(),
        Some("budget-exceeded")
    );
    let stages = report.get("stages").unwrap().as_arr().unwrap();
    let expansion = stages
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("expansion"))
        .expect("expansion stage present");
    assert_eq!(expansion.get("budget_steps").unwrap().as_u64(), Some(4));
    let _ = std::fs::remove_file(stats);
}

#[test]
fn stats_outcome_negative_on_exit_one() {
    let stats = std::env::temp_dir().join(format!("crsat-stats-neg-{}.json", std::process::id()));
    let out = crsat()
        .args([
            "check",
            schema_path("figure1.cr").to_str().unwrap(),
            &format!("--stats={}", stats.to_str().unwrap()),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let report = cr_trace::json::parse(std::fs::read_to_string(&stats).unwrap().trim()).unwrap();
    assert_eq!(report.get("outcome").unwrap().as_str(), Some("negative"));
    assert!(report
        .get("target")
        .unwrap()
        .as_str()
        .unwrap()
        .ends_with("figure1.cr"));
    let _ = std::fs::remove_file(stats);
}

#[test]
fn trace_json_lines_all_parse() {
    let out = crsat()
        .args([
            "check",
            schema_path("figure1.cr").to_str().unwrap(),
            "--trace=json",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.is_empty());
    let mut saw_expansion_end = false;
    for line in stderr.lines() {
        let v = cr_trace::json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if v.get("event").and_then(|e| e.as_str()) == Some("span_end")
            && v.get("name").and_then(|n| n.as_str()) == Some("expansion")
        {
            saw_expansion_end = true;
            assert!(v.get("dur_ns").unwrap().as_u64().is_some());
        }
    }
    assert!(saw_expansion_end, "no expansion span_end in: {stderr}");
}

#[test]
fn trace_human_prints_span_lines() {
    let out = crsat()
        .args([
            "check",
            schema_path("meeting.cr").to_str().unwrap(),
            "--trace=human",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("trace: > expansion"), "{stderr}");
    assert!(stderr.contains("trace: < expansion"), "{stderr}");
}

#[test]
fn trace_rejects_unknown_mode() {
    let out = crsat()
        .args([
            "check",
            schema_path("meeting.cr").to_str().unwrap(),
            "--trace=xml",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--trace accepts human or json"));
}

#[test]
fn batch_directory_reports_every_schema_and_worst_exit_code() {
    let dir = schema_path("");
    let out = crsat()
        .args(["batch", dir.to_str().unwrap()])
        .output()
        .unwrap();
    // figure1.cr is unsatisfiable, everything else is fine → worst code 1.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one line per .cr file: {stdout}");
    for name in ["figure1.cr", "meeting.cr", "shapes.cr", "university.cr"] {
        assert!(
            lines.iter().any(|l| l.contains(name)),
            "missing {name}: {stdout}"
        );
    }
    let figure1 = lines.iter().find(|l| l.contains("figure1.cr")).unwrap();
    assert!(figure1.contains("negative unsatisfiable"), "{figure1}");
    assert!(
        lines
            .iter()
            .filter(|l| l.contains("ok satisfiable"))
            .count()
            == 3,
        "{stdout}"
    );
}

#[test]
fn batch_budget_exceeded_exits_three_with_protocol_line() {
    let out = crsat()
        .args([
            "batch",
            schema_path("university.cr").to_str().unwrap(),
            "--max-steps=1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.starts_with("budget-exceeded stage="),
        "protocol line changed: {stderr:?}"
    );
}

#[test]
fn batch_caches_reordered_duplicate_schemas() {
    // Same constraints as meeting.cr, different declaration order and
    // whitespace — the canonical cache key must collapse them. One worker
    // makes execution order deterministic (sorted file order), and /tmp
    // sorts after this repository's schemas directory.
    let tmp = write_temp(
        "meeting-reordered",
        "class Talk;\nclass Speaker;\nclass Discussant isa Speaker;\n\
         relationship Participates (U3: Discussant, U4: Talk);\n\
         relationship Holds (U1: Speaker, U2: Talk);\n\
         card Talk in Participates.U4: 1..*;\n\
         card Discussant in Participates.U3: 1..1;\n\
         card Talk   in Holds.U2: 1..1;\n\
         card Discussant in Holds.U1: 0..2;\n\
         card Speaker in Holds.U1: 1..*;\n",
    );
    let out = crsat()
        .args([
            "batch",
            schema_path("meeting.cr").to_str().unwrap(),
            tmp.to_str().unwrap(),
            "--workers=1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let dup = stdout
        .lines()
        .find(|l| l.contains("meeting-reordered"))
        .unwrap_or_else(|| panic!("no line for the duplicate: {stdout}"));
    assert!(dup.contains("ok satisfiable [cached]"), "{dup}");
    let _ = std::fs::remove_file(tmp);
}

#[test]
fn serve_stdio_answers_requests_and_drains_on_eof() {
    use std::io::Write as _;
    let mut child = crsat()
        .args(["serve"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let schema = std::fs::read_to_string(schema_path("figure1.cr")).unwrap();
    let check = format!(
        "{{\"v\":1,\"id\":\"q1\",\"op\":\"check\",\"schema\":{}}}",
        // Reuse the workspace JSON writer's escaping rules by hand: the
        // schema contains no quotes or backslashes, so a plain wrap works.
        serde_free_quote(&schema)
    );
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{{\"v\":1,\"id\":\"p\",\"op\":\"ping\"}}").unwrap();
        writeln!(stdin, "{check}").unwrap();
    }
    drop(child.stdin.take()); // EOF → drain → clean exit
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut saw_ping = false;
    let mut saw_check = false;
    for line in stdout.lines() {
        let v = cr_trace::json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        match v.get("id").and_then(|i| i.as_str()) {
            Some("p") => {
                assert_eq!(v.get("verdict").and_then(|x| x.as_str()), Some("pong"));
                saw_ping = true;
            }
            Some("q1") => {
                assert_eq!(v.get("status").and_then(|x| x.as_str()), Some("negative"));
                assert_eq!(v.get("exit_code").and_then(|x| x.as_u64()), Some(1));
                assert!(v.get("report").is_some(), "response embeds a RunReport");
                saw_check = true;
            }
            other => panic!("unexpected response id {other:?}: {line}"),
        }
    }
    assert!(saw_ping && saw_check, "{stdout}");
}

/// Quotes a string for JSON, escaping the handful of characters our
/// schemas can contain (newlines from the file).
fn serde_free_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[test]
fn system_verbatim_matches_figure5_inventory() {
    let out = crsat()
        .args(["system", schema_path("meeting.cr").to_str().unwrap(), "-v"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let vars = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("Var("))
        .count();
    assert_eq!(vars, 105, "Figure 5 unknown inventory");
}
