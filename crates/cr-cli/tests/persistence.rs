//! End-to-end persistence tests of the `crsat` binary:
//!
//! * `check --checkpoint` writes a resumable snapshot on a budget trip,
//!   and `resume` reproduces the uninterrupted run's output exactly;
//! * `resume` refuses a checkpoint whose schema no longer matches its
//!   recorded canonical hash;
//! * a daemon SIGKILLed mid-session loses none of the verdicts it had
//!   already acknowledged: a successor on the same `--cache-dir` serves
//!   every one of them warm, unflipped.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use cr_trace::json::{self, Value};

fn crsat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_crsat"))
}

fn schema_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../schemas")
        .join(name)
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("crsat-persist-{name}-{}", std::process::id()))
}

#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_run() {
    let schema = schema_path("meeting.cr");
    let schema = schema.to_str().unwrap();
    let cp = temp("meeting.cp");
    let stats = temp("resume-stats.json");

    // Ground truth: the uninterrupted run.
    let full = crsat().args(["check", schema]).output().unwrap();
    assert!(full.status.success(), "{full:?}");
    let full_stdout = String::from_utf8(full.stdout).unwrap();

    // Interrupt it: budget trips, exit 3, checkpoint lands on disk.
    let tripped = crsat()
        .args([
            "check",
            schema,
            "--max-steps=40",
            "--checkpoint",
            cp.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(tripped.status.code(), Some(3), "{tripped:?}");
    assert!(
        String::from_utf8(tripped.stdout)
            .unwrap()
            .contains("checkpoint written to"),
        "checkpoint confirmation missing"
    );
    let cp_text = std::fs::read_to_string(&cp).unwrap();
    assert!(cp_text.contains("\"command\":\"check\""), "{cp_text}");

    // Resume: exit 0, and after the one-line resume banner the output is
    // byte-identical to the uninterrupted run.
    let resumed = crsat()
        .args([
            "resume",
            cp.to_str().unwrap(),
            &format!("--stats={}", stats.to_str().unwrap()),
        ])
        .output()
        .unwrap();
    assert!(resumed.status.success(), "{resumed:?}");
    let resumed_stdout = String::from_utf8(resumed.stdout).unwrap();
    let (banner, rest) = resumed_stdout.split_once('\n').unwrap();
    assert!(banner.starts_with("resuming check from"), "{banner}");
    assert_eq!(rest, full_stdout, "resumed output diverged");

    // The run report remembers it was a continuation.
    let report = json::parse(std::fs::read_to_string(&stats).unwrap().trim()).unwrap();
    let charged = report
        .get("resumed_from_step")
        .and_then(Value::as_u64)
        .expect("resumed run must record resumed_from_step");
    assert!(charged >= 40, "at least the tripped budget was charged");

    let _ = std::fs::remove_file(&cp);
    let _ = std::fs::remove_file(&stats);
}

#[test]
fn resume_refuses_a_checkpoint_with_a_foreign_hash() {
    let schema = schema_path("shapes.cr");
    let cp = temp("tampered.cp");
    let out = crsat()
        .args([
            "check",
            schema.to_str().unwrap(),
            "--max-steps=10",
            &format!("--checkpoint={}", cp.to_str().unwrap()),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    // Corrupt the hash binding: rewrite its first hex digit.
    let text = std::fs::read_to_string(&cp).unwrap();
    let key = "\"canonical_hash\":\"";
    let at = text.find(key).expect("hash field present") + key.len();
    let mut tampered = text.clone();
    let orig = tampered.as_bytes()[at];
    tampered.replace_range(at..at + 1, if orig == b'0' { "1" } else { "0" });
    std::fs::write(&cp, &tampered).unwrap();

    let resumed = crsat()
        .args(["resume", cp.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(resumed.status.code(), Some(2), "{resumed:?}");
    assert!(
        String::from_utf8(resumed.stderr)
            .unwrap()
            .contains("canonical hash mismatch"),
        "tampering must be named"
    );
    let _ = std::fs::remove_file(&cp);
}

/// A daemon plus one connected client, for the crash/restart choreography.
struct Daemon {
    child: Child,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Boots `crsat serve` on an ephemeral port with a durable store, waits
/// for the (atomically written) port file, and connects.
fn boot(cache_dir: &Path, port_file: &Path) -> Daemon {
    let _ = std::fs::remove_file(port_file);
    let child = crsat()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if text.ends_with('\n') {
                break text.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote the port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    Daemon {
        child,
        stream,
        reader,
    }
}

impl Daemon {
    fn request(&mut self, id: &str, schema_source: &str) -> Value {
        let mut quoted = String::with_capacity(schema_source.len() + 2);
        quoted.push('"');
        for c in schema_source.chars() {
            match c {
                '"' => quoted.push_str("\\\""),
                '\\' => quoted.push_str("\\\\"),
                '\n' => quoted.push_str("\\n"),
                '\r' => quoted.push_str("\\r"),
                '\t' => quoted.push_str("\\t"),
                c => quoted.push(c),
            }
        }
        quoted.push('"');
        writeln!(
            self.stream,
            "{{\"v\":1,\"id\":\"{id}\",\"op\":\"check\",\"schema\":{quoted}}}"
        )
        .unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

/// Crash-consistency contract, end to end: every verdict the daemon
/// *acknowledged* (a response reached the client) survives SIGKILL,
/// because the store append is synced before the response is written. The
/// successor must serve all of them from memory, unflipped.
#[test]
fn sigkill_loses_no_acknowledged_verdict() {
    let cache_dir = temp("kill-store");
    let port_file = temp("kill-port");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let fixtures: Vec<(String, String)> =
        ["figure1.cr", "meeting.cr", "university.cr", "shapes.cr"]
            .iter()
            .map(|n| {
                (
                    n.to_string(),
                    std::fs::read_to_string(schema_path(n)).unwrap(),
                )
            })
            .collect();

    let mut first = boot(&cache_dir, &port_file);
    let mut acknowledged = Vec::new();
    for (name, source) in &fixtures {
        let resp = first.request(name, source);
        let verdict = resp
            .get("verdict")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("[{name}] no verdict: {resp:?}"))
            .to_string();
        acknowledged.push((name.clone(), source.clone(), verdict));
    }
    // SIGKILL: no drain, no flush hook, no atexit. What is on disk is
    // exactly what the per-append fsyncs made durable.
    first.child.kill().unwrap();
    first.child.wait().unwrap();

    let mut second = boot(&cache_dir, &port_file);
    for (name, source, verdict) in &acknowledged {
        let resp = second.request(name, source);
        assert_eq!(
            resp.get("cached"),
            Some(&Value::Bool(true)),
            "[{name}] acknowledged verdict must be served warm after the crash"
        );
        assert_eq!(
            resp.get("verdict").and_then(Value::as_str),
            Some(verdict.as_str()),
            "[{name}] verdict flipped across the crash"
        );
    }
    second.child.kill().unwrap();
    second.child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_file(&port_file);
}
