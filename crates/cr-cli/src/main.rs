//! `crsat` — command-line reasoner for CR schemas.
//!
//! ```text
//! crsat check <schema.cr>             satisfiability of every class
//! crsat expand <schema.cr>            the expansion (compound classes/rels)
//! crsat system <schema.cr> [-v]       the disequation system Ψ_S
//! crsat model <schema.cr>             construct + verify a finite model
//! crsat implies <schema.cr> <query>   isa A B | min C R.U k | max C R.U k
//! crsat bounds <schema.cr> C R.U      tightest implied cardinality window
//! crsat explain <schema.cr> <class>   minimal unsatisfiable constraint set
//! crsat report <schema.cr>            full design review
//! crsat fmt <schema.cr>               parse and pretty-print
//! ```
//!
//! Resource-governor flags (accepted by every reasoning command):
//!
//! ```text
//! --timeout-ms <n>      wall-clock deadline for the whole invocation
//! --max-steps <n>       cap total reasoning work units across all stages
//! --max-expansion <n>   cap work units of expansion enumeration alone
//! ```
//!
//! When a budget trips, the process prints a single machine-readable line
//! `budget-exceeded stage=<s> spent=<n> limit=<n>` to stderr and exits
//! with code 3 (2 remains "usage or schema error", 1 "query answered
//! negatively").

mod commands;

use std::process::ExitCode;
use std::time::Duration;

use cr_core::Budget;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            if msg.starts_with("budget-exceeded ") {
                eprintln!("{msg}");
                ExitCode::from(3)
            } else {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        }
    }
}

/// Extracts the `--timeout-ms/--max-steps/--max-expansion` flags (either
/// `--flag value` or `--flag=value`) from `args` and builds the
/// invocation's [`Budget`]; non-flag arguments are returned in order.
fn parse_budget(args: &[String]) -> Result<(Budget, Vec<String>), String> {
    let mut budget = Budget::unlimited();
    let mut rest = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        if !matches!(flag, "--timeout-ms" | "--max-steps" | "--max-expansion") {
            rest.push(arg.clone());
            continue;
        }
        let value = match inline_value {
            Some(v) => v,
            None => iter
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .clone(),
        };
        let n: u64 = value
            .parse()
            .map_err(|_| format!("{flag} needs a nonnegative integer, got {value:?}"))?;
        budget = match flag {
            "--timeout-ms" => budget.with_deadline(Duration::from_millis(n)),
            "--max-steps" => budget.with_max_steps(n),
            "--max-expansion" => budget.with_stage_limit(cr_core::Stage::Expansion, n),
            _ => unreachable!("flag matched above"),
        };
    }
    Ok((budget, rest))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: crsat <check|expand|system|model|implies|bounds|explain|report|fmt> \
                 <schema.cr> [args...] [--timeout-ms n] [--max-steps n] [--max-expansion n]";
    let (budget, args) = parse_budget(args)?;
    let Some(cmd) = args.first() else {
        return Err(usage.to_string());
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{usage}");
        return Ok(ExitCode::SUCCESS);
    }
    const COMMANDS: &[&str] = &[
        "check", "expand", "system", "model", "implies", "bounds", "explain", "report", "compare",
        "fmt",
    ];
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(format!("unknown command {cmd:?}\n{usage}"));
    }
    if cmd == "compare" {
        let (Some(pa), Some(pb)) = (args.get(1), args.get(2)) else {
            return Err("compare needs two schema files".to_string());
        };
        let read = |p: &String| -> Result<cr_core::Schema, String> {
            let src = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            cr_lang::parse_schema(&src).map_err(|e| format!("{p}:{e}"))
        };
        return commands::compare(&read(pa)?, &read(pb)?);
    }
    let Some(path) = args.get(1) else {
        return Err(usage.to_string());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schema = cr_lang::parse_schema(&source).map_err(|e| format!("{path}:{e}"))?;
    let rest = &args[2..];
    match cmd.as_str() {
        "check" => commands::check(&schema, &budget),
        "expand" => commands::expand(&schema, &budget),
        "system" => commands::system(
            &schema,
            rest.iter().any(|a| a == "-v" || a == "--verbatim"),
            &budget,
        ),
        "model" => commands::model(&schema, &budget),
        "implies" => commands::implies(&schema, rest, &budget),
        "bounds" => commands::bounds(&schema, rest, &budget),
        "explain" => commands::explain(&schema, rest),
        "report" => commands::report(&schema, &budget),
        "fmt" => {
            print!("{}", cr_lang::print_schema(&schema));
            Ok(ExitCode::SUCCESS)
        }
        _ => unreachable!("command validated above"),
    }
}
