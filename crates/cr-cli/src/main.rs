//! `crsat` — command-line reasoner for CR schemas.
//!
//! ```text
//! crsat check <schema.cr> [--certify] satisfiability of every class
//! crsat expand <schema.cr>            the expansion (compound classes/rels)
//! crsat system <schema.cr> [-v]       the disequation system Ψ_S
//! crsat model <schema.cr>             construct + verify a finite model
//! crsat implies <schema.cr> <query>   isa A B | min C R.U k | max C R.U k
//! crsat bounds <schema.cr> C R.U      tightest implied cardinality window
//! crsat explain <schema.cr> <class>   minimal unsatisfiable constraint set
//! crsat report <schema.cr>            full design review
//! crsat diff <base.cr> <edited.cr>    incremental re-check of an edit
//! crsat fmt <schema.cr>               parse and pretty-print
//! crsat serve [--addr host:port]      JSON-lines reasoning daemon
//! crsat batch <dir|file.cr>...        check many schemas in parallel
//! crsat resume <checkpoint>           continue an interrupted check
//! crsat sim [--seeds n|--replay s]    deterministic cluster failure swarm
//! crsat store verify <log|dir>        read-only scrub of a verdict log
//! ```
//!
//! Persistence flags:
//!
//! ```text
//! check --checkpoint <file>  on budget trip, write a resumable snapshot
//! serve --cache-dir <dir>    durable verdict store; warm restarts
//! ```
//!
//! High-availability flags (`crsat serve`):
//!
//! ```text
//! serve --follow <host:port>    run as a warm standby mirroring that
//!                               primary's verdict log (requires
//!                               --cache-dir for the mirror)
//! serve --follow-poll-ms <n>    replication poll interval (default 100)
//! serve --promote-after-ms <n>  self-promote to primary after this long
//!                               without a primary heartbeat (default 3000)
//! ```
//!
//! Resource-governor flags (accepted by every reasoning command):
//!
//! ```text
//! --timeout-ms <n>      wall-clock deadline for the whole invocation
//! --max-steps <n>       cap total reasoning work units across all stages
//! --max-expansion <n>   cap work units of expansion enumeration alone
//! ```
//!
//! Observability flags (also accepted everywhere):
//!
//! ```text
//! --trace[=human|json]  stream span/metric events to stderr: `human`
//!                       (default) prints indented span enter/exit lines,
//!                       `json` prints one JSON object per line
//! --stats <file>        write a machine-readable RunReport (JSON, schema
//!                       documented in cr-trace) on exit — every exit,
//!                       including budget-exceeded and errors
//! ```
//!
//! Every invocation mints a 128-bit trace id: `--trace=json` events and
//! the `--stats` report carry it, and `crsat serve` propagates ids end to
//! end (request → response → cached/persisted/replicated verdict).
//! `crsat serve --metrics-addr host:port` exposes the live telemetry
//! plane: `GET /metrics` (Prometheus text) and `GET /statusz` (JSON).
//!
//! `crsat check --certify` additionally re-validates the verdict through
//! the independent certificate checker (`cr_core::certify`): the witness is
//! plugged back into Ψ_S, every excluded compound class gets a verified
//! Farkas certificate, and small expansions are cross-checked against the
//! Theorem 3.4 enumeration oracle. A refuted verdict exits with code 2.
//!
//! When a budget trips, the process prints a single machine-readable line
//! `budget-exceeded stage=<s> spent=<n> limit=<n>` to stderr and exits
//! with code 3 (2 remains "usage or schema error", 1 "query answered
//! negatively").

mod commands;

use std::process::ExitCode;
use std::time::Duration;

use cr_core::Budget;
use cr_trace::{EventSink, JsonLinesSink, StderrSink, Tracer};

/// Stderr sink flavor selected by `--trace`.
enum TraceMode {
    Human,
    Json,
}

/// Everything extracted from the raw argument list: the governor budget,
/// the observability options, and the positional arguments in order.
struct Invocation {
    budget: Budget,
    trace: Option<TraceMode>,
    stats: Option<String>,
    rest: Vec<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match parse_flags(&args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // Every invocation gets one trace id, minted up front: `--trace=json`
    // events carry it, the `--stats` report embeds it, and daemon requests
    // inherit it downstream — one id follows one question end to end.
    let trace_id = cr_trace::mint_trace_id();
    // The tracer is always enabled: the default sink only relays protocol
    // messages (the budget-exceeded line and error reports), so plain runs
    // look exactly as before while `--stats` can still collect metrics.
    let sink: Box<dyn EventSink> = match inv.trace {
        None => Box::new(StderrSink::messages_only()),
        Some(TraceMode::Human) => Box::new(StderrSink::verbose()),
        Some(TraceMode::Json) => Box::new(JsonLinesSink::stderr().with_trace_id(&trace_id)),
    };
    let tracer = Tracer::new(sink);
    let budget = inv.budget.with_tracer(&tracer);
    let result = run(&inv.rest, &budget);
    // One helper owns the outcome/exit-code protocol, shared with the
    // batch command's per-file summary.
    let (outcome, code) = commands::classify_outcome(&result);
    if let Err(msg) = &result {
        if code == 3 {
            tracer.message(msg);
        } else {
            tracer.message(&format!("error: {msg}"));
        }
    }
    if let Some(path) = &inv.stats {
        let command = inv.rest.first().cloned().unwrap_or_default();
        let mut report = cr_core::run_report(&budget, &command, outcome);
        report.target = inv.rest.get(1).cloned().unwrap_or_default();
        report.trace_id = Some(trace_id.clone());
        let mut json = report.to_json();
        json.push('\n');
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write stats to {path}: {e}");
            if code == 0 {
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::from(code)
}

/// Extracts the governor flags (`--timeout-ms/--max-steps/--max-expansion`,
/// either `--flag value` or `--flag=value`) and the observability flags
/// (`--trace[=human|json]`, `--stats <file>`) from `args`; non-flag
/// arguments are returned in order.
fn parse_flags(args: &[String]) -> Result<Invocation, String> {
    let mut budget = Budget::unlimited();
    let mut trace = None;
    let mut stats = None;
    let mut rest = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        match flag {
            "--trace" => {
                trace = Some(match inline_value.as_deref() {
                    None | Some("human") => TraceMode::Human,
                    Some("json") => TraceMode::Json,
                    Some(other) => {
                        return Err(format!("--trace accepts human or json, got {other:?}"))
                    }
                });
                continue;
            }
            "--stats" => {
                stats = Some(match inline_value {
                    Some(v) => v,
                    None => iter
                        .next()
                        .ok_or_else(|| "--stats needs a file path".to_string())?
                        .clone(),
                });
                continue;
            }
            "--timeout-ms" | "--max-steps" | "--max-expansion" => {}
            _ => {
                rest.push(arg.clone());
                continue;
            }
        }
        let value = match inline_value {
            Some(v) => v,
            None => iter
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .clone(),
        };
        let n: u64 = value
            .parse()
            .map_err(|_| format!("{flag} needs a nonnegative integer, got {value:?}"))?;
        budget = match flag {
            "--timeout-ms" => budget.with_deadline(Duration::from_millis(n)),
            "--max-steps" => budget.with_max_steps(n),
            "--max-expansion" => budget.with_stage_limit(cr_core::Stage::Expansion, n),
            _ => unreachable!("flag matched above"),
        };
    }
    Ok(Invocation {
        budget,
        trace,
        stats,
        rest,
    })
}

/// Extracts `--name value` / `--name=value` from a command's leftover
/// arguments (commands that take only boolean flags scan `rest` directly).
fn value_flag(rest: &[String], name: &str) -> Result<Option<String>, String> {
    let mut value = None;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if arg == name {
            value = Some(
                iter.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .clone(),
            );
        } else if let Some(v) = arg.strip_prefix(name).and_then(|s| s.strip_prefix('=')) {
            value = Some(v.to_string());
        }
    }
    Ok(value)
}

fn run(args: &[String], budget: &Budget) -> Result<u8, String> {
    let usage = "usage: crsat <check|expand|system|model|implies|bounds|explain|report|compare\
                 |diff|fmt|serve|batch|resume|sim|store> <schema.cr> [args...] [--timeout-ms n] \
                 [--max-steps n] [--max-expansion n] [--trace[=human|json]] [--stats file]";
    let Some(cmd) = args.first() else {
        return Err(usage.to_string());
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{usage}");
        return Ok(0);
    }
    const COMMANDS: &[&str] = &[
        "check", "expand", "system", "model", "implies", "bounds", "explain", "report", "compare",
        "diff", "fmt", "serve", "batch", "resume", "sim", "store",
    ];
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(format!("unknown command {cmd:?}\n{usage}"));
    }
    // The service-mode commands take paths/flags, not one schema file.
    if cmd == "serve" {
        return commands::serve(&args[1..], budget);
    }
    if cmd == "sim" {
        return commands::sim(&args[1..]);
    }
    if cmd == "store" {
        return commands::store(&args[1..]);
    }
    if cmd == "batch" {
        return commands::batch(&args[1..], budget);
    }
    // `resume` reads its schema out of the checkpoint, not a .cr file.
    if cmd == "resume" {
        return commands::resume(&args[1..], budget);
    }
    if cmd == "compare" || cmd == "diff" {
        let (Some(pa), Some(pb)) = (args.get(1), args.get(2)) else {
            return Err(format!("{cmd} needs two schema files"));
        };
        let read = |p: &String| -> Result<cr_core::Schema, String> {
            let src = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            cr_lang::parse_schema(&src).map_err(|e| format!("{p}:{e}"))
        };
        return if cmd == "compare" {
            commands::compare(&read(pa)?, &read(pb)?)
        } else {
            commands::diff(&read(pa)?, &read(pb)?, budget)
        };
    }
    let Some(path) = args.get(1) else {
        return Err(usage.to_string());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schema = cr_lang::parse_schema(&source).map_err(|e| format!("{path}:{e}"))?;
    let rest = &args[2..];
    match cmd.as_str() {
        "check" => {
            let checkpoint = value_flag(rest, "--checkpoint")?;
            commands::check(
                &schema,
                rest.iter().any(|a| a == "--certify"),
                checkpoint.as_deref(),
                budget,
            )
        }
        "expand" => commands::expand(&schema, budget),
        "system" => commands::system(
            &schema,
            rest.iter().any(|a| a == "-v" || a == "--verbatim"),
            budget,
        ),
        "model" => commands::model(&schema, budget),
        "implies" => commands::implies(&schema, rest, budget),
        "bounds" => commands::bounds(&schema, rest, budget),
        "explain" => commands::explain(&schema, rest, budget),
        "report" => commands::report(&schema, budget),
        "fmt" => {
            print!("{}", cr_lang::print_schema(&schema));
            Ok(0)
        }
        _ => unreachable!("command validated above"),
    }
}
