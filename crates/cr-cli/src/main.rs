//! `crsat` — command-line reasoner for CR schemas.
//!
//! ```text
//! crsat check <schema.cr>             satisfiability of every class
//! crsat expand <schema.cr>            the expansion (compound classes/rels)
//! crsat system <schema.cr> [-v]       the disequation system Ψ_S
//! crsat model <schema.cr>             construct + verify a finite model
//! crsat implies <schema.cr> <query>   isa A B | min C R.U k | max C R.U k
//! crsat bounds <schema.cr> C R.U      tightest implied cardinality window
//! crsat explain <schema.cr> <class>   minimal unsatisfiable constraint set
//! crsat report <schema.cr>            full design review
//! crsat fmt <schema.cr>               parse and pretty-print
//! ```

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: crsat <check|expand|system|model|implies|bounds|explain|report|fmt> <schema.cr> [args...]";
    let Some(cmd) = args.first() else {
        return Err(usage.to_string());
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{usage}");
        return Ok(ExitCode::SUCCESS);
    }
    const COMMANDS: &[&str] = &[
        "check", "expand", "system", "model", "implies", "bounds", "explain", "report", "compare",
        "fmt",
    ];
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(format!("unknown command {cmd:?}\n{usage}"));
    }
    if cmd == "compare" {
        let (Some(pa), Some(pb)) = (args.get(1), args.get(2)) else {
            return Err("compare needs two schema files".to_string());
        };
        let read = |p: &String| -> Result<cr_core::Schema, String> {
            let src = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            cr_lang::parse_schema(&src).map_err(|e| format!("{p}:{e}"))
        };
        return commands::compare(&read(pa)?, &read(pb)?);
    }
    let Some(path) = args.get(1) else {
        return Err(usage.to_string());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schema = cr_lang::parse_schema(&source).map_err(|e| format!("{path}:{e}"))?;
    let rest = &args[2..];
    match cmd.as_str() {
        "check" => commands::check(&schema),
        "expand" => commands::expand(&schema),
        "system" => commands::system(&schema, rest.iter().any(|a| a == "-v" || a == "--verbatim")),
        "model" => commands::model(&schema),
        "implies" => commands::implies(&schema, rest),
        "bounds" => commands::bounds(&schema, rest),
        "explain" => commands::explain(&schema, rest),
        "report" => commands::report(&schema),
        "fmt" => {
            print!("{}", cr_lang::print_schema(&schema));
            Ok(ExitCode::SUCCESS)
        }
        _ => unreachable!("command validated above"),
    }
}
