//! `crsat serve` and `crsat batch` — the service-mode subcommands, thin
//! shells over the `cr-server` crate.
//!
//! `serve` runs the JSON-lines daemon (stdio by default, TCP with
//! `--addr`); `batch` fans finite-satisfiability checks of many schema
//! files out over the same worker pool and verdict cache, with no daemon
//! involved. Both inherit the invocation's `--timeout-ms` / `--max-steps`
//! governor flags as *per-request* defaults.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use cr_core::Budget;
use cr_server::{backoff_delay, Job, Op, Request, Server, ServerConfig, Status, SubmitError};

/// Turns the invocation budget's deadline/step-cap into per-request
/// defaults for the service.
fn config_from(budget: &Budget) -> ServerConfig {
    ServerConfig {
        default_timeout_ms: budget
            .deadline()
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        default_max_steps: budget.max_steps(),
        ..ServerConfig::default()
    }
}

/// Parses `--flag value` / `--flag=value` service options from `args`,
/// returning the leftover positional arguments.
struct ServiceFlags {
    addr: Option<String>,
    metrics_addr: Option<String>,
    port_file: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    cache: Option<usize>,
    cache_dir: Option<String>,
    follow: Option<String>,
    follow_poll_ms: Option<u64>,
    promote_after_ms: Option<u64>,
    positional: Vec<String>,
}

fn parse_service_flags(args: &[String]) -> Result<ServiceFlags, String> {
    let mut flags = ServiceFlags {
        addr: None,
        metrics_addr: None,
        port_file: None,
        workers: None,
        queue: None,
        cache: None,
        cache_dir: None,
        follow: None,
        follow_poll_ms: None,
        promote_after_ms: None,
        positional: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        if !matches!(
            flag,
            "--addr"
                | "--metrics-addr"
                | "--port-file"
                | "--workers"
                | "--queue"
                | "--cache"
                | "--cache-dir"
                | "--follow"
                | "--follow-poll-ms"
                | "--promote-after-ms"
        ) {
            flags.positional.push(arg.clone());
            continue;
        }
        let value = match inline_value {
            Some(v) => v,
            None => iter
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .clone(),
        };
        let parse_count = |v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|_| format!("{flag} needs a positive integer, got {v:?}"))
                .and_then(|n| {
                    if n == 0 {
                        Err(format!("{flag} must be at least 1"))
                    } else {
                        Ok(n)
                    }
                })
        };
        match flag {
            "--addr" => flags.addr = Some(value),
            "--metrics-addr" => flags.metrics_addr = Some(value),
            "--port-file" => flags.port_file = Some(value),
            "--workers" => flags.workers = Some(parse_count(&value)?),
            "--queue" => flags.queue = Some(parse_count(&value)?),
            "--cache" => flags.cache = Some(parse_count(&value)?),
            "--cache-dir" => flags.cache_dir = Some(value),
            "--follow" => flags.follow = Some(value),
            "--follow-poll-ms" => flags.follow_poll_ms = Some(parse_count(&value)? as u64),
            "--promote-after-ms" => flags.promote_after_ms = Some(parse_count(&value)? as u64),
            _ => unreachable!("flag matched above"),
        }
    }
    Ok(flags)
}

/// `crsat serve`: run the JSON-lines reasoning daemon until EOF, a
/// `shutdown` request, or SIGTERM/SIGINT. Stdio by default; `--addr
/// host:port` serves TCP (port 0 picks a free port; `--port-file <path>`
/// writes the bound address for scripts to discover — rewritten
/// atomically on promotion, so a watcher never reads a torn address).
/// `--cache-dir <dir>` makes certified verdicts durable: they are
/// rehydrated into the cache on the next boot, so a restarted (even
/// SIGKILLed) daemon answers previously settled questions warm.
/// `--follow host:port` boots a warm *standby* that mirrors the primary's
/// verdict log into `--cache-dir` and promotes itself when the primary's
/// heartbeat lapses for `--promote-after-ms` (or on a `promote` request).
/// `--metrics-addr host:port` additionally serves the telemetry plane
/// over plain HTTP: `GET /metrics` (Prometheus text exposition) and
/// `GET /statusz` (operational JSON), on a dedicated listener that never
/// touches the worker pool.
/// On drain the server emits its aggregate RunReport as one JSON line on
/// stderr — on every exit path (client EOF, `shutdown` request, or
/// signal).
pub fn serve(args: &[String], budget: &Budget) -> Result<u8, String> {
    let flags = parse_service_flags(args)?;
    if let Some(extra) = flags.positional.first() {
        return Err(format!(
            "serve takes no positional arguments, got {extra:?}\n\
             usage: crsat serve [--addr host:port] [--metrics-addr host:port] \
             [--port-file path] [--workers n] [--queue n] [--cache n] \
             [--cache-dir dir] [--follow host:port] [--follow-poll-ms n] \
             [--promote-after-ms n] [--timeout-ms n] [--max-steps n]"
        ));
    }
    let mut config = config_from(budget);
    if let Some(w) = flags.workers {
        config.workers = w;
    }
    if let Some(q) = flags.queue {
        config.queue_capacity = q;
    }
    if let Some(c) = flags.cache {
        config.cache_capacity = c;
    }
    config.cache_dir = flags.cache_dir.as_ref().map(PathBuf::from);
    config.port_file = flags.port_file.as_ref().map(PathBuf::from);
    config.follow = flags.follow.clone();
    if let Some(ms) = flags.follow_poll_ms {
        config.follow_poll_ms = ms;
    }
    if let Some(ms) = flags.promote_after_ms {
        config.promote_after_ms = ms;
    }
    config.metrics_addr = flags.metrics_addr.clone();
    // The daemon narrates operational facts (boot recovery, promotion)
    // through the invocation tracer, so they land wherever `--trace`
    // points (verbatim on stderr by default, structured under
    // `--trace=json`) instead of as raw eprintln.
    let tracer = budget.tracer().clone();
    config.event_sink = Some(cr_server::SharedSink::new(Arc::new(tracer.clone())));
    let server = Server::open(config).map_err(|e| format!("cannot open verdict store: {e}"))?;
    if server.is_standby() {
        tracer.message(&format!(
            "crsat serve: standby following {} ({} warm verdict(s) mirrored)",
            flags.follow.as_deref().unwrap_or("?"),
            server.cached_verdicts()
        ));
    }
    if let Some(recovery) = server.store_recovery() {
        let mut line = format!(
            "crsat serve: verdict store recovered {} record(s), {} warm verdict(s)",
            recovery.recovered_records,
            server.cached_verdicts()
        );
        if recovery.truncated_bytes > 0 {
            line.push_str(&format!(
                ", truncated {} byte(s) of torn tail",
                recovery.truncated_bytes
            ));
        }
        if recovery.rebuilt {
            line.push_str(", rebuilt (unrecognized header)");
        }
        tracer.message(&line);
    }

    // First SIGTERM/SIGINT: stop reading, drain in-flight work. Second:
    // abort in-flight reasoning (per-request cancel tokens, so the abort
    // reaches work already running) at the next governor check. The
    // watcher thread is process-lifetime by design.
    cr_server::signal::install();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        let server = server.clone();
        std::thread::spawn(move || loop {
            if cr_server::signal::shutdown_flag().load(Ordering::SeqCst) {
                stop.store(true, Ordering::SeqCst);
            }
            if cr_server::signal::cancel_flag().load(Ordering::SeqCst) {
                server.cancel_inflight();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    match &flags.addr {
        None => server
            .serve_stdio(&stop)
            .map_err(|e| format!("stdio serve failed: {e}"))?,
        Some(addr) => {
            // The server itself writes (and on promotion atomically
            // rewrites) the port file; the callback only logs.
            server
                .serve_tcp(addr, Arc::clone(&stop), move |bound| {
                    eprintln!("crsat serve: listening on {bound}");
                })
                .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
        }
    }
    // Both transports have drained through `finish()` by now (EOF,
    // `shutdown` op, and signal all converge there), so this is the final
    // word: the server-lifetime RunReport, one JSON line on stderr.
    eprintln!("{}", server.final_report("ok").to_json());
    Ok(0)
}

/// Recursively collects `.cr` files under `path` (a file argument is taken
/// as-is, whatever its extension).
fn collect_schemas(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta =
        std::fs::metadata(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !meta.is_dir() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    let entries =
        std::fs::read_dir(path).map_err(|e| format!("cannot list {}: {e}", path.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", path.display()))?;
        let child = entry.path();
        if child.is_dir() {
            collect_schemas(&child, out)?;
        } else if child.extension().is_some_and(|ext| ext == "cr") {
            out.push(child);
        }
    }
    Ok(())
}

/// Shed retries before `crsat batch` gives up on one file. The Python
/// client (`ci/serve_client.py`) uses the same limit.
const MAX_SHED_RETRIES: u32 = 8;

/// Runs one prebuilt batch request through the server, returning the
/// display line and its exit code. A `shed` response is the server saying
/// "not now, retryable": retry it with the shared jittered-exponential
/// schedule ([`backoff_delay`]) before reporting it.
fn run_request(server: &Server, request: &Request) -> (String, u8) {
    let mut seed = request.id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    }) | 1;
    let mut response = server.process_request(request);
    let mut attempt = 0;
    while response.status == Status::Shed && attempt < MAX_SHED_RETRIES {
        std::thread::sleep(backoff_delay(&mut seed, attempt));
        attempt += 1;
        response = server.process_request(request);
    }
    let mut line = response.status.as_str().to_string();
    if let Some(v) = &response.verdict {
        line.push(' ');
        line.push_str(v);
    }
    if !response.detail.is_empty() {
        line.push_str(&format!(" ({})", response.detail.join(", ")));
    }
    if response.cached {
        line.push_str(" [cached]");
    }
    if request.op == Op::CheckDelta
        && !response
            .detail
            .iter()
            .any(|d| d.starts_with("delta-fallback"))
        && matches!(response.status, Status::Ok | Status::Negative)
    {
        line.push_str(" [delta]");
    }
    (line, response.status.exit_code())
}

/// Builds one request per batch member. A member whose canonical form is
/// one non-structural edit away from the *previous* parseable member is
/// routed through `check_delta` against that member's hash — the first
/// member is pinned up front, every delta verdict auto-pins its edited
/// schema, so an ordered stream of near-identical schemas chains. The
/// schema always rides along, so a base the server has not pinned yet
/// (parallel workers race) degrades to a plain check, never an error.
/// Returns the per-member requests (an `Err` is a file that could not be
/// read) and the first parseable member's source, for pinning.
fn plan_batch(files: &[PathBuf]) -> (Vec<Result<Request, String>>, Option<String>) {
    let mut plans = Vec::with_capacity(files.len());
    let mut prev: Option<(String, u128)> = None;
    let mut first_base = None;
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                plans.push(Err(format!("error cannot read: {e}")));
                continue;
            }
        };
        let mut request = Request::new(path.display().to_string(), Op::Check);
        if let Ok(schema) = cr_lang::parse_schema(&source) {
            let canonical = schema.canonical_form();
            let hash = cr_core::canonical_text_hash(&canonical);
            match &prev {
                // An identical canonical form stays a plain check: the
                // verdict cache collapses it by hash, which beats an
                // empty-diff delta round.
                Some((prev_canonical, prev_hash)) if *prev_hash != hash => {
                    let diff = cr_lang::diff_canonical(prev_canonical, &canonical);
                    if cr_delta::classify(&diff) != cr_delta::DiffClass::Structural {
                        request.op = Op::CheckDelta;
                        request.base = Some(format!("{prev_hash:032x}"));
                        request.diff = diff.to_lines();
                    }
                }
                Some(_) => {}
                None => first_base = Some(source.clone()),
            }
            prev = Some((canonical, hash));
        }
        request.schema = Some(source);
        plans.push(Ok(request));
    }
    (plans, first_base)
}

/// Submits through the non-blocking path, retrying overload with the
/// shared jittered-exponential backoff ([`backoff_delay`] — the one
/// schedule used by shed retries here and in `ci/serve_client.py`). The
/// invocation budget's deadline bounds the waiting (so `--timeout-ms`
/// covers queueing, not just reasoning): when it would be crossed, the
/// structured `budget-exceeded` error surfaces instead of another retry.
fn submit_with_retry(
    server: &Server,
    budget: &Budget,
    seed: u64,
    make_job: impl Fn() -> Job,
) -> Result<(), String> {
    let mut seed = seed | 1;
    for attempt in 0..=MAX_SHED_RETRIES {
        match server.try_submit(make_job()) {
            Ok(()) => return Ok(()),
            Err(SubmitError::ShuttingDown) => {
                return Err("worker pool rejected batch job: shutting down".to_string());
            }
            Err(SubmitError::QueueFull) if attempt < MAX_SHED_RETRIES => {
                let mut delay = backoff_delay(&mut seed, attempt);
                if let Some(deadline) = budget.deadline() {
                    let remaining = deadline.saturating_sub(budget.elapsed());
                    budget
                        .check(cr_core::Stage::Expansion)
                        .map_err(super::err_str)?;
                    delay = delay.min(remaining);
                }
                std::thread::sleep(delay);
            }
            Err(SubmitError::QueueFull) => break,
        }
    }
    Err(format!(
        "server overloaded: request queue still full after {MAX_SHED_RETRIES} retries"
    ))
}

/// `crsat batch`: check every given schema file (directories are searched
/// recursively for `.cr`) in parallel on a `cr-server` worker pool, one
/// result line per file, in input order. The exit code is the *worst*
/// per-file outcome (budget-exceeded 3 > error 2 > unsatisfiable 1 > ok 0).
pub fn batch(args: &[String], budget: &Budget) -> Result<u8, String> {
    let usage = "usage: crsat batch <dir|file.cr> [more paths...] [--workers n] \
                 [--timeout-ms n] [--max-steps n]";
    let flags = parse_service_flags(args)?;
    if flags.positional.is_empty() {
        return Err(usage.to_string());
    }
    let mut files = Vec::new();
    for arg in &flags.positional {
        collect_schemas(Path::new(arg), &mut files)?;
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        return Err("no .cr files found".to_string());
    }

    let mut config = config_from(budget);
    if let Some(w) = flags.workers {
        config.workers = w;
    }
    let server = Server::new(config);
    let (plans, first_base) = plan_batch(&files);
    // Pin the stream's first schema before the fan-out so at least the
    // second member's delta request can find its base; later members chain
    // off auto-pinned predecessors when worker scheduling permits.
    if let Some(source) = first_base {
        let mut pin = Request::new("batch-pin".to_string(), Op::PinBase);
        pin.schema = Some(source);
        let _ = server.process_request(&pin);
    }
    let (tx, rx) = mpsc::channel();
    for (i, plan) in plans.into_iter().enumerate() {
        let request = match plan {
            Ok(request) => request,
            Err(line) => {
                let _ = tx.send((i, (line, 2)));
                continue;
            }
        };
        let make_job = || -> Job {
            let tx = tx.clone();
            let worker = server.clone();
            let request = request.clone();
            Box::new(move || {
                let _ = tx.send((i, run_request(&worker, &request)));
            })
        };
        submit_with_retry(&server, budget, i as u64, make_job)?;
    }
    drop(tx);
    let mut results: Vec<Option<(String, u8)>> = vec![None; files.len()];
    for (i, outcome) in rx {
        results[i] = Some(outcome);
    }
    server.finish();

    let mut worst = 0u8;
    let mut budget_line = None;
    let mut failures = 0usize;
    for (path, slot) in files.iter().zip(results) {
        let (line, code) = slot.expect("every batch job reports exactly once");
        if code == 3 && budget_line.is_none() {
            // The per-file line carries the structured budget-exceeded
            // detail; surface the first one as this process's stderr line.
            budget_line = line
                .find("budget-exceeded stage=")
                .map(|at| line[at..].trim_end_matches([')', ']', ' ']).to_string());
        }
        if code >= 2 {
            failures += 1;
        }
        worst = worst.max(code);
        println!("{}: {line}", path.display());
    }
    match worst {
        0 | 1 => Ok(worst),
        3 => {
            Err(budget_line
                .unwrap_or_else(|| "budget-exceeded stage=? spent=? limit=?".to_string()))
        }
        _ => Err(format!(
            "batch: {failures} of {} file(s) failed (see lines above)",
            files.len()
        )),
    }
}
