//! `crsat` subcommand implementations.
//!
//! Every command returns `Result<u8, String>` where the `u8` is the
//! process exit code (0 success, 1 negative answer); `main` owns turning
//! errors into exit codes 2/3 and emitting the run report, so commands
//! never print to stderr themselves.

use cr_core::expansion::ExpansionConfig;
use cr_core::explain::minimal_unsat_core_governed;
use cr_core::ids::{ClassId, RoleId};
use cr_core::implication::{
    implied_maxc_governed, implied_minc_governed, implies_maxc_governed, implies_minc_governed,
    BoundVerdict, ImpliedBound, Verdict,
};
use cr_core::model::ModelConfig;
use cr_core::sat::{Reasoner, Strategy};
use cr_core::system::render_verbatim;
use cr_core::{Budget, CrError, Schema, Stage};

mod delta;
pub use delta::diff;

mod service;
pub use service::{batch, serve};

mod resume;
pub use resume::resume;

mod sim;
pub use sim::{sim, store};

/// The single source of truth for the CLI's outcome protocol: maps a
/// command result to the `(outcome, exit_code)` pair — `("ok", 0)`,
/// `("negative", 1)`, `("error", 2)`, `("budget-exceeded", 3)`. The
/// budget case is recognized by the stable stderr line prefix that
/// [`err_str`] (and `cr-server`'s evaluator) emit.
pub fn classify_outcome(result: &Result<u8, String>) -> (&'static str, u8) {
    match result {
        Ok(0) => ("ok", 0),
        Ok(code) => ("negative", *code),
        Err(msg) if msg.starts_with("budget-exceeded ") => ("budget-exceeded", 3),
        Err(_) => ("error", 2),
    }
}

/// Renders `CrError` for the CLI. Budget exhaustion gets the stable
/// machine-readable form `budget-exceeded stage=<s> spent=<n> limit=<n>`
/// that `main` routes to stderr with exit code 3.
fn err_str(e: CrError) -> String {
    match e {
        CrError::BudgetExceeded {
            stage,
            spent,
            limit,
        } => {
            format!(
                "budget-exceeded stage={} spent={spent} limit={limit}",
                stage.as_str()
            )
        }
        other => other.to_string(),
    }
}

/// Converts an implication [`Verdict::Unknown`] / [`BoundVerdict::Unknown`]
/// back into the structured budget-exceeded line: the budget's guards are
/// still tripped, so re-checking recovers stage/spent/limit.
fn unknown_to_err(budget: &Budget, reason: String) -> String {
    match budget.check(Stage::Implication) {
        Err(e) => err_str(e),
        Ok(()) => reason,
    }
}

fn reasoner<'s>(schema: &'s Schema, budget: &Budget) -> Result<Reasoner<'s>, String> {
    Reasoner::with_budget(
        schema,
        &ExpansionConfig::default(),
        Strategy::default(),
        budget,
    )
    .map_err(err_str)
}

fn find_class(schema: &Schema, name: &str) -> Result<ClassId, String> {
    schema
        .class_by_name(name)
        .ok_or_else(|| format!("unknown class {name:?}"))
}

/// Parses `R.U` into a role id.
fn find_role(schema: &Schema, spec: &str) -> Result<RoleId, String> {
    let (rel_name, role_name) = spec
        .split_once('.')
        .ok_or_else(|| format!("role spec {spec:?} must look like Rel.Role"))?;
    let rel = schema
        .rel_by_name(rel_name)
        .ok_or_else(|| format!("unknown relationship {rel_name:?}"))?;
    schema
        .role_by_name(rel, role_name)
        .ok_or_else(|| format!("relationship {rel_name:?} has no role {role_name:?}"))
}

/// `crsat check`: report finite and unrestricted satisfiability per class
/// (and per relationship); exit 1 if any class is finitely unsatisfiable.
/// With `certify`, the verdict is re-validated through the independent
/// certificate checker and a refutation turns the run into an error.
/// With `checkpoint`, a budget trip additionally serializes the
/// interrupted fixpoint state to the given path for `crsat resume`.
pub fn check(
    schema: &Schema,
    certify: bool,
    checkpoint: Option<&str>,
    budget: &Budget,
) -> Result<u8, String> {
    let r = Reasoner::with_budget(
        schema,
        &ExpansionConfig::default(),
        Strategy::default(),
        budget,
    )
    .map_err(|e| checkpoint_on_trip(e, schema, checkpoint, budget))?;
    check_with_reasoner(schema, &r, certify, budget)
}

/// The budget-exceeded exit path of `check`: when a checkpoint file was
/// requested, harvest the frontier the fixpoint deposited on the budget
/// and write it out atomically before surfacing the structured
/// budget-exceeded line (exit code 3 either way — the checkpoint is a
/// side artifact, not a success).
fn checkpoint_on_trip(
    e: CrError,
    schema: &Schema,
    checkpoint: Option<&str>,
    budget: &Budget,
) -> String {
    if let (CrError::BudgetExceeded { stage, .. }, Some(path)) = (&e, checkpoint) {
        let cp = cr_core::checkpoint::Checkpoint::from_interrupted(
            "check",
            cr_lang::print_schema(schema),
            cr_core::canonical_hash(schema),
            strategy_name(Strategy::default()),
            *stage,
            budget,
        );
        match cr_store::write_atomic(std::path::Path::new(path), cp.to_json().as_bytes()) {
            Ok(()) => println!("checkpoint written to {path}"),
            Err(werr) => return format!("cannot write checkpoint {path}: {werr}"),
        }
    }
    err_str(e)
}

/// Stable strategy names shared by the checkpoint schema and `resume`'s
/// parser.
pub(crate) fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Aggregated => "aggregated",
        Strategy::Direct => "direct",
    }
}

/// The reporting half of `check`, shared with `crsat resume` (which builds
/// its reasoner from a checkpointed frontier instead of from scratch).
pub(crate) fn check_with_reasoner(
    schema: &Schema,
    r: &Reasoner<'_>,
    certify: bool,
    budget: &Budget,
) -> Result<u8, String> {
    let viable = cr_core::unrestricted::viable_compound_classes(r.expansion());
    let mut any_unsat = false;
    println!("{:<24} {:<16} unrestricted", "class", "finite");
    for c in schema.classes() {
        let sat = r.is_class_satisfiable(c);
        let unres = r
            .expansion()
            .compound_classes_containing(c)
            .iter()
            .any(|&cc| viable[cc]);
        any_unsat |= !sat;
        println!(
            "{:<24} {:<16} {}",
            schema.class_name(c),
            if sat { "satisfiable" } else { "UNSATISFIABLE" },
            if unres {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            }
        );
    }
    for rel in schema.rels() {
        println!(
            "{:<24} {}",
            format!("rel {}", schema.rel_name(rel)),
            if r.is_rel_satisfiable(rel) {
                "satisfiable"
            } else {
                "UNSATISFIABLE (empty in every finite model)"
            }
        );
    }
    if certify {
        let certified = cr_core::certify_check(schema, budget).map_err(err_str)?;
        if !certified.ok() {
            for f in &certified.failures {
                println!("certify: {f}");
            }
            return Err(format!(
                "certification refuted the verdict ({} of {} checks failed)",
                certified.failures.len(),
                certified.checks
            ));
        }
        let computed_unsat: Vec<String> = schema
            .classes()
            .filter(|&c| !r.is_class_satisfiable(c))
            .map(|c| schema.class_name(c).to_string())
            .collect();
        if certified.unsat_classes != computed_unsat {
            return Err(format!(
                "certification disagrees with the verdict (answer claims unsat {:?}, \
                 certificates say {:?})",
                computed_unsat, certified.unsat_classes
            ));
        }
        println!(
            "\ncertified: {} checks, {} Farkas certificates, {} classes cross-checked \
             by the enumeration oracle",
            certified.checks, certified.farkas_certificates, certified.differential_classes
        );
    }
    if any_unsat {
        println!(
            "\nschema has finitely unsatisfiable classes; run `crsat explain` for a minimal core"
        );
        Ok(1)
    } else {
        println!("\nall {} classes satisfiable", schema.num_classes());
        Ok(0)
    }
}

/// `crsat expand`: print the expansion (Figure 4 style).
pub fn expand(schema: &Schema, budget: &Budget) -> Result<u8, String> {
    let r = reasoner(schema, budget)?;
    let exp = r.expansion();
    println!(
        "compound classes: {} total, {} consistent",
        exp.total_compound_classes(),
        exp.compound_classes().len()
    );
    for i in 0..exp.compound_classes().len() {
        println!("  {}", exp.cclass_name(i));
    }
    println!(
        "consistent compound relationships: {}",
        exp.compound_rels().len()
    );
    for rel in schema.rels() {
        println!(
            "  {}: {} compound relationships",
            schema.rel_name(rel),
            exp.compound_rels_of(rel).len()
        );
    }
    println!("derived cardinalities (Definition 3.1):");
    for rel in schema.rels() {
        for &u in schema.roles_of(rel) {
            let primary = schema.primary_class(u);
            for &cc in exp.compound_classes_containing(primary) {
                let card = exp.derived_card(cc, u);
                if card != cr_core::Card::UNCONSTRAINED {
                    println!(
                        "  {} in {}.{}: {}",
                        exp.cclass_name(cc),
                        schema.rel_name(rel),
                        schema.role_name(u),
                        card
                    );
                }
            }
        }
    }
    Ok(0)
}

/// `crsat system`: print `Ψ_S` (Figure 5 style), optionally verbatim with
/// forced-zero unknowns.
pub fn system(schema: &Schema, verbatim: bool, budget: &Budget) -> Result<u8, String> {
    let r = reasoner(schema, budget)?;
    if verbatim {
        let text = render_verbatim(r.expansion(), 8).map_err(|e| e.to_string())?;
        print!("{text}");
    } else {
        print!("{}", r.system().render(r.expansion()));
    }
    Ok(0)
}

/// `crsat model`: construct a verified model (Figure 6 style).
pub fn model(schema: &Schema, budget: &Budget) -> Result<u8, String> {
    let r = reasoner(schema, budget)?;
    match r
        .construct_model(&ModelConfig::default())
        .map_err(|e| e.to_string())?
    {
        None => {
            println!("no class is satisfiable; the only model is empty");
            Ok(1)
        }
        Some(m) => {
            println!("domain: {} individuals", m.domain_size());
            for c in schema.classes() {
                let ext: Vec<String> = m
                    .class_extension(c)
                    .iter()
                    .map(|i| format!("e{i}"))
                    .collect();
                println!("  {} = {{{}}}", schema.class_name(c), ext.join(", "));
            }
            for rel in schema.rels() {
                println!("  {} =", schema.rel_name(rel));
                for tuple in m.rel_extension(rel) {
                    let parts: Vec<String> = schema
                        .roles_of(rel)
                        .iter()
                        .zip(tuple)
                        .map(|(&u, i)| format!("{}: e{}", schema.role_name(u), i))
                        .collect();
                    println!("    ⟨{}⟩", parts.join(", "));
                }
            }
            println!("verified against Definition 2.2: ok");
            Ok(0)
        }
    }
}

/// `crsat implies <isa A B | min C R.U k | max C R.U k>`.
pub fn implies(schema: &Schema, rest: &[String], budget: &Budget) -> Result<u8, String> {
    let usage = "implies query: isa <A> <B> | min <C> <Rel.Role> <k> | max <C> <Rel.Role> <k>";
    let config = ExpansionConfig::default();
    let verdict = match rest {
        [kind, a, b] if kind == "isa" => {
            let r = reasoner(schema, budget)?;
            Verdict::from(r.implies_isa(find_class(schema, a)?, find_class(schema, b)?))
        }
        [kind, c, role, k] if kind == "min" => {
            let k: u64 = k.parse().map_err(|_| usage.to_string())?;
            implies_minc_governed(
                schema,
                find_class(schema, c)?,
                find_role(schema, role)?,
                k,
                &config,
                budget,
            )
            .map_err(err_str)?
        }
        [kind, c, role, k] if kind == "max" => {
            let k: u64 = k.parse().map_err(|_| usage.to_string())?;
            implies_maxc_governed(
                schema,
                find_class(schema, c)?,
                find_role(schema, role)?,
                k,
                &config,
                budget,
            )
            .map_err(err_str)?
        }
        _ => return Err(usage.to_string()),
    };
    match verdict {
        Verdict::True => {
            println!("implied");
            Ok(0)
        }
        Verdict::False => {
            println!("not implied");
            Ok(1)
        }
        Verdict::Unknown { reason } => Err(unknown_to_err(budget, reason)),
    }
}

/// `crsat bounds <C> <Rel.Role>`: tightest implied window.
pub fn bounds(schema: &Schema, rest: &[String], budget: &Budget) -> Result<u8, String> {
    let [class, role] = rest else {
        return Err("bounds query: <C> <Rel.Role>".to_string());
    };
    let c = find_class(schema, class)?;
    let u = find_role(schema, role)?;
    let config = ExpansionConfig::default();
    let known = |b: BoundVerdict| match b {
        BoundVerdict::Known(bound) => Ok(bound),
        BoundVerdict::Unknown { reason } => Err(unknown_to_err(budget, reason)),
    };
    let min = known(implied_minc_governed(schema, c, u, &config, budget).map_err(err_str)?)?;
    let max =
        known(implied_maxc_governed(schema, c, u, &config, 1 << 16, budget).map_err(err_str)?)?;
    match (min, max) {
        (ImpliedBound::Unsatisfiable, _) | (_, ImpliedBound::Unsatisfiable) => {
            println!("{class} is unsatisfiable; every window is vacuously implied");
        }
        (min, max) => {
            let lo = match min {
                ImpliedBound::Bound(m) => m.to_string(),
                _ => "?".to_string(),
            };
            let hi = match max {
                ImpliedBound::Bound(n) => n.to_string(),
                ImpliedBound::NoBoundUpTo(cap) => format!("∞ (no bound up to {cap})"),
                _ => "?".to_string(),
            };
            println!("tightest implied window for {class} in {role}: ({lo}, {hi})");
        }
    }
    Ok(0)
}

/// `crsat report`: the full design review a CASE tool would surface —
/// satisfiability (finite and unrestricted), implied ISA, tightest implied
/// windows for every declared constraint, and minimal cores for
/// unsatisfiable classes.
pub fn report(schema: &Schema, budget: &Budget) -> Result<u8, String> {
    let r = reasoner(schema, budget)?;
    let config = ExpansionConfig::default();

    println!("# Schema report\n");
    println!(
        "{} classes, {} relationships, {} ISA statements, {} cardinality declarations",
        schema.num_classes(),
        schema.num_rels(),
        schema.isa_statements().len(),
        schema.card_declarations().len()
    );
    println!(
        "expansion: {} consistent compound classes of {} subsets, {} compound relationships\n",
        r.expansion().compound_classes().len(),
        r.expansion().total_compound_classes(),
        r.expansion().compound_rels().len()
    );

    println!("## Satisfiability\n");
    let viable = cr_core::unrestricted::viable_compound_classes(r.expansion());
    let mut unsat = Vec::new();
    for c in schema.classes() {
        let finite = r.is_class_satisfiable(c);
        let unres = r
            .expansion()
            .compound_classes_containing(c)
            .iter()
            .any(|&cc| viable[cc]);
        if !finite {
            unsat.push(c);
        }
        println!(
            "- {}: {}{}",
            schema.class_name(c),
            if finite {
                "satisfiable"
            } else {
                "UNSATISFIABLE"
            },
            if !finite && unres {
                " (satisfiable over infinite domains: a finite-model artifact)"
            } else {
                ""
            }
        );
    }
    for rel in schema.rels() {
        if !r.is_rel_satisfiable(rel) {
            println!(
                "- relationship {}: empty in every finite model",
                schema.rel_name(rel)
            );
        }
    }

    println!("\n## Implied (undeclared) ISA\n");
    let pairs = r.implied_isa_pairs();
    if pairs.is_empty() {
        println!("- none");
    }
    for (sub, sup) in pairs {
        println!("- {} ≼ {}", schema.class_name(sub), schema.class_name(sup));
    }

    println!("\n## Tightest implied windows (declared constraints)\n");
    for d in schema.card_declarations() {
        if unsat.contains(&d.class) {
            continue;
        }
        let known = |b: BoundVerdict| match b {
            BoundVerdict::Known(bound) => Ok(bound),
            BoundVerdict::Unknown { reason } => Err(unknown_to_err(budget, reason)),
        };
        let lo = known(
            implied_minc_governed(schema, d.class, d.role, &config, budget).map_err(err_str)?,
        )?;
        let hi = known(
            implied_maxc_governed(schema, d.class, d.role, &config, 1 << 12, budget)
                .map_err(err_str)?,
        )?;
        let fmt = |b: ImpliedBound, inf: &str| match b {
            ImpliedBound::Bound(v) => v.to_string(),
            ImpliedBound::NoBoundUpTo(_) => inf.to_string(),
            ImpliedBound::Unsatisfiable => "-".to_string(),
        };
        println!(
            "- {} in {}.{}: declared {}, implied ({},{})",
            schema.class_name(d.class),
            schema.rel_name(schema.rel_of_role(d.role)),
            schema.role_name(d.role),
            d.card,
            fmt(lo, "0"),
            fmt(hi, "∞")
        );
    }

    if !unsat.is_empty() {
        println!("\n## Minimal unsatisfiable cores\n");
        for c in &unsat {
            if let Some(core) =
                minimal_unsat_core_governed(schema, *c, &config, budget).map_err(err_str)?
            {
                println!("- {}:", schema.class_name(*c));
                for item in core {
                    println!("    {}", item.describe(schema));
                }
            }
        }
        return Ok(1);
    }
    Ok(0)
}

/// `crsat compare <a> <b>`: semantic subsumption / equivalence of two
/// schemas over the same signature.
pub fn compare(a: &Schema, b: &Schema) -> Result<u8, String> {
    let config = ExpansionConfig::default();
    let ab = cr_core::compare::subsumes(a, b, &config).map_err(|e| e.to_string())?;
    let ba = cr_core::compare::subsumes(b, a, &config).map_err(|e| e.to_string())?;
    match (ab.holds(), ba.holds()) {
        (true, true) => {
            println!("equivalent: the schemas have exactly the same finite models");
            Ok(0)
        }
        (true, false) => {
            println!("first schema is strictly stronger; second does not imply:");
            for f in &ba.failing {
                println!("  {f}");
            }
            Ok(1)
        }
        (false, true) => {
            println!("second schema is strictly stronger; first does not imply:");
            for f in &ab.failing {
                println!("  {f}");
            }
            Ok(1)
        }
        (false, false) => {
            println!("incomparable; first does not imply:");
            for f in &ab.failing {
                println!("  {f}");
            }
            println!("and second does not imply:");
            for f in &ba.failing {
                println!("  {f}");
            }
            Ok(1)
        }
    }
}

/// `crsat explain <class>`: minimal unsatisfiable core.
pub fn explain(schema: &Schema, rest: &[String], budget: &Budget) -> Result<u8, String> {
    let [class] = rest else {
        return Err("explain query: <class>".to_string());
    };
    let c = find_class(schema, class)?;
    match minimal_unsat_core_governed(schema, c, &ExpansionConfig::default(), budget)
        .map_err(err_str)?
    {
        None => {
            println!("{class} is satisfiable; nothing to explain");
            Ok(0)
        }
        Some(core) => {
            println!(
                "{class} is unsatisfiable; minimal core ({} constraints):",
                core.len()
            );
            for r in &core {
                println!("  {}", r.describe(schema));
            }
            println!("removing any one of these restores satisfiability");
            Ok(1)
        }
    }
}
