//! `crsat sim` and `crsat store` — the robustness tooling subcommands.
//!
//! `sim` drives the `cr-sim` deterministic cluster simulation: sweep a
//! seed range (`--seeds`), replay one seed byte-identically
//! (`--replay`), or run the deliberate fsync-skip self-test
//! (`--self-test`) that proves the durability checker catches a lying
//! disk. Failing seeds are shrunk to a minimal fault schedule, each
//! fault naming the subsystem site it attacks.
//!
//! `store verify <path>` is the operator-facing twin of the
//! simulation's durability checker: a read-only CRC walk over a verdict
//! log (no repair, no writes) reporting recovered / truncated / corrupt
//! counts; any loss exits with code 2.

use std::path::Path;
use std::time::Duration;

use cr_sim::{run_schedule, shrink, swarm, FaultEvent, FaultKind, SimOptions, SimReport};

fn parse_u64(flag: &str, v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("{flag} needs a nonnegative integer, got {v:?}"))
}

struct SimFlags {
    seeds: u64,
    base_seed: u64,
    replay: Option<u64>,
    clients: Option<u64>,
    requests: Option<u64>,
    self_test: bool,
    verbose: bool,
}

fn parse_sim_flags(args: &[String]) -> Result<SimFlags, String> {
    let mut flags = SimFlags {
        seeds: 200,
        base_seed: 0,
        replay: None,
        clients: None,
        requests: None,
        self_test: false,
        verbose: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        match flag {
            "--self-test" => {
                flags.self_test = true;
                continue;
            }
            "--trace" | "-v" => {
                flags.verbose = true;
                continue;
            }
            "--seeds" | "--base-seed" | "--replay" | "--clients" | "--requests" => {}
            other => return Err(format!("unknown sim flag {other:?}")),
        }
        let value = match inline_value {
            Some(v) => v,
            None => iter
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .clone(),
        };
        let n = parse_u64(flag, &value)?;
        match flag {
            "--seeds" => flags.seeds = n,
            "--base-seed" => flags.base_seed = n,
            "--replay" => flags.replay = Some(n),
            "--clients" => flags.clients = Some(n),
            "--requests" => flags.requests = Some(n),
            _ => unreachable!("flag matched above"),
        }
    }
    Ok(flags)
}

fn options_from(flags: &SimFlags) -> SimOptions {
    let mut opts = SimOptions::default();
    if let Some(c) = flags.clients {
        opts.clients = c as usize;
    }
    if let Some(r) = flags.requests {
        opts.requests_per_client = r as usize;
    }
    opts
}

fn print_report(report: &SimReport, verbose: bool) {
    println!(
        "seed {}: {} requests, {} fault(s), promoted={}, violations={}",
        report.seed,
        report.requests,
        report.schedule.len(),
        report.promoted,
        report.violations.len()
    );
    if verbose {
        for line in &report.trace {
            println!("  {line}");
        }
    }
    for v in &report.violations {
        println!("  violation[{}]: {}", v.invariant, v.detail);
    }
}

fn print_schedule(label: &str, schedule: &[FaultEvent]) {
    println!("{label} ({} fault(s)):", schedule.len());
    for event in schedule {
        println!("  {event}");
    }
}

/// `crsat sim [--seeds n] [--base-seed n] [--replay seed] [--self-test]
/// [--clients n] [--requests n] [-v]`.
pub fn sim(args: &[String]) -> Result<u8, String> {
    let flags = parse_sim_flags(args)?;
    let opts = options_from(&flags);

    if flags.self_test {
        return self_test(&opts);
    }

    if let Some(seed) = flags.replay {
        // Replay is the debugging loop: run the seed twice and insist the
        // runs agree byte for byte before showing the trace.
        let first = cr_sim::run_seed(seed, &opts);
        let second = cr_sim::run_seed(seed, &opts);
        if first.trace != second.trace {
            return Err(format!(
                "simulation is nondeterministic: seed {seed} produced two \
                 different traces (this is a cr-sim bug)"
            ));
        }
        print_report(&first, true);
        if first.failed() {
            let shrunk = shrink(seed, &first.schedule, &opts);
            print_schedule("shrunk schedule", &shrunk);
            return Err(format!(
                "seed {seed} violated {} invariant(s)",
                first.violations.len()
            ));
        }
        return Ok(0);
    }

    let report = swarm(flags.base_seed, flags.seeds, &opts);
    println!(
        "swarm: {} seed(s) starting at {}, {} failure(s)",
        report.seeds_run,
        flags.base_seed,
        report.failures.len()
    );
    for failure in &report.failures {
        print_report(&failure.report, flags.verbose);
        print_schedule("  shrunk schedule", &failure.shrunk);
        println!(
            "  replay with: crsat sim --replay {} -v",
            failure.report.seed
        );
    }
    if report.passed() {
        Ok(0)
    } else {
        Err(format!(
            "simulation swarm: {} of {} seed(s) violated invariants",
            report.failures.len(),
            report.seeds_run
        ))
    }
}

/// The deliberate acked-durability violation: break fsync on purpose and
/// require the checker to (a) catch it and (b) shrink the schedule down
/// to the lying sync site. Proves the swarm's most important detector is
/// live, not vacuously green.
fn self_test(opts: &SimOptions) -> Result<u8, String> {
    let schedule = vec![
        FaultEvent {
            at: Duration::from_millis(1),
            kind: FaultKind::SkipFsync,
        },
        FaultEvent {
            at: Duration::from_millis(500),
            kind: FaultKind::DropReplConn { count: 1 },
        },
    ];
    let report = run_schedule(0xfa11, &schedule, opts);
    if !report
        .violations
        .iter()
        .any(|v| v.invariant == "acked-durability")
    {
        return Err("self-test FAILED: a lying fsync went undetected by the \
             acked-durability checker"
            .to_string());
    }
    let shrunk = shrink(0xfa11, &schedule, opts);
    if shrunk.len() != 1 || shrunk[0].kind.site() != "store.append.sync" {
        return Err(format!(
            "self-test FAILED: expected the schedule to shrink to the \
             store.append.sync site, got {shrunk:?}"
        ));
    }
    print_schedule("self-test: durability checker caught", &shrunk);
    println!("self-test: ok");
    Ok(0)
}

/// `crsat store verify <path>`: read-only scrub of a verdict log (a file,
/// or a cache directory containing `verdicts.log`).
pub fn store(args: &[String]) -> Result<u8, String> {
    let usage = "usage: crsat store verify <verdicts.log | cache-dir>";
    match args.first().map(String::as_str) {
        Some("verify") => {}
        _ => return Err(usage.to_string()),
    }
    let Some(target) = args.get(1) else {
        return Err(usage.to_string());
    };
    let mut path = Path::new(target).to_path_buf();
    if path.is_dir() {
        path = path.join("verdicts.log");
    }
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let replay = cr_store::scrub_image(&bytes);
    let undecodable = replay
        .payloads
        .iter()
        .filter(|p| cr_store::decode_entry(p).is_none())
        .count();
    println!(
        "{}: {} bytes, {} record(s) recovered ({} bytes), {} byte(s) truncated, \
         {} undecodable entr(ies), header {}",
        path.display(),
        bytes.len(),
        replay.payloads.len(),
        replay.kept_bytes,
        replay.truncated_bytes,
        undecodable,
        if replay.rebuilt { "INVALID" } else { "ok" }
    );
    if replay.rebuilt {
        return Err(format!(
            "{}: log header missing or unrecognized (whole file would be discarded)",
            path.display()
        ));
    }
    if replay.truncated_bytes > 0 || undecodable > 0 {
        return Err(format!(
            "{}: corruption detected ({} truncated byte(s), {} undecodable entr(ies))",
            path.display(),
            replay.truncated_bytes,
            undecodable
        ));
    }
    Ok(0)
}
