//! `crsat resume` — continue a budget-interrupted `check` from a
//! checkpoint written by `crsat check --checkpoint FILE`.
//!
//! The checkpoint carries the schema source, its canonical hash, the
//! solving strategy, and (when the fixpoint got far enough to have one)
//! the surviving candidate set. Resume re-parses the schema, refuses a
//! checkpoint whose hash disagrees with the re-parse (the schema changed
//! between interrupt and resume), seeds the fixpoint with the saved
//! frontier, and then reports exactly what `crsat check` would. Soundness
//! does not depend on the frontier being fresh: the alive set only ever
//! shrinks toward the maximal acceptable support, so any intermediate set
//! is a superset of the answer and converges to the same fixpoint.

use cr_core::checkpoint::Checkpoint;
use cr_core::expansion::ExpansionConfig;
use cr_core::sat::{Reasoner, Strategy};
use cr_core::Budget;

use super::{check_with_reasoner, err_str, strategy_name};

/// `crsat resume <checkpoint> [--certify]`.
pub fn resume(args: &[String], budget: &Budget) -> Result<u8, String> {
    let usage = "usage: crsat resume <checkpoint-file> [--certify]";
    let mut path = None;
    let mut certify = false;
    for arg in args {
        match arg.as_str() {
            "--certify" => certify = true,
            flag if flag.starts_with("--") => {
                return Err(format!("resume does not take {flag:?}\n{usage}"));
            }
            positional => {
                if path.replace(positional).is_some() {
                    return Err(usage.to_string());
                }
            }
        }
    }
    let Some(path) = path else {
        return Err(usage.to_string());
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cp = Checkpoint::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if cp.command != "check" {
        return Err(format!(
            "{path}: checkpoint is for {:?}, only \"check\" can be resumed",
            cp.command
        ));
    }
    let schema =
        cr_lang::parse_schema(&cp.schema_source).map_err(|e| format!("{path}: schema:{e}"))?;
    if !cp.matches_schema(cr_core::canonical_hash(&schema)) {
        return Err(format!(
            "{path}: canonical hash mismatch — the checkpointed schema does not \
             re-parse to the schema it was taken against"
        ));
    }
    let strategy = if cp.strategy == strategy_name(Strategy::Aggregated) {
        Strategy::Aggregated
    } else if cp.strategy == strategy_name(Strategy::Direct) {
        Strategy::Direct
    } else {
        return Err(format!("{path}: unknown strategy {:?}", cp.strategy));
    };

    // Mark the budget (and through it this run's RunReport) as a
    // continuation: `resumed_from_step` records how much work the
    // interrupted run had already charged.
    budget.note_resumed_from(cp.steps);
    match &cp.frontier {
        Some(alive) => println!(
            "resuming check from {path}: stage {}, {} steps charged, frontier {}/{} alive",
            cp.stage,
            cp.steps,
            alive.iter().filter(|&&a| a).count(),
            alive.len()
        ),
        None => println!(
            "resuming check from {path}: stage {}, {} steps charged, no frontier \
             (restarting the interrupted stage)",
            cp.stage, cp.steps
        ),
    }

    let r = Reasoner::with_budget_resumed(
        &schema,
        &ExpansionConfig::default(),
        strategy,
        budget,
        cp.frontier.as_deref(),
    )
    .map_err(err_str)?;
    check_with_reasoner(&schema, &r, certify, budget)
}
