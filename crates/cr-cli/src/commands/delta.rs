//! `crsat diff` — incremental re-check of an edited schema against a base.
//!
//! Computes the canonical constraint diff between the two files, runs the
//! `cr-delta` reuse pipeline (base expansion + fixpoint state seeded into
//! the edited schema's check), and reports which path answered: the delta
//! slice, or a transparent full re-check when the diff is structural or
//! invalidates too much of the base.

use cr_core::expansion::ExpansionConfig;
use cr_core::{Budget, Schema};
use cr_delta::{check_delta, DeltaConfig, DeltaContext, DeltaError, DeltaOutcome};

pub(crate) fn delta_err(e: DeltaError) -> String {
    match e {
        DeltaError::Malformed(what) => format!("delta: {what}"),
        DeltaError::Core(e) => super::err_str(e),
    }
}

/// `crsat diff <base.cr> <edited.cr>`: exit codes mirror `check` on the
/// edited schema (0 satisfiable, 1 some class finitely unsatisfiable).
pub fn diff(base: &Schema, edited: &Schema, budget: &Budget) -> Result<u8, String> {
    let config = ExpansionConfig::default();
    let diff = cr_lang::diff_canonical(&base.canonical_form(), &edited.canonical_form());
    let lines = diff.to_lines();
    if lines.is_empty() {
        println!("no constraint changes (schemas are canonically identical)");
    } else {
        println!("diff ({} line(s)):", lines.len());
        for line in &lines {
            println!("  {}", line.replace('\t', " "));
        }
    }
    let ctx = DeltaContext::from_schema(base, &config, budget).map_err(delta_err)?;
    println!("base   {}", ctx.hash_hex());
    match check_delta(&ctx, &diff, &DeltaConfig::default(), &config, budget).map_err(delta_err)? {
        DeltaOutcome::Checked(v) => {
            println!("edited {}", v.next.hash_hex());
            println!(
                "path delta: {} atom(s) invalidated, support {}, descent {}",
                v.atoms_invalidated,
                if v.support_reused {
                    "reused"
                } else {
                    "recomputed"
                },
                if v.seeded {
                    "seeded from base"
                } else {
                    "restarted"
                },
            );
            for c in &v.unsat_classes {
                println!("{c:<24} UNSATISFIABLE");
            }
            for r in &v.unsat_rels {
                println!("rel {r:<20} UNSATISFIABLE (empty in every finite model)");
            }
            if v.unsat_classes.is_empty() && v.unsat_rels.is_empty() {
                println!("satisfiable");
            }
            // As everywhere else, only unsatisfiable *classes* flip the
            // exit code; an empty-in-every-finite-model rel is reported.
            Ok(u8::from(!v.unsat_classes.is_empty()))
        }
        DeltaOutcome::Fallback { reason, .. } => {
            println!("path full ({reason})");
            super::check(edited, false, None, budget)
        }
    }
}
