//! Run configuration and per-case error plumbing for the `proptest!`
//! macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-block configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; the shim keeps the same order so
        // uncustomized blocks retain their coverage.
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!`); the runner draws another.
    Reject(String),
    /// The case failed (`prop_assert!` family); the runner panics.
    Fail(String),
}

/// Deterministic per-test generator: the seed is a hash of the fully
/// qualified test name, so every run of a given test replays the same
/// sequence of cases (there are no persistence files to rescue a failure —
/// determinism is the reproduction story).
pub fn seed_rng(test_path: &str) -> StdRng {
    // FNV-1a over the test path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeds_differ_by_test_name() {
        let mut a = seed_rng("crate::tests::alpha");
        let mut b = seed_rng("crate::tests::beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seeding_is_stable() {
        let mut a = seed_rng("same");
        let mut b = seed_rng("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
