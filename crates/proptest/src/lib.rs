//! Minimal, dependency-free stand-in for the subset of the `proptest` crate
//! API this workspace uses. The build environment has no access to
//! crates.io, so the workspace vendors this implementation.
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; re-running is deterministic (seeds derive from the
//!   test path), so failures reproduce exactly but are not minimized.
//! * **String strategies** (`"regex"` as a strategy) support only what the
//!   workspace uses: the `\PC*` class (any string of non-control
//!   characters). Other patterns panic at generation time.
//! * Case counts and rejection limits are honored; persistence files,
//!   forking, and timeouts are not implemented.
//!
//! The surface covered: `Strategy` (`prop_map`, `prop_flat_map`,
//! `prop_filter`, `boxed`), `Just`, `any`, integer-range strategies, tuple
//! strategies up to arity 6, `collection::{vec, btree_set}`, `option::of`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! / `prop_assume!` macros with `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a vector with size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set` — a set whose size is *at most*
    /// the sampled target (duplicates collapse, as in upstream).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: a narrow element domain may not admit
            // `target` distinct values.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Option`s of values from `inner`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of` — `None` a quarter of the time (upstream's
    /// default weighting), `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface tests pull in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop_oneof!` — uniform choice among the listed strategies (weights are
/// not supported; the workspace does not use them).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `prop_assert!` — fail the current case (with an optional formatted
/// message) without poisoning the whole test binary.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `{}` with the stringified condition as an argument, so brace
        // characters inside the condition never reach the format parser.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!` — equality assertion local to the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!` — inequality assertion local to the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// `prop_assume!` — discard the current case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The `proptest!` block macro: a set of `#[test]` functions whose
/// arguments are drawn from strategies, with an optional
/// `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::seed_rng(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejects += 1;
                            assert!(
                                rejects < config.cases.saturating_mul(16).max(4096),
                                "too many rejected cases in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                case,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}
