//! The `Strategy` trait and the combinators / base strategies the
//! workspace uses.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, UniformInt};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times a filtered strategy retries generation before giving up.
const FILTER_MAX_RETRIES: u32 = 1_000;

/// A generator of values of one type. Unlike upstream proptest there is no
/// value tree and no shrinking: `generate` yields a finished value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred`, retrying generation
    /// internally (upstream rejects-and-retries at the runner level).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that clones a fixed value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {} consecutive values",
            self.reason, FILTER_MAX_RETRIES
        );
    }
}

/// Uniform choice among type-erased alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Base strategies: integer ranges, `any`, tuples, and string "regexes".
// ---------------------------------------------------------------------------

impl<T> Strategy for Range<T>
where
    T: UniformInt,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: UniformInt,
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical whole-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary {
    /// Draws a uniform sample from the whole domain of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// Strategy for the whole domain of `T` (`proptest::prelude::any`).
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — every value of `T` equally likely.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-regex strategies. Upstream interprets any `&str` as a regex;
/// this shim recognizes only the patterns the workspace actually uses and
/// panics on anything else rather than mis-generating silently.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        match *self {
            // Any sequence of non-control characters (Unicode class `\PC`).
            "\\PC*" => {
                let len = rng.gen_range(0usize..64);
                (0..len).map(|_| gen_non_control_char(rng)).collect()
            }
            other => panic!("string strategy pattern {other:?} is not supported by the shim"),
        }
    }
}

/// A printable (non-control) char, biased toward ASCII so parser fuzzing
/// spends most of its effort near real token boundaries.
fn gen_non_control_char(rng: &mut StdRng) -> char {
    if rng.gen_bool(0.8) {
        // Printable ASCII.
        rng.gen_range(0x20u32..0x7F)
            .try_into()
            .expect("printable ASCII is valid char")
    } else {
        // A scattering of non-ASCII, non-control scalar values.
        loop {
            let c = match rng.gen_range(0u32..3) {
                0 => rng.gen_range(0xA1u32..0x250),    // Latin supplements
                1 => rng.gen_range(0x391u32..0x3CF),   // Greek
                _ => rng.gen_range(0x4E00u32..0x4F00), // CJK block start
            };
            if let Ok(c) = char::try_from(c) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::seed_rng;

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = seed_rng("compose");
        let s = (1usize..10)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_flat_map(|n| (Just(n), 0..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut rng);
            assert!(n % 2 == 0 && k < n);
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = seed_rng("union");
        let s = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn pc_star_never_emits_control_chars() {
        let mut rng = seed_rng("pcstar");
        for _ in 0..100 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
