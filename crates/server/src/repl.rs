//! Primary→standby replication: shipping the verdict log and applying it.
//!
//! Replication is *byte-level log shipping* inside the ordinary JSON-lines
//! protocol. The standby polls the primary with
//! `{"op":"replicate","offset":N,"epoch":E}`; the primary answers with a
//! [`ReplChunk`] of raw log bytes starting at `N` (or a `reset` order when
//! `N`/`E` are stale — the log was compacted, which rewrites the file and
//! bumps the epoch). The standby appends the bytes to its own mirror file
//! through [`cr_store::Replica`], which drains complete CRC frames and
//! hands back decoded payloads; those warm the standby's in-memory cache
//! immediately, so promotion serves a *warm* store with no recomputation.
//!
//! Correctness leans on two gates that already exist:
//!
//! * nothing enters the primary's log without passing the certificate
//!   check, so mirrored bytes carry certified verdicts;
//! * every frame is CRC-checked on apply, so a torn or corrupted ship is
//!   detected and answered with a resync, never silently applied.
//!
//! The standby's next poll offset is the position ack: a chunk the
//! standby crashed before applying is simply re-requested.

use std::io::{self, BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

use cr_trace::json::{self, Value};

use crate::cache::CachedVerdict;
use crate::persist::{decode_key, decode_verdict, PersistentStore};
use crate::protocol::{Op, ReplChunk, Request};
use crate::transport::{Conn, Connector, TcpConnector};

/// Largest data payload shipped in one replicate response. Bounded so a
/// cold standby syncing a large log neither stalls the primary's reader
/// thread nor produces a pathological response line.
pub const CHUNK_MAX: usize = 256 * 1024;

/// Primary side: builds the chunk answering a standby's poll for
/// `offset` under `epoch`.
pub(crate) fn ship_chunk(
    store: &PersistentStore,
    offset: Option<u64>,
    epoch: Option<u64>,
) -> io::Result<ReplChunk> {
    cr_faults::point!("server.repl.chunk", |p: Option<String>| Err(
        io::Error::other(p.unwrap_or_else(|| "injected replication fault".to_string()))
    ));
    let want_offset = offset.unwrap_or(0);
    let want_epoch = epoch.unwrap_or(0);
    let current_epoch = store.epoch();
    let log_len = store.log_bytes();
    // A fresh standby (offset 0) may name any epoch: there is nothing on
    // its side to invalidate. Otherwise, offsets from another epoch (a
    // compaction happened) or past the end (the standby mirrored a log
    // that has since been rewritten shorter) are meaningless — order a
    // restart from zero instead of shipping bytes that would splice.
    if want_offset > 0 && (want_epoch != current_epoch || want_offset > log_len) {
        return Ok(ReplChunk {
            offset: 0,
            log_len,
            epoch: current_epoch,
            reset: true,
            data: Vec::new(),
        });
    }
    let (data, log_len) = store.read_range(want_offset, CHUNK_MAX)?;
    Ok(ReplChunk {
        offset: want_offset,
        log_len,
        epoch: current_epoch,
        reset: false,
        data,
    })
}

/// Decodes replicated store payloads into cache-warmable verdicts.
/// Payloads that fail to decode are skipped (same tolerance as boot-time
/// rehydration: a future record format must not kill the follower).
pub fn warm_entries(payloads: &[Vec<u8>]) -> Vec<(String, String, CachedVerdict)> {
    let mut out = Vec::with_capacity(payloads.len());
    for payload in payloads {
        let Some((key, value)) = cr_store::decode_entry(payload) else {
            continue;
        };
        let Some((canonical, question)) = decode_key(key) else {
            continue;
        };
        let Some(verdict) = decode_verdict(value) else {
            continue;
        };
        out.push((canonical.to_string(), question.to_string(), verdict));
    }
    out
}

/// Standby side: a persistent JSON-lines client polling the primary for
/// log chunks. Reconnects lazily; any I/O or protocol failure surfaces as
/// an `Err` so the follower loop can count it against the promotion
/// timer.
pub struct FollowerClient {
    addr: String,
    conn: Option<BufReader<Box<dyn Conn>>>,
    seq: u64,
    io_timeout: Duration,
    connector: Arc<dyn Connector>,
}

impl FollowerClient {
    /// A client for the primary at `addr` (host:port), over TCP.
    /// `io_timeout` bounds each connect/read/write so a silently dead
    /// primary cannot wedge the follower past its promotion deadline.
    pub fn new(addr: impl Into<String>, io_timeout: Duration) -> FollowerClient {
        FollowerClient::with_connector(addr, io_timeout, Arc::new(TcpConnector))
    }

    /// A client dialing through an explicit [`Connector`] (the simulation
    /// injects its in-memory network here).
    pub fn with_connector(
        addr: impl Into<String>,
        io_timeout: Duration,
        connector: Arc<dyn Connector>,
    ) -> FollowerClient {
        FollowerClient {
            addr: addr.into(),
            conn: None,
            seq: 0,
            io_timeout,
            connector,
        }
    }

    /// One replicate round trip: asks for `offset` under `epoch`,
    /// returns the primary's chunk. A successful round trip doubles as a
    /// primary heartbeat.
    pub fn poll(&mut self, offset: u64, epoch: u64) -> Result<ReplChunk, String> {
        self.seq += 1;
        let mut req = Request::new(format!("repl-{}", self.seq), Op::Replicate);
        req.offset = Some(offset);
        req.epoch = Some(epoch);
        let line = self.roundtrip(&req.to_json())?;
        let v = json::parse(&line).map_err(|e| format!("primary sent malformed JSON: {e}"))?;
        match v.get("status").and_then(Value::as_str) {
            Some("ok") => {}
            Some(other) => {
                let detail = v
                    .get("detail")
                    .and_then(Value::as_arr)
                    .and_then(|d| d.first())
                    .and_then(Value::as_str)
                    .unwrap_or("");
                return Err(format!("primary refused replicate: {other} {detail}"));
            }
            None => return Err("primary response missing status".to_string()),
        }
        let repl = v.get("repl").ok_or("primary response missing repl chunk")?;
        ReplChunk::from_value(repl).ok_or_else(|| "primary sent malformed repl chunk".to_string())
    }

    /// Sends one request line and reads one response line, reconnecting
    /// once on a broken connection.
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        for attempt in 0..2 {
            if self.conn.is_none() {
                self.conn = Some(self.connect()?);
            }
            match self.try_roundtrip(line) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.conn = None;
                    if attempt == 1 {
                        return Err(format!("primary {}: {e}", self.addr));
                    }
                }
            }
        }
        unreachable!("loop returns on the second attempt");
    }

    fn try_roundtrip(&mut self, line: &str) -> io::Result<String> {
        let conn = self.conn.as_mut().expect("connection established");
        conn.get_mut().write_all(line.as_bytes())?;
        conn.get_mut().write_all(b"\n")?;
        conn.get_mut().flush()?;
        let mut resp = String::new();
        if conn.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "primary closed the connection",
            ));
        }
        Ok(resp)
    }

    fn connect(&self) -> Result<BufReader<Box<dyn Conn>>, String> {
        let conn = self
            .connector
            .connect(&self.addr, self.io_timeout)
            .map_err(|e| format!("primary {}: connect: {e}", self.addr))?;
        Ok(BufReader::new(conn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-server-repl-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_verdict() -> CachedVerdict {
        CachedVerdict {
            status: Status::Ok,
            verdict: "satisfiable".to_string(),
            detail: Vec::new(),
            trace_id: None,
        }
    }

    #[test]
    fn ship_chunk_streams_the_whole_log_and_warms_entries() {
        let dir = tmp("ship");
        let store = PersistentStore::open(&dir).expect("open");
        for i in 0..5 {
            store
                .persist(&format!("schema-{i}\n"), "check", &sample_verdict())
                .expect("persist");
        }
        let epoch = store.epoch();
        // Stream from zero to the end in bounded chunks.
        let mut offset = 0;
        let mirror_dir = tmp("ship-mirror");
        std::fs::create_dir_all(&mirror_dir).expect("mirror dir");
        let mut replica = cr_store::Replica::open(&mirror_dir.join("verdicts.log"))
            .map(|(r, _)| r)
            .expect("replica open");
        loop {
            let chunk = ship_chunk(&store, Some(offset), Some(epoch)).expect("ship");
            assert!(!chunk.reset);
            if chunk.data.is_empty() {
                assert_eq!(offset, chunk.log_len, "caught up means offset == len");
                break;
            }
            let outcome = replica
                .apply(chunk.offset, chunk.epoch, chunk.reset, &chunk.data)
                .expect("apply");
            assert!(!outcome.resynced);
            offset = replica.offset();
        }
        let payloads = {
            let (_, payloads) = cr_store::Replica::open(replica.path()).expect("reopen mirror");
            payloads
        };
        let warmed = warm_entries(&payloads);
        assert_eq!(warmed.len(), 5);
        assert!(warmed
            .iter()
            .any(|(c, q, v)| c == "schema-3\n" && q == "check" && v.verdict == "satisfiable"));
    }

    #[test]
    fn stale_epoch_or_offset_orders_a_reset() {
        let dir = tmp("reset");
        let store = PersistentStore::open(&dir).expect("open");
        store
            .persist("schema\n", "check", &sample_verdict())
            .expect("persist");
        let wrong_epoch = ship_chunk(&store, Some(8), Some(store.epoch() + 1)).expect("ship");
        assert!(wrong_epoch.reset);
        assert!(wrong_epoch.data.is_empty());
        let past_end =
            ship_chunk(&store, Some(store.log_bytes() + 999), Some(store.epoch())).expect("ship");
        assert!(past_end.reset);
        // Offset zero is always acceptable, whatever epoch the standby
        // names: it has nothing to invalidate.
        let fresh = ship_chunk(&store, Some(0), Some(store.epoch() + 7)).expect("ship");
        assert!(!fresh.reset);
        assert!(!fresh.data.is_empty());
    }

    #[test]
    fn warm_entries_skips_undecodable_payloads() {
        let good = {
            let dir = tmp("warm");
            let store = PersistentStore::open(&dir).expect("open");
            store
                .persist("c\n", "check", &sample_verdict())
                .expect("persist");
            let (_, payloads) =
                cr_store::Replica::open(&dir.join("verdicts.log")).expect("mirror of own log");
            payloads
        };
        let mut payloads = good;
        payloads.push(b"garbage".to_vec());
        payloads.push(Vec::new());
        assert_eq!(warm_entries(&payloads).len(), 1);
    }
}
