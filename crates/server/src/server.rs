//! The concurrent reasoning service: request processing, the stdio and TCP
//! transports, high availability, and graceful shutdown.
//!
//! One [`Server`] owns a [`WorkerPool`], a [`VerdictCache`], an
//! [`Admission`] gate, and a server-lifetime aggregate [`Tracer`].
//! Transports (stdio loop, TCP acceptor) only move bytes: every request
//! line becomes a pool job that computes the response and writes it to
//! its connection's shared writer. Responses therefore interleave across
//! requests of one connection — clients correlate by `id`.
//!
//! High availability is three cooperating mechanisms:
//!
//! * **Replication / failover** — a server started with `config.follow`
//!   boots as a *standby*: it mirrors the primary's verdict log byte-for-
//!   byte (see [`crate::repl`]) into its own `cache_dir` and warms its
//!   cache from every applied chunk. It serves replicated verdicts but
//!   refuses fresh computation (so the two never diverge). When the
//!   primary's heartbeat (a successful replicate poll) lapses for
//!   `promote_after_ms`, or a `promote` request arrives, the standby
//!   [`Server::promote`]s: the mirror becomes its durable store and it
//!   starts computing — warm, with every acknowledged verdict intact.
//! * **Supervision** — a supervisor thread respawns dead workers, trips
//!   the cancel token of wedged requests (past deadline + grace), relaxes
//!   the admission gate, and quarantines poison schemas that crash the
//!   pipeline repeatedly (see [`crate::supervise`]).
//! * **Admission control** — requests carrying `deadline_ms` are refused
//!   up front (`shed` status, exit code 4, retryable) when they cannot
//!   meet their deadline; under queue-delay overload an AIMD threshold
//!   sheds the lowest-priority work first (see [`crate::admission`]).
//!   Concurrent identical requests coalesce onto one computation (see
//!   [`crate::flight`]).
//!
//! Shutdown: a `shutdown` request, stdin EOF (ctrl-D), or SIGTERM/SIGINT
//! (see [`crate::signal`]) makes the transports stop reading, after which
//! [`Server::finish`] joins the helper threads and drains the pool —
//! queued and in-flight requests complete and flush their responses. A
//! *second* SIGTERM/SIGINT should call [`Server::cancel_inflight`], which
//! trips every in-flight request's cancel token so reasoning aborts at
//! its next governor check and reports `budget-exceeded` instead of
//! stalling shutdown.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cr_core::{Budget, CancelToken, Clock};
use cr_store::{Replica, Vfs};
use cr_trace::{Counter, NullSink, RunReport, Tracer};

use crate::admission::{Admission, Admit};
use crate::cache::{CacheKey, CachedVerdict, VerdictCache};
use crate::eval;
use crate::flight;
use crate::metrics::{
    self, MetricsView, ReplView, SharedSink, StoreView, Telemetry, COARSE_WINDOW_NS, FINE_WINDOW_NS,
};
use crate::persist::{PersistentStore, StoreRecovery};
use crate::pool::{SubmitError, WorkerPool};
use crate::protocol::{Op, ReplChunk, Request, Response, Status};
use crate::repl::{self, FollowerClient};
use crate::supervise::{InflightRegistry, PoisonTracker};

/// Tunables for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (default: available parallelism, capped at 8).
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue sheds with a
    /// retryable `shed` response rather than buffering unboundedly.
    pub queue_capacity: usize,
    /// Approximate verdict-cache capacity, in entries.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Default per-request deadline when the request names none.
    pub default_timeout_ms: Option<u64>,
    /// Default per-request step budget when the request names none.
    pub default_max_steps: Option<u64>,
    /// Directory for the durable verdict store (`None` = memory-only).
    /// When set, certified `check` verdicts are appended to
    /// `<dir>/verdicts.log` and rehydrated into the cache on boot, so a
    /// restarted server answers previously settled questions warm. A
    /// standby (`follow` set) *requires* it: the mirror lives there.
    pub cache_dir: Option<PathBuf>,
    /// Primary address (`host:port`) to follow. `Some` boots the server
    /// as a warm standby instead of a primary.
    pub follow: Option<String>,
    /// How often the standby polls the primary for log chunks.
    pub follow_poll_ms: u64,
    /// How long the primary's heartbeat may lapse before the standby
    /// promotes itself.
    pub promote_after_ms: u64,
    /// File to (atomically) write the bound TCP address to. A standby
    /// prefixes the line with `standby `; promotion rewrites it, so a
    /// client watching the file is redirected without a torn read.
    pub port_file: Option<PathBuf>,
    /// Queue-delay target for the admission gate: sustained delay above
    /// this sheds low-priority work (AIMD; see [`Admission`]).
    pub shed_target_ms: u64,
    /// Supervisor tick interval.
    pub supervise_interval_ms: u64,
    /// Address (`host:port`) for the telemetry endpoint serving
    /// `GET /metrics` (Prometheus text) and `GET /statusz` (JSON).
    /// `None` disables the listener. Scrapes share the server's
    /// shutdown lifecycle but never its worker pool or request queue.
    pub metrics_addr: Option<String>,
    /// Where the server-lifetime aggregate tracer emits its events
    /// (promotion notices and other operational messages). `None` keeps
    /// the aggregate silent, as before.
    pub event_sink: Option<SharedSink>,
    /// Time source for admission cooldowns, wedge timers, and follower
    /// deadline waits. Defaults to the monotonic wall clock; the
    /// deterministic simulation injects a manually advanced one.
    pub clock: Clock,
    /// Filesystem the durable store, standby mirror, and port file are
    /// written through. Defaults to the real filesystem; the simulation
    /// injects an in-memory one with crash/torn-write fault injection.
    pub vfs: Arc<dyn Vfs>,
    /// How the replication follower dials the primary. Defaults to TCP;
    /// the simulation injects an in-memory network.
    pub connector: Arc<dyn crate::transport::Connector>,
    /// Store compaction threshold override in bytes (`None` = the store's
    /// default). Tests and the simulation set this low to force
    /// compaction-triggered epoch resets.
    pub store_compact_threshold: Option<u64>,
    /// Standby only: when true, no follower thread is spawned — an
    /// external driver pumps replication via [`Server::follower_step`]
    /// and decides promotion itself. The deterministic simulation uses
    /// this to run the follower on virtual time.
    pub follow_external: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            workers: parallelism.min(8),
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            default_timeout_ms: None,
            default_max_steps: None,
            cache_dir: None,
            follow: None,
            follow_poll_ms: 100,
            promote_after_ms: 3000,
            port_file: None,
            shed_target_ms: 50,
            supervise_interval_ms: 100,
            metrics_addr: None,
            event_sink: None,
            clock: Clock::monotonic(),
            vfs: cr_store::std_vfs(),
            connector: Arc::new(crate::transport::TcpConnector),
            store_compact_threshold: None,
            follow_external: false,
        }
    }
}

/// Most delta bases a server keeps pinned at once. Each pinned base holds
/// a schema plus its expansion atoms and witness — bounded memory, and an
/// edit stream only ever needs its current head pinned.
const MAX_PINNED_BASES: usize = 64;

/// Outcome of one [`Server::follower_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerStep {
    /// A chunk was polled and applied; `more` means it was full and the
    /// next poll should follow without delay (mid-catch-up streaming).
    Applied {
        /// More bytes are waiting on the primary.
        more: bool,
    },
    /// The mirror is gone — promotion already consumed it; stop pumping.
    Stopped,
}

/// This node computes and replicates out.
const ROLE_PRIMARY: u8 = 0;
/// This node mirrors a primary and refuses fresh computation.
const ROLE_STANDBY: u8 = 1;

struct Inner {
    config: ServerConfig,
    pool: WorkerPool,
    cache: VerdictCache,
    /// Durable verdict store. Present on a primary with a `cache_dir`;
    /// `None` on a standby until promotion installs one (behind `RwLock`
    /// because promotion swaps it while readers serve lookups).
    store: RwLock<Option<PersistentStore>>,
    /// Standby mirror of the primary's log; taken (and closed) by
    /// promotion.
    replica: Mutex<Option<Replica>>,
    role: AtomicU8,
    admission: Admission,
    inflight: InflightRegistry,
    poison: PoisonTracker,
    flights: flight::Inflight,
    /// Sequence numbers for the in-flight registry.
    next_seq: AtomicU64,
    /// Delta bases pinned by `pin_base` (and auto-pinned by successful
    /// `check_delta` verdicts), keyed by canonical hash hex. Bounded by
    /// [`MAX_PINNED_BASES`]; an arbitrary entry is evicted past that.
    pinned: Mutex<HashMap<String, Arc<cr_delta::DeltaContext>>>,
    /// The TCP address we bound (for the port file).
    bound_addr: Mutex<Option<SocketAddr>>,
    /// The telemetry endpoint's bound address, when one is configured.
    metrics_bound: Mutex<Option<SocketAddr>>,
    /// Live time-series registry: every response records its latency and
    /// shed-ness here; scrapes and the `stats` op read it.
    telemetry: Telemetry,
    /// Standby: the primary's log length at the last successful poll —
    /// what replication lag is measured against.
    repl_head: AtomicU64,
    /// Supervisor / follower threads, joined by [`Server::finish`].
    helpers: Mutex<Vec<JoinHandle<()>>>,
    /// Persist/replication failures swallowed so far. A failed append
    /// never fails the request — the verdict was already computed and
    /// certified — but it must not vanish either; `stats` surfaces this.
    store_errors: AtomicU64,
    cancel: CancelToken,
    shutdown: AtomicBool,
    /// Server-lifetime aggregate counters (cache traffic, requests served);
    /// the `stats` op snapshots this tracer.
    aggregate: Tracer,
}

/// The service. Cheap to clone (an `Arc`); all state is shared.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Builds a server (spawning its worker threads immediately). Panics if
    /// `config.cache_dir` names an unopenable store — use [`Server::open`]
    /// to handle that as an error.
    pub fn new(config: ServerConfig) -> Server {
        Server::open(config).expect("verdict store")
    }

    /// Builds a server. A primary opens (and recovers) the durable verdict
    /// store when `config.cache_dir` is set and rehydrates the in-memory
    /// cache from it — a restarted daemon answers previously certified
    /// questions warm. A standby (`config.follow` set) instead opens its
    /// mirror of the primary's log, warms the cache from it, and starts a
    /// follower thread streaming the rest. Store recovery details are
    /// available via [`Server::store_recovery`] for the caller to report.
    pub fn open(config: ServerConfig) -> Result<Server, String> {
        let standby = config.follow.is_some();
        let cache = VerdictCache::new(config.cache_capacity, config.cache_shards);
        let mut store = None;
        let mut replica = None;
        if standby {
            let dir = config.cache_dir.clone().ok_or_else(|| {
                "standby mode (--follow) requires a cache dir for the mirrored log".to_string()
            })?;
            config
                .vfs
                .create_dir_all(&dir)
                .map_err(|e| format!("create standby dir {}: {e}", dir.display()))?;
            let (rep, payloads) = Replica::open_on(config.vfs.as_ref(), &dir.join("verdicts.log"))
                .map_err(|e| format!("open standby mirror: {e}"))?;
            for (canonical, question, verdict) in repl::warm_entries(&payloads) {
                let shard_hash = cr_core::canonical_text_hash(&canonical);
                cache.insert(
                    shard_hash,
                    CacheKey {
                        canonical,
                        question,
                    },
                    verdict,
                );
            }
            replica = Some(rep);
        } else if let Some(dir) = &config.cache_dir {
            let opened = PersistentStore::open_on(
                Arc::clone(&config.vfs),
                dir,
                config.store_compact_threshold,
            )?;
            // Rehydrate. Store order is log order (oldest first), so under
            // LRU pressure the cache keeps the most recently persisted
            // verdicts; the rest stay reachable through the read-through.
            for (canonical, question, verdict) in opened.entries() {
                let shard_hash = cr_core::canonical_text_hash(&canonical);
                cache.insert(
                    shard_hash,
                    CacheKey {
                        canonical,
                        question,
                    },
                    verdict,
                );
            }
            store = Some(opened);
        }
        let aggregate = match &config.event_sink {
            Some(sink) => Tracer::new(Box::new(sink.clone())),
            None => Tracer::new(Box::new(NullSink)),
        };
        let server = Server {
            inner: Arc::new(Inner {
                pool: WorkerPool::new(config.workers, config.queue_capacity),
                cache,
                store: RwLock::new(store),
                replica: Mutex::new(replica),
                role: AtomicU8::new(if standby { ROLE_STANDBY } else { ROLE_PRIMARY }),
                admission: Admission::with_clock(config.shed_target_ms, config.clock.clone()),
                inflight: InflightRegistry::with_clock(config.clock.clone()),
                poison: PoisonTracker::default(),
                flights: flight::Inflight::with_clock(config.clock.clone()),
                next_seq: AtomicU64::new(0),
                pinned: Mutex::new(HashMap::new()),
                bound_addr: Mutex::new(None),
                metrics_bound: Mutex::new(None),
                // Sized for the workers plus a few transport threads that
                // record shed/error responses from outside the pool.
                telemetry: Telemetry::new(config.workers + 4),
                repl_head: AtomicU64::new(0),
                helpers: Mutex::new(Vec::new()),
                store_errors: AtomicU64::new(0),
                cancel: CancelToken::new(),
                shutdown: AtomicBool::new(false),
                aggregate,
                config,
            }),
        };
        server.spawn_supervisor();
        if standby && !server.inner.config.follow_external {
            server.spawn_follower();
        }
        if let Some(addr) = server.inner.config.metrics_addr.clone() {
            server.spawn_metrics(&addr)?;
        }
        Ok(server)
    }

    /// What store recovery found at boot (`None` when running without a
    /// primary store — memory-only or still a standby). The CLI reports
    /// truncation so an operator can tell a clean boot from a
    /// crash-recovered one.
    pub fn store_recovery(&self) -> Option<StoreRecovery> {
        self.read_store().as_ref().map(|s| s.recovery())
    }

    /// Number of live verdicts in the durable store (`None` when running
    /// without one).
    pub fn persisted_verdicts(&self) -> Option<usize> {
        self.read_store().as_ref().map(|s| s.len())
    }

    /// Forces a verdict-store compaction (admin hook): rewrites the log
    /// down to its live set and bumps the replication epoch, so every
    /// standby's next poll resyncs from offset zero. Returns `Ok(false)`
    /// when there is no store to compact (memory-only, or a standby).
    pub fn compact_store(&self) -> io::Result<bool> {
        match self.read_store().as_ref() {
            Some(store) => {
                store.compact()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The server-lifetime aggregate report — what a transport emits as the
    /// final RunReport when it drains (EOF, `shutdown` op, or signal: all
    /// paths converge in [`Server::finish`]).
    pub fn final_report(&self, outcome: &str) -> RunReport {
        self.inner.aggregate.report("serve", outcome)
    }

    /// The server-wide cancellation token. New requests inherit its state;
    /// prefer [`Server::cancel_inflight`] to also abort work already
    /// running under per-request tokens.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Aborts all reasoning: trips the server-wide token (so requests
    /// picked up from now on start pre-cancelled) and every in-flight
    /// request's own token (so running work aborts at its next governor
    /// check with an honest `budget-exceeded`).
    pub fn cancel_inflight(&self) {
        self.inner.cancel.cancel();
        self.inner.inflight.cancel_all();
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown: transports stop reading; call
    /// [`Server::finish`] to drain.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// True while this node is a standby (mirroring, not computing).
    pub fn is_standby(&self) -> bool {
        self.inner.role.load(Ordering::SeqCst) == ROLE_STANDBY
    }

    /// `"primary"` or `"standby"`.
    pub fn role(&self) -> &'static str {
        if self.is_standby() {
            "standby"
        } else {
            "primary"
        }
    }

    /// Promotes a standby to primary: closes the mirror, opens it as the
    /// durable store (every replicated verdict intact and already warm in
    /// cache), flips the role, and rewrites the port file. Idempotent on a
    /// primary (`Ok("already-primary")`); an `Err` means a concurrent
    /// promotion is mid-swap.
    pub fn promote(&self) -> Result<&'static str, String> {
        let replica = self
            .inner
            .replica
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let Some(mut replica) = replica else {
            if self.is_standby() {
                return Err("promotion already in progress".to_string());
            }
            return Ok("already-primary");
        };
        let _ = replica.sync();
        drop(replica);
        let dir = self
            .inner
            .config
            .cache_dir
            .clone()
            .ok_or_else(|| "standby has no cache dir".to_string())?;
        let store = PersistentStore::open_on(
            Arc::clone(&self.inner.config.vfs),
            &dir,
            self.inner.config.store_compact_threshold,
        )?;
        *self.inner.store.write().unwrap_or_else(|e| e.into_inner()) = Some(store);
        self.inner.role.store(ROLE_PRIMARY, Ordering::SeqCst);
        self.inner.aggregate.add(Counter::Promotions, 1);
        // The promotion notice rides the aggregate's event sink (when the
        // embedder configured one) instead of raw stderr, so every sink —
        // human stderr, JSON lines — sees the same lifecycle.
        self.inner
            .aggregate
            .message("promoted: standby became primary; mirror is now the durable store");
        self.write_port_file();
        Ok("promoted")
    }

    /// Joins the helper threads, drains queued and in-flight work, joins
    /// the workers, then flushes the durable store / syncs the mirror.
    /// Idempotent.
    pub fn finish(&self) {
        self.request_shutdown();
        let helpers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.inner.helpers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in helpers {
            let _ = h.join();
        }
        self.inner.pool.shutdown_drain();
        if let Some(store) = self.read_store().as_ref() {
            if store.flush().is_err() {
                self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(rep) = self
            .inner
            .replica
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = rep.sync();
        }
    }

    /// Current number of cached verdicts (stats/test aid).
    pub fn cached_verdicts(&self) -> usize {
        self.inner.cache.len()
    }

    /// Aggregate counter value (stats/test aid).
    pub fn aggregate_counter(&self, c: Counter) -> u64 {
        self.inner.aggregate.counter(c)
    }

    fn read_store(&self) -> std::sync::RwLockReadGuard<'_, Option<PersistentStore>> {
        self.inner.store.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Processes one request line to one response line. This is the whole
    /// service in synchronous form — transports wrap it in pool jobs, tests
    /// can call it directly. (The transport path also runs the admission
    /// gate; this direct path does not — local callers have no queue.)
    pub fn process_line(&self, line: &str) -> Response {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(msg) => {
                self.inner.aggregate.add(Counter::RequestsServed, 1);
                self.inner.telemetry.record(0, false);
                return Response::error(Request::salvage_id(line), msg);
            }
        };
        self.process_request(&request)
    }

    /// Processes an already-parsed request (the `crsat batch` entry point —
    /// no JSON round-trip needed for local work). Requests arriving without
    /// a trace id get one minted here, so every response carries one.
    pub fn process_request(&self, request: &Request) -> Response {
        if request.trace_id.is_some() {
            return self.process_picked(request, Duration::ZERO);
        }
        let mut traced = request.clone();
        traced.trace_id = Some(cr_trace::mint_trace_id());
        self.process_picked(&traced, Duration::ZERO)
    }

    /// The full transport path in synchronous form: parse, mint a trace
    /// id, run the admission gate, execute under panic containment — and
    /// *always* return exactly one response, exactly as a connection
    /// handler would write back for this line. The deterministic
    /// simulation's clients and the protocol fuzzer call this directly:
    /// it exercises the same code as the TCP path minus the worker pool
    /// (the caller's thread is the worker), so the one-response-per-line
    /// contract is checkable without sockets.
    pub fn respond_line(&self, line: &str) -> Response {
        let mut request = match Request::parse(line) {
            Ok(r) => r,
            Err(msg) => {
                self.inner.aggregate.add(Counter::RequestsServed, 1);
                self.inner.telemetry.record(0, false);
                return Response::error(Request::salvage_id(line), msg);
            }
        };
        if request.trace_id.is_none() {
            request.trace_id = Some(cr_trace::mint_trace_id());
        }
        if matches!(
            request.op,
            Op::Check | Op::Implies | Op::PinBase | Op::CheckDelta
        ) {
            let schema_len = request.schema.as_deref().map_or(0, str::len)
                + request.diff.iter().map(String::len).sum::<usize>();
            if let Admit::Shed { reason, deadline } =
                self.inner
                    .admission
                    .admit(request.deadline_ms, request.priority, schema_len)
            {
                self.count_shed(deadline);
                let mut response = Response::shed(request.id.clone(), reason);
                response.trace_id = request.trace_id.clone();
                return response;
            }
        }
        let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.process_picked(&request, Duration::ZERO)
        }));
        work.unwrap_or_else(|panic| {
            let mut response =
                Response::error(request.id.clone(), format!("panic: {}", panic_text(&panic)));
            response.trace_id = request.trace_id.clone();
            response
        })
    }

    /// Submits a job to the server's worker pool, blocking while the
    /// bounded queue is full. This is the local (daemon-less) path:
    /// `crsat batch` fans file checks out over the same pool the daemon
    /// uses, with no client to push back on.
    pub fn submit(&self, job: crate::pool::Job) -> Result<(), SubmitError> {
        self.inner.pool.submit_blocking(job)
    }

    /// Submits a job without blocking, refusing with
    /// [`SubmitError::QueueFull`] under backpressure. Callers that can
    /// re-create the job (`crsat batch`) retry with backoff instead of
    /// parking a thread on the queue condvar — which also routes them
    /// through the overload path the chaos harness exercises.
    pub fn try_submit(&self, job: crate::pool::Job) -> Result<(), SubmitError> {
        self.inner.pool.try_submit(job)
    }

    /// A request picked up for execution after `queue_delay` in the queue.
    /// Central accounting point: every response produced here is counted,
    /// and queue delay feeds the admission gate's overload estimate.
    fn process_picked(&self, request: &Request, queue_delay: Duration) -> Response {
        let started = Instant::now();
        if matches!(
            request.op,
            Op::Check | Op::Implies | Op::PinBase | Op::CheckDelta
        ) {
            self.inner.admission.note_queue_delay(queue_delay);
        }
        let mut response = self.process(request, queue_delay);
        // Trace propagation is centralized: whatever id the request
        // carried (client-supplied or minted at admission) is echoed on
        // its response, whichever path produced it.
        response.trace_id = request.trace_id.clone();
        self.inner.aggregate.add(Counter::RequestsServed, 1);
        let shed = response.status == Status::Shed;
        if shed {
            self.inner.aggregate.add(Counter::RequestsShed, 1);
            if response
                .detail
                .first()
                .is_some_and(|d| d.starts_with("deadline"))
            {
                self.inner.aggregate.add(Counter::DeadlineRejected, 1);
            }
        }
        let latency = queue_delay + started.elapsed();
        self.inner
            .telemetry
            .record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX), shed);
        response
    }

    fn process(&self, request: &Request, queue_delay: Duration) -> Response {
        match request.op {
            Op::Ping => Response {
                id: request.id.clone(),
                status: Status::Ok,
                verdict: Some("pong".to_string()),
                detail: Vec::new(),
                cached: false,
                schema_hash: None,
                report: None,
                repl: None,
                trace_id: None,
            },
            Op::Stats => self.stats_response(&request.id),
            Op::Shutdown => {
                self.request_shutdown();
                Response {
                    id: request.id.clone(),
                    status: Status::Ok,
                    verdict: Some("shutting-down".to_string()),
                    detail: Vec::new(),
                    cached: false,
                    schema_hash: None,
                    report: None,
                    repl: None,
                    trace_id: None,
                }
            }
            Op::Replicate => self.handle_replicate(request),
            Op::Promote => self.handle_promote(request),
            Op::Check | Op::Implies => self.reason(request, queue_delay),
            Op::PinBase => self.handle_pin_base(request),
            Op::CheckDelta => self.handle_check_delta(request, queue_delay),
        }
    }

    /// Primary side of replication: answer a standby's poll with a log
    /// chunk.
    fn handle_replicate(&self, request: &Request) -> Response {
        let store = self.read_store();
        let Some(store) = store.as_ref() else {
            return Response::error(
                request.id.clone(),
                "standby: cannot replicate from a standby",
            );
        };
        match repl::ship_chunk(store, request.offset, request.epoch) {
            Ok(chunk) => {
                if !chunk.data.is_empty() {
                    self.inner
                        .aggregate
                        .add(Counter::ReplBytesShipped, chunk.data.len() as u64);
                }
                Response {
                    id: request.id.clone(),
                    status: Status::Ok,
                    verdict: Some("replicate".to_string()),
                    detail: Vec::new(),
                    cached: false,
                    schema_hash: None,
                    report: None,
                    repl: Some(chunk),
                    trace_id: None,
                }
            }
            Err(e) => Response::error(request.id.clone(), format!("replicate: {e}")),
        }
    }

    fn handle_promote(&self, request: &Request) -> Response {
        match self.promote() {
            Ok(word) => Response {
                id: request.id.clone(),
                status: Status::Ok,
                verdict: Some(word.to_string()),
                detail: Vec::new(),
                cached: false,
                schema_hash: None,
                report: None,
                repl: None,
                trace_id: None,
            },
            Err(e) => Response::error(request.id.clone(), format!("promote: {e}")),
        }
    }

    /// A per-request budget for the delta ops: tracer, cancellation, and
    /// the request's (or server default) timeout/step limits. The returned
    /// tracer outlives the budget so the handler can build a RunReport.
    fn delta_budget(&self) -> (Tracer, CancelToken) {
        let tracer = Tracer::new(Box::new(NullSink));
        let cancel = CancelToken::new();
        if self.inner.cancel.is_cancelled() {
            cancel.cancel();
        }
        (tracer, cancel)
    }

    fn budget_for(&self, request: &Request, tracer: &Tracer, cancel: &CancelToken) -> Budget {
        let mut budget = Budget::unlimited()
            .with_tracer(tracer)
            .with_cancel_token(cancel);
        if let Some(ms) = request.timeout_ms.or(self.inner.config.default_timeout_ms) {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(steps) = request.max_steps.or(self.inner.config.default_max_steps) {
            budget = budget.with_max_steps(steps);
        }
        budget
    }

    /// Pins a schema as a delta base: parse, canonicalize, run the full
    /// pipeline once (unless the hash is already pinned), and remember its
    /// reusable state under the canonical hash for `check_delta`.
    fn handle_pin_base(&self, request: &Request) -> Response {
        if self.is_standby() {
            return Response::error(
                request.id.clone(),
                "standby: cannot pin delta bases; retry on the primary",
            );
        }
        let source = request.schema.as_deref().unwrap_or_default();
        let schema = match cr_lang::parse_schema(source) {
            Ok(s) => s,
            Err(e) => return Response::error(request.id.clone(), format!("schema:{e}")),
        };
        let canonical = schema.canonical_form();
        let hash_hex = format!("{:032x}", cr_core::canonical_text_hash(&canonical));
        let already = {
            let pinned = self.inner.pinned.lock().unwrap_or_else(|e| e.into_inner());
            pinned.contains_key(&hash_hex)
        };
        let (tracer, cancel) = self.delta_budget();
        if !already {
            let budget = self.budget_for(request, &tracer, &cancel);
            let ctx = match cr_delta::DeltaContext::from_canonical(
                &canonical,
                &Default::default(),
                &budget,
            ) {
                Ok(ctx) => ctx,
                Err(e) => {
                    let answer = eval::delta_error_answer(e, &budget);
                    let mut report =
                        cr_core::run_report(&budget, "pin_base", answer.status.as_str());
                    report.target = hash_hex.clone();
                    report.trace_id = request.trace_id.clone();
                    return Response {
                        id: request.id.clone(),
                        status: answer.status,
                        verdict: None,
                        detail: answer.detail,
                        cached: false,
                        schema_hash: Some(hash_hex),
                        report: Some(report),
                        repl: None,
                        trace_id: None,
                    };
                }
            };
            self.pin_context(Arc::new(ctx));
        }
        let budget = self.budget_for(request, &tracer, &cancel);
        let mut report = cr_core::run_report(&budget, "pin_base", "ok");
        report.target = hash_hex.clone();
        report.trace_id = request.trace_id.clone();
        Response {
            id: request.id.clone(),
            status: Status::Ok,
            verdict: Some("pinned".to_string()),
            detail: Vec::new(),
            cached: already,
            schema_hash: Some(hash_hex),
            report: Some(report),
            repl: None,
            trace_id: None,
        }
    }

    /// Remembers a delta context under its canonical hash, evicting an
    /// arbitrary entry when the registry is full.
    fn pin_context(&self, ctx: Arc<cr_delta::DeltaContext>) {
        let mut pinned = self.inner.pinned.lock().unwrap_or_else(|e| e.into_inner());
        if pinned.len() >= MAX_PINNED_BASES && !pinned.contains_key(&ctx.hash_hex()) {
            if let Some(k) = pinned.keys().next().cloned() {
                pinned.remove(&k);
            }
        }
        pinned.insert(ctx.hash_hex(), ctx);
    }

    /// The `check_delta` path: pinned-base lookup → delta cache lookup →
    /// `cr-delta` reuse pipeline → cache/persist under (base hash, diff
    /// hash) → auto-pin the edited schema for the next edit. Falls back to
    /// a full check when the base is unknown (and the request carries a
    /// schema), when the diff is structural, or when invalidation blows
    /// past the threshold — transparently: the client still gets a
    /// verdict, plus a detail line naming the fallback.
    fn handle_check_delta(&self, request: &Request, queue_delay: Duration) -> Response {
        if self.is_standby() {
            return Response::error(
                request.id.clone(),
                "standby: cannot check deltas; retry on the primary",
            );
        }
        let base_hash = request.base.clone().unwrap_or_default();
        let base = {
            let pinned = self.inner.pinned.lock().unwrap_or_else(|e| e.into_inner());
            pinned.get(&base_hash).cloned()
        };
        let Some(base) = base else {
            // Base miss. With a schema in hand the check still succeeds —
            // as a plain full check — so an evicted or never-pinned base
            // degrades performance, not availability.
            self.inner.aggregate.add(Counter::DeltaFallbacks, 1);
            if request.schema.is_some() {
                let mut full = request.clone();
                full.op = Op::Check;
                let mut response = self.reason(&full, queue_delay);
                response
                    .detail
                    .push(format!("delta-fallback: base {base_hash} not pinned"));
                return response;
            }
            return Response::error(
                request.id.clone(),
                format!("unknown delta base {base_hash}; pin_base it first or include a \"schema\" field"),
            );
        };

        let diff = match cr_lang::SchemaDiff::parse_lines(&request.diff) {
            Ok(d) => d,
            Err(e) => return Response::error(request.id.clone(), format!("diff: {e}")),
        };
        let diff_hash = format!("{:032x}", diff.hash());
        // The verdict is about the *edited* schema: `schema_hash` carries
        // its hash (which is also the auto-pinned context's key, so a
        // client can chain the next edit off the response), while the
        // report target keeps naming the base the delta ran against.
        let edited_hash_hex = match cr_lang::apply_diff(base.canonical(), &diff) {
            Ok(c) => format!("{:032x}", cr_core::canonical_text_hash(&c)),
            Err(e) => return Response::error(request.id.clone(), format!("delta: {e}")),
        };
        let key = CacheKey {
            canonical: base.canonical().to_string(),
            question: format!("delta {base_hash} {diff_hash}"),
        };
        let shard_hash = base.hash();

        let (tracer, cancel) = self.delta_budget();
        let budget = self.budget_for(request, &tracer, &cancel);

        // Delta verdicts are cached and persisted like any other verdict,
        // keyed by (base canonical, "delta <base> <diff>") — warm restarts
        // and standbys replay them from the same log records.
        if let Some(hit) = self.inner.cache.get(shard_hash, &key) {
            tracer.add(Counter::CacheHits, 1);
            self.inner.aggregate.add(Counter::CacheHits, 1);
            self.inner.aggregate.add(Counter::DeltaHits, 1);
            let mut report = cr_core::run_report(&budget, "check_delta", hit.status.as_str());
            report.target = base_hash.clone();
            report.trace_id = request.trace_id.clone();
            return Response {
                id: request.id.clone(),
                status: hit.status,
                verdict: (!hit.verdict.is_empty()).then(|| hit.verdict.clone()),
                detail: hit.detail,
                cached: true,
                schema_hash: Some(edited_hash_hex),
                report: Some(report),
                repl: None,
                trace_id: None,
            };
        }
        {
            let store = self.read_store();
            if let Some(hit) = store
                .as_ref()
                .and_then(|s| s.lookup(&key.canonical, &key.question))
            {
                tracer.add(Counter::StoreHits, 1);
                self.inner.aggregate.add(Counter::StoreHits, 1);
                self.inner.aggregate.add(Counter::DeltaHits, 1);
                let mut report = cr_core::run_report(&budget, "check_delta", hit.status.as_str());
                report.target = base_hash.clone();
                report.trace_id = request.trace_id.clone();
                let response = Response {
                    id: request.id.clone(),
                    status: hit.status,
                    verdict: (!hit.verdict.is_empty()).then(|| hit.verdict.clone()),
                    detail: hit.detail.clone(),
                    cached: true,
                    schema_hash: Some(edited_hash_hex.clone()),
                    report: Some(report),
                    repl: None,
                    trace_id: None,
                };
                self.inner.cache.insert(shard_hash, key, hit);
                return response;
            }
        }
        tracer.add(Counter::CacheMisses, 1);
        self.inner.aggregate.add(Counter::CacheMisses, 1);

        let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval::check_delta(&base, &diff, &budget)
        }));
        let evaluated = match work {
            Ok(e) => e,
            Err(panic) => {
                return Response::error(
                    request.id.clone(),
                    format!("panic: {}", panic_text(&panic)),
                )
            }
        };
        let (answer, fallback_line) = match evaluated {
            Ok(eval::DeltaEval::Answered { answer, next }) => {
                self.inner.aggregate.add(Counter::DeltaHits, 1);
                if answer.cacheable() {
                    let verdict = CachedVerdict {
                        status: answer.status,
                        verdict: answer.verdict.clone(),
                        detail: answer.detail.clone(),
                        trace_id: request.trace_id.clone(),
                    };
                    // Certify against the *edited* schema: the record must
                    // only reach disk (and standbys) if the edited schema
                    // independently proves the same unsat set.
                    self.persist_certified(next.schema(), &budget, &key, &verdict, &tracer);
                    let evicted = self.inner.cache.insert(shard_hash, key, verdict);
                    if evicted > 0 {
                        tracer.add(Counter::CacheEvictions, evicted);
                        self.inner.aggregate.add(Counter::CacheEvictions, evicted);
                    }
                }
                self.pin_context(Arc::new(next));
                (answer, None)
            }
            Ok(eval::DeltaEval::Fallback {
                edited_canonical,
                reason,
            }) => {
                self.inner.aggregate.add(Counter::DeltaFallbacks, 1);
                let edited = match cr_lang::schema_from_canonical(&edited_canonical) {
                    Ok(s) => s,
                    Err(e) => return Response::error(request.id.clone(), format!("delta: {e}")),
                };
                // The full check caches under the edited schema's own
                // (canonical, "check") key — shared with plain `check`
                // requests for the same schema.
                let edited_hash = cr_core::canonical_text_hash(&edited_canonical);
                let full_key = CacheKey {
                    canonical: edited_canonical,
                    question: "check".to_string(),
                };
                let mut full = request.clone();
                full.op = Op::Check;
                let (answer, _) =
                    self.compute_fresh(&full, &edited, &budget, edited_hash, full_key, &tracer);
                (answer, Some(format!("delta-fallback: {reason}")))
            }
            Err(answer) => (answer, None),
        };
        let invalidated = tracer.counter(Counter::AtomsInvalidated);
        if invalidated > 0 {
            self.inner
                .aggregate
                .add(Counter::AtomsInvalidated, invalidated);
        }
        let mut report = cr_core::run_report(&budget, "check_delta", answer.status.as_str());
        report.target = base_hash.clone();
        report.trace_id = request.trace_id.clone();
        let mut detail = answer.detail;
        if let Some(line) = fallback_line {
            detail.push(line);
        }
        Response {
            id: request.id.clone(),
            status: answer.status,
            verdict: (!answer.verdict.is_empty()).then(|| answer.verdict.clone()),
            detail,
            cached: false,
            schema_hash: Some(edited_hash_hex),
            report: Some(report),
            repl: None,
            trace_id: None,
        }
    }

    /// The reasoning path: deadline propagation → parse schema → quarantine
    /// gate → cache lookup → (on miss) singleflight + the governed pipeline
    /// → cache fill → response with embedded RunReport.
    fn reason(&self, request: &Request, queue_delay: Duration) -> Response {
        // Per-request observability: the embedded RunReport accounts for
        // exactly this request's work (including whether the verdict came
        // from cache).
        let tracer = Tracer::new(Box::new(NullSink));
        // Per-request cancellation: the supervisor can trip exactly this
        // request (wedge detection) without aborting its neighbors. The
        // server-wide token's state is inherited at pickup.
        let cancel = CancelToken::new();
        if self.inner.cancel.is_cancelled() {
            cancel.cancel();
        }
        let mut budget = Budget::unlimited()
            .with_tracer(&tracer)
            .with_cancel_token(&cancel);
        // Deadline propagation: queueing already consumed part of the
        // end-to-end deadline; what remains caps every other limit. Zero
        // left means the work is sheddable without touching the pipeline.
        let deadline_left = request
            .deadline_ms
            .map(|ms| Duration::from_millis(ms).saturating_sub(queue_delay));
        if let Some(left) = deadline_left {
            if left.is_zero() {
                return Response::shed(request.id.clone(), "deadline expired while queued");
            }
        }
        let mut effective_ms = request.timeout_ms.or(self.inner.config.default_timeout_ms);
        if let Some(left) = deadline_left {
            let left_ms = u64::try_from(left.as_millis()).unwrap_or(u64::MAX);
            effective_ms = Some(effective_ms.map_or(left_ms, |t| t.min(left_ms)));
        }
        if let Some(ms) = effective_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(steps) = request.max_steps.or(self.inner.config.default_max_steps) {
            budget = budget.with_max_steps(steps);
        }

        let source = request.schema.as_deref().unwrap_or_default();
        let schema = match cr_lang::parse_schema(source) {
            Ok(s) => s,
            Err(e) => {
                return Response::error(request.id.clone(), format!("schema:{e}"));
            }
        };
        let canonical = schema.canonical_form();
        let schema_hash = cr_core::canonical_hash(&schema);
        let question = match request.op {
            Op::Check => "check".to_string(),
            Op::Implies => format!("implies {}", request.query.join(" ")),
            _ => unreachable!("reason() only sees check/implies"),
        };
        let key = CacheKey {
            canonical,
            question,
        };

        if self.inner.poison.is_quarantined(schema_hash) {
            return Response::error(
                request.id.clone(),
                format!("schema quarantined after repeated crashes (hash {schema_hash:032x})"),
            );
        }

        // Wedge watch: while this request runs, the supervisor may trip
        // its token if it blows past deadline + grace.
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.inner
            .inflight
            .register(seq, cancel.clone(), deadline_left);
        let _dereg = Dereg {
            registry: &self.inner.inflight,
            seq,
        };

        // Everything downstream of the parse — cache traffic, the reasoning
        // pipeline, certification — runs under catch_unwind: a panic (a
        // bug, or an injected fault) must cost exactly one response, not a
        // worker's accumulated trace counters. The tracer and budget stay
        // outside, so on abort the partial per-request report survives.
        let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(hit) = self.inner.cache.get(schema_hash, &key) {
                tracer.add(Counter::CacheHits, 1);
                self.inner.aggregate.add(Counter::CacheHits, 1);
                // The cached verdict remembers which request computed it;
                // surface that as the hit's leader trace.
                let leader = hit.trace_id.clone();
                return (
                    eval::Answer {
                        status: hit.status,
                        verdict: hit.verdict,
                        detail: hit.detail,
                    },
                    true,
                    leader,
                );
            }
            // Read-through: an LRU eviction must not force a recomputation
            // while the verdict sits on disk.
            {
                let store = self.read_store();
                if let Some(hit) = store
                    .as_ref()
                    .and_then(|s| s.lookup(&key.canonical, &key.question))
                {
                    tracer.add(Counter::StoreHits, 1);
                    self.inner.aggregate.add(Counter::StoreHits, 1);
                    let leader = hit.trace_id.clone();
                    let answer = eval::Answer {
                        status: hit.status,
                        verdict: hit.verdict.clone(),
                        detail: hit.detail.clone(),
                    };
                    self.inner.cache.insert(schema_hash, key.clone(), hit);
                    return (answer, true, leader);
                }
            }
            tracer.add(Counter::CacheMisses, 1);
            self.inner.aggregate.add(Counter::CacheMisses, 1);
            // A standby serves what was replicated but never computes: a
            // fresh verdict here would fork the store the moment the real
            // primary certifies a different trace for the same question.
            if self.is_standby() {
                return (
                    eval::Answer {
                        status: Status::Error,
                        verdict: String::new(),
                        detail: vec![
                            "standby: verdict not replicated yet; retry on the primary or after promotion"
                                .to_string(),
                        ],
                    },
                    false,
                    None,
                );
            }
            // Coalesce concurrent identical work: followers wait for the
            // leader's verdict instead of burning a worker each on the
            // same EXPTIME question.
            match self.inner.flights.begin(key.clone()) {
                flight::Entry::Follower(f) => {
                    let wait = effective_ms
                        .map(Duration::from_millis)
                        .unwrap_or(Duration::from_secs(30));
                    match f.wait(wait) {
                        Some(hit) => {
                            tracer.add(Counter::RequestsCoalesced, 1);
                            self.inner.aggregate.add(Counter::RequestsCoalesced, 1);
                            // A coalesced follower inherited the leader's
                            // verdict — and records whose computation it
                            // rode (the id inside the published verdict).
                            let leader = hit.trace_id.clone();
                            (
                                eval::Answer {
                                    status: hit.status,
                                    verdict: hit.verdict,
                                    detail: hit.detail,
                                },
                                true,
                                leader,
                            )
                        }
                        // Leader died or we timed out first: compute it
                        // ourselves under our own budget.
                        None => {
                            let (answer, cached) = self.compute_fresh(
                                request,
                                &schema,
                                &budget,
                                schema_hash,
                                key,
                                &tracer,
                            );
                            (answer, cached, None)
                        }
                    }
                }
                flight::Entry::Leader(guard) => {
                    let started = Instant::now();
                    let (answer, cached) =
                        self.compute_fresh(request, &schema, &budget, schema_hash, key, &tracer);
                    // Cost model: fresh-compute wall time by schema size,
                    // feeding the admission gate's can-it-fit estimate.
                    self.inner
                        .admission
                        .note_compute_cost(source.len(), started.elapsed());
                    let publish = answer.cacheable().then(|| CachedVerdict {
                        status: answer.status,
                        verdict: answer.verdict.clone(),
                        detail: answer.detail.clone(),
                        trace_id: request.trace_id.clone(),
                    });
                    guard.publish(publish);
                    (answer, cached, None)
                }
            }
        }));

        let (mut answer, cached, leader_trace_id) = match work {
            Ok(result) => result,
            Err(panic) => {
                let msg = panic_text(&panic);
                if self.inner.poison.note_crash(schema_hash) {
                    self.inner.aggregate.add(Counter::PoisonQuarantined, 1);
                }
                let mut report = cr_core::run_report(&budget, request.op.as_str(), "aborted");
                report.aborted = true;
                report.target = format!("{schema_hash:032x}");
                report.trace_id = request.trace_id.clone();
                return Response {
                    id: request.id.clone(),
                    status: Status::Error,
                    verdict: None,
                    detail: vec![format!("panic: {msg}")],
                    cached: false,
                    schema_hash: Some(format!("{schema_hash:032x}")),
                    report: Some(report),
                    repl: None,
                    trace_id: None,
                };
            }
        };

        if request.certify && request.op == Op::Check {
            answer = self.certify_answer(&schema, &budget, answer);
        }

        let mut report = cr_core::run_report(&budget, request.op.as_str(), answer.status.as_str());
        report.target = format!("{schema_hash:032x}");
        report.trace_id = request.trace_id.clone();
        report.leader_trace_id = leader_trace_id;
        Response {
            id: request.id.clone(),
            status: answer.status,
            verdict: (!answer.verdict.is_empty()).then(|| answer.verdict.clone()),
            detail: answer.detail,
            cached,
            schema_hash: Some(format!("{schema_hash:032x}")),
            report: Some(report),
            repl: None,
            trace_id: None,
        }
    }

    /// Runs the governed pipeline for a cache-missed request and fills the
    /// cache (and, for certified `check` verdicts, the durable store).
    fn compute_fresh(
        &self,
        request: &Request,
        schema: &cr_core::Schema,
        budget: &Budget,
        schema_hash: u128,
        key: CacheKey,
        tracer: &Tracer,
    ) -> (eval::Answer, bool) {
        let answer = match request.op {
            Op::Check => eval::check(schema, budget),
            Op::Implies => eval::implies(schema, &request.query, budget),
            _ => unreachable!("only check/implies compute"),
        };
        if answer.cacheable() {
            let verdict = CachedVerdict {
                status: answer.status,
                verdict: answer.verdict.clone(),
                detail: answer.detail.clone(),
                trace_id: request.trace_id.clone(),
            };
            if request.op == Op::Check {
                self.persist_certified(schema, budget, &key, &verdict, tracer);
            }
            let evicted = self.inner.cache.insert(schema_hash, key, verdict);
            if evicted > 0 {
                tracer.add(Counter::CacheEvictions, evicted);
                self.inner.aggregate.add(Counter::CacheEvictions, evicted);
            }
        }
        (answer, false)
    }

    /// Re-validates a `check` answer through `cr_core::certify_check`: the
    /// schema is re-reasoned from its source text (so a corrupted cache
    /// entry is caught too) and the independent certificate chain must both
    /// pass and agree with the answer being returned. Errors and budget
    /// trips are passed through unchanged — there is nothing to certify.
    fn certify_answer(
        &self,
        schema: &cr_core::Schema,
        budget: &Budget,
        answer: eval::Answer,
    ) -> eval::Answer {
        if !matches!(answer.status, Status::Ok | Status::Negative) {
            return answer;
        }
        let certified = match cr_core::certify_check(schema, budget) {
            Ok(report) => report,
            Err(e) => {
                return match eval::budget_line(&e) {
                    Some(line) => eval::Answer {
                        status: Status::BudgetExceeded,
                        verdict: String::new(),
                        detail: vec![line],
                    },
                    None => eval::Answer {
                        status: Status::Error,
                        verdict: String::new(),
                        detail: vec![format!("certify: {e}")],
                    },
                };
            }
        };
        let claimed_unsat = claimed_unsat_classes(&answer.detail);
        if !certified.ok() {
            return eval::Answer {
                status: Status::Error,
                verdict: String::new(),
                detail: certified
                    .failures
                    .iter()
                    .map(|f| format!("certify: {f}"))
                    .collect(),
            };
        }
        if certified.unsat_classes != claimed_unsat {
            return eval::Answer {
                status: Status::Error,
                verdict: String::new(),
                detail: vec![format!(
                    "certify: verdict mismatch (answer claims unsat [{}], certificates say [{}])",
                    claimed_unsat.join(", "),
                    certified.unsat_classes.join(", ")
                )],
            };
        }
        answer
    }

    /// Durably records a freshly computed `check` verdict — but only after
    /// `cr_core::certify_check` independently re-validates it and its
    /// certified unsat set agrees with the answer. An uncertifiable verdict
    /// is still served and cached in memory (the governor may simply have
    /// no budget left for the certificate pass); it just never reaches
    /// disk, so everything a warm restart — or a standby mirroring the
    /// log — serves was once proven.
    fn persist_certified(
        &self,
        schema: &cr_core::Schema,
        budget: &Budget,
        key: &CacheKey,
        verdict: &CachedVerdict,
        tracer: &Tracer,
    ) {
        let store = self.read_store();
        let Some(store) = store.as_ref() else {
            return;
        };
        let certified = match cr_core::certify_check(schema, budget) {
            Ok(report) => report,
            Err(_) => return,
        };
        if !certified.ok() || certified.unsat_classes != claimed_unsat_classes(&verdict.detail) {
            return;
        }
        match store.persist(&key.canonical, &key.question, verdict) {
            Ok(outcome) => {
                tracer.add(Counter::StoreWrites, 1);
                self.inner.aggregate.add(Counter::StoreWrites, 1);
                if outcome.compacted {
                    tracer.add(Counter::StoreCompactions, 1);
                    self.inner.aggregate.add(Counter::StoreCompactions, 1);
                }
            }
            Err(_) => {
                self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn stats_response(&self, id: &str) -> Response {
        // One coherent snapshot: the aggregate report and the metrics view
        // are each taken once, and every detail line below reads from
        // them. Before this, each line loaded its counter independently,
        // so a `stats` racing live traffic could report e.g. a cache hit
        // whose request was not yet counted as served.
        let report = self.inner.aggregate.report("stats", "ok");
        let view = self.metrics_view();
        let agg = |name: &str| report.counter(name).unwrap_or(0);
        let mut detail = vec![
            format!("requests_served={}", agg("requests_served")),
            format!("cache_hits={}", agg("cache_hits")),
            format!("cache_misses={}", agg("cache_misses")),
            format!("cache_evictions={}", agg("cache_evictions")),
            format!("cache_entries={}", view.cache_entries),
            format!("workers={}", view.workers),
            format!("queue_capacity={}", view.queue_capacity),
            format!("role={}", view.role),
            format!("alive_workers={}", view.alive_workers),
            format!("inflight={}", view.inflight),
            format!("shed_threshold={}", view.shed_threshold),
            format!("queue_delay_ewma_us={}", view.queue_delay_ewma_us),
            format!("requests_shed={}", agg("requests_shed")),
            format!("deadline_rejected={}", agg("deadline_rejected")),
            format!("requests_coalesced={}", agg("requests_coalesced")),
            format!("workers_respawned={}", agg("workers_respawned")),
            format!("wedge_cancels={}", agg("wedge_cancels")),
            format!("poison_quarantined={}", agg("poison_quarantined")),
            format!("promotions={}", agg("promotions")),
            format!("delta_hits={}", agg("delta_hits")),
            format!("delta_fallbacks={}", agg("delta_fallbacks")),
            format!("atoms_invalidated={}", agg("atoms_invalidated")),
            format!("pinned_bases={}", view.pinned_bases),
            format!("uptime_ms={}", view.uptime_ms),
            format!("build_version={}", view.build_version),
        ];
        if let Some(store) = &view.store {
            detail.push(format!("store_entries={}", store.entries));
            detail.push(format!("store_hits={}", agg("store_hits")));
            detail.push(format!("store_writes={}", agg("store_writes")));
            detail.push(format!("store_compactions={}", agg("store_compactions")));
            detail.push(format!("store_errors={}", view.store_errors));
            detail.push(format!("store_log_bytes={}", store.log_bytes));
            detail.push(format!("store_epoch={}", store.epoch));
            detail.push(format!("repl_bytes_shipped={}", agg("repl_bytes_shipped")));
        }
        if let Some(repl) = &view.repl {
            detail.push(format!("repl_offset={}", repl.offset));
            detail.push(format!("repl_epoch={}", repl.epoch));
            detail.push(format!(
                "repl_chunks_applied={}",
                agg("repl_chunks_applied")
            ));
        }
        Response {
            id: id.to_string(),
            status: Status::Ok,
            verdict: Some("stats".to_string()),
            detail,
            cached: false,
            schema_hash: None,
            report: Some(report),
            repl: None,
            trace_id: None,
        }
    }

    /// One coherent snapshot of the server's operational state — what
    /// `/metrics`, `/statusz`, and the `stats` op all render from.
    pub fn metrics_view(&self) -> MetricsView {
        self.view_at(self.inner.telemetry.now_ns())
    }

    /// The telemetry endpoint's bound address (when one is configured).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        *self
            .inner
            .metrics_bound
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn view_at(&self, now_ns: u64) -> MetricsView {
        let t = &self.inner.telemetry;
        let (served_total, shed_total) = t.totals();
        let (served_10s, shed_10s) = t.rates_fine(now_ns, FINE_WINDOW_NS);
        let (served_60s, shed_60s) = t.rates_fine(now_ns, COARSE_WINDOW_NS);
        let store = self.read_store().as_ref().map(|s| StoreView {
            entries: s.len(),
            log_bytes: s.log_bytes(),
            epoch: s.epoch(),
        });
        let repl = self
            .inner
            .replica
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|r| {
                let offset = r.offset();
                // The head only moves on a successful poll; a mirror that
                // has caught up past the last-known head reads as zero lag.
                let head = self.inner.repl_head.load(Ordering::Relaxed).max(offset);
                ReplView {
                    offset,
                    epoch: r.epoch().unwrap_or(0),
                    head,
                    lag: head - offset,
                }
            });
        MetricsView {
            role: self.role(),
            uptime_ms: t.uptime_ms(),
            build_version: env!("CARGO_PKG_VERSION"),
            served_total,
            shed_total,
            served_10s,
            served_60s,
            shed_10s,
            shed_60s,
            scrapes_total: t.scrapes_total(),
            latency_lifetime: t.latency_lifetime(),
            latency_10s: t.latency_fine(now_ns, FINE_WINDOW_NS),
            latency_60s: t.latency_fine(now_ns, COARSE_WINDOW_NS),
            workers: self.inner.config.workers,
            alive_workers: self.inner.pool.alive_workers(),
            queue_depth: self.inner.pool.queued(),
            queue_capacity: self.inner.config.queue_capacity,
            inflight: self.inner.inflight.len(),
            shed_threshold: self.inner.admission.threshold(),
            queue_delay_ewma_us: self.inner.admission.queue_delay_us(),
            cache_entries: self.inner.cache.len(),
            cache_capacity: self.inner.config.cache_capacity,
            store,
            store_errors: self.inner.store_errors.load(Ordering::Relaxed),
            repl,
            quarantined: self.inner.poison.quarantined_hashes(),
            pinned_bases: self
                .inner
                .pinned
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }

    // ------------------------------------------------------------------
    // Helper threads
    // ------------------------------------------------------------------

    /// Spawns the supervisor. It holds only a `Weak` on the server's
    /// state: a server dropped without `finish()` lets the thread notice
    /// and exit instead of keeping `Inner` alive forever.
    fn spawn_supervisor(&self) {
        let weak = Arc::downgrade(&self.inner);
        let interval = Duration::from_millis(self.inner.config.supervise_interval_ms.max(10));
        let handle = std::thread::Builder::new()
            .name("cr-supervisor".to_string())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(inner) = weak.upgrade() else {
                    return;
                };
                let server = Server { inner };
                if server.shutdown_requested() {
                    return;
                }
                // Contain a panicking tick (injected or real): the
                // supervisor must outlive its own faults to keep the pool
                // honest.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    server.supervise_tick();
                }));
            })
            .expect("spawn supervisor thread");
        self.inner
            .helpers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }

    fn supervise_tick(&self) {
        // Chaos: panic or stall one tick (the catch_unwind above and the
        // next tick absorb it; repair is merely delayed, never lost).
        cr_faults::point!("server.supervisor.tick");
        let respawned = self.inner.pool.respawn_dead();
        if respawned > 0 {
            self.inner
                .aggregate
                .add(Counter::WorkersRespawned, respawned);
        }
        let tripped = self.inner.inflight.trip_wedged();
        if tripped > 0 {
            self.inner.aggregate.add(Counter::WedgeCancels, tripped);
        }
        self.inner.admission.maybe_relax();
    }

    /// A replication client configured from this standby's `follow`
    /// address, io timeout, and connector — what the follower thread
    /// dials with, exposed so an external driver (`follow_external`) can
    /// pump [`Server::follower_step`] itself. `None` on a primary.
    pub fn follower_client(&self) -> Option<FollowerClient> {
        let addr = self.inner.config.follow.clone()?;
        let promote_after = Duration::from_millis(self.inner.config.promote_after_ms.max(100));
        let io_timeout = promote_after.min(Duration::from_millis(1000));
        Some(FollowerClient::with_connector(
            addr,
            io_timeout,
            Arc::clone(&self.inner.config.connector),
        ))
    }

    /// One follower iteration: reads the mirror's position, polls the
    /// primary for the next chunk, applies it. `Ok(Applied{more})` is a
    /// successful poll (doubles as a primary heartbeat; `more` means a
    /// full chunk arrived and the caller should poll again without
    /// delay); `Ok(Stopped)` means the mirror is gone (promotion already
    /// took it); `Err` is a failed poll the caller counts against its
    /// promotion timer.
    pub fn follower_step(&self, client: &mut FollowerClient) -> Result<FollowerStep, String> {
        let at = {
            let replica = self.inner.replica.lock().unwrap_or_else(|e| e.into_inner());
            match replica.as_ref() {
                Some(r) => (r.offset(), r.epoch().unwrap_or(0)),
                None => return Ok(FollowerStep::Stopped),
            }
        };
        let chunk = client.poll(at.0, at.1)?;
        // The primary's log length is the replication head the lag gauge
        // measures against.
        self.inner.repl_head.store(chunk.log_len, Ordering::Relaxed);
        let more = chunk.data.len() >= repl::CHUNK_MAX;
        self.apply_chunk(&chunk);
        Ok(FollowerStep::Applied { more })
    }

    /// Spawns the standby's follower thread: polls the primary for log
    /// chunks via [`Server::follower_step`], and self-promotes when the
    /// primary's heartbeat lapses for `promote_after_ms`.
    fn spawn_follower(&self) {
        let weak = Arc::downgrade(&self.inner);
        let poll = Duration::from_millis(self.inner.config.follow_poll_ms.max(10));
        let promote_after = Duration::from_millis(self.inner.config.promote_after_ms.max(100));
        let mut client = self
            .follower_client()
            .expect("spawn_follower requires config.follow");
        let handle = std::thread::Builder::new()
            .name("cr-follower".to_string())
            .spawn(move || {
                let mut last_ok = Instant::now();
                loop {
                    let Some(inner) = weak.upgrade() else {
                        return;
                    };
                    let server = Server { inner };
                    if server.shutdown_requested() || !server.is_standby() {
                        return;
                    }
                    match server.follower_step(&mut client) {
                        Ok(FollowerStep::Stopped) => return,
                        Ok(FollowerStep::Applied { more }) => {
                            last_ok = Instant::now();
                            if more {
                                // Mid-catch-up: more bytes are waiting;
                                // stream them without the poll delay.
                                continue;
                            }
                        }
                        Err(_) => {
                            if last_ok.elapsed() >= promote_after {
                                let _ = server.promote();
                                return;
                            }
                        }
                    }
                    drop(server);
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn follower thread");
        self.inner
            .helpers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }

    /// Binds and spawns the telemetry listener. Bind errors fail `open` —
    /// an operator who asked for `/metrics` and silently got none would
    /// fly blind. The listener is deliberately single-threaded: a scrape
    /// storm queues on the socket instead of spawning threads, and can
    /// never touch the worker pool or the request queue.
    fn spawn_metrics(&self, addr: &str) -> Result<(), String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind metrics {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("metrics listener: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("metrics listener: {e}"))?;
        *self
            .inner
            .metrics_bound
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(bound);
        let weak = Arc::downgrade(&self.inner);
        let handle = std::thread::Builder::new()
            .name("cr-metrics".to_string())
            .spawn(move || loop {
                let Some(inner) = weak.upgrade() else {
                    return;
                };
                let server = Server { inner };
                if server.shutdown_requested() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Contain scrape faults (injected or real): a
                        // panicking scrape costs that scrape, never the
                        // listener — and never a request.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            server.handle_scrape(stream);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        drop(server);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => {
                        drop(server);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
            .expect("spawn metrics thread");
        self.inner
            .helpers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        Ok(())
    }

    /// One scrape connection: parse the request head, render the asked-for
    /// exposition, write it back, close.
    fn handle_scrape(&self, stream: TcpStream) {
        // Chaos: fault one scrape (panic/stall/error). This site exists
        // only on the scrape path — request handling records telemetry
        // without any failpoint — so injected scrape faults must never
        // perturb a verdict.
        cr_faults::point!("server.metrics.scrape");
        let _ = self.try_scrape(stream);
    }

    fn try_scrape(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let Some((method, path)) = metrics::read_request_head(&mut reader)? else {
            return Ok(());
        };
        let response = if method != "GET" {
            metrics::http_response(
                "405 Method Not Allowed",
                "text/plain",
                "only GET is served\n",
            )
        } else {
            match path.as_str() {
                "/metrics" => {
                    let now_ns = self.inner.telemetry.observe_scrape();
                    metrics::http_response(
                        "200 OK",
                        "text/plain; version=0.0.4",
                        &metrics::render_prometheus(&self.view_at(now_ns)),
                    )
                }
                "/statusz" => {
                    let now_ns = self.inner.telemetry.observe_scrape();
                    metrics::http_response(
                        "200 OK",
                        "application/json",
                        &metrics::render_statusz(&self.view_at(now_ns)),
                    )
                }
                _ => metrics::http_response(
                    "404 Not Found",
                    "text/plain",
                    "try /metrics or /statusz\n",
                ),
            }
        };
        let mut stream = stream;
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }

    /// Applies one shipped chunk to the mirror and warms the cache from
    /// every complete record it carried.
    fn apply_chunk(&self, chunk: &ReplChunk) {
        let outcome = {
            let mut replica = self.inner.replica.lock().unwrap_or_else(|e| e.into_inner());
            let Some(rep) = replica.as_mut() else {
                return;
            };
            let outcome = rep.apply(chunk.offset, chunk.epoch, chunk.reset, &chunk.data);
            // An applied chunk only counts once the mirror is durable:
            // while the primary lives a crashed follower refetches from
            // its recovered offset, but after the primary dies — the one
            // case promotion exists for — anything applied but unsynced
            // would be lost for good. (Found by the cr-sim failure swarm:
            // kill-primary followed by a follower crash before promotion.)
            if outcome.is_ok() && !chunk.data.is_empty() && rep.sync().is_err() {
                self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
            }
            outcome
        };
        match outcome {
            Ok(outcome) => {
                if !chunk.data.is_empty() {
                    self.inner.aggregate.add(Counter::ReplChunksApplied, 1);
                }
                for (canonical, question, verdict) in repl::warm_entries(&outcome.payloads) {
                    let shard_hash = cr_core::canonical_text_hash(&canonical);
                    self.inner.cache.insert(
                        shard_hash,
                        CacheKey {
                            canonical,
                            question,
                        },
                        verdict,
                    );
                }
            }
            Err(_) => {
                self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Atomically (re)writes the port file naming the bound address and
    /// role. Promotion calls this again, so a watching client is
    /// redirected by a complete line — never a torn half-write.
    fn write_port_file(&self) {
        let Some(path) = &self.inner.config.port_file else {
            return;
        };
        let addr = *self
            .inner
            .bound_addr
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(addr) = addr else {
            return;
        };
        let line = if self.is_standby() {
            format!("standby {addr}\n")
        } else {
            format!("{addr}\n")
        };
        if cr_store::write_atomic_on(self.inner.config.vfs.as_ref(), path, line.as_bytes()).is_err()
        {
            self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Transports
    // ------------------------------------------------------------------

    /// Parses and submits a request line to the pool; the response line
    /// (with trailing newline) is written to `out`. Admission runs here,
    /// before the queue: expired or unfittable deadlines and overload
    /// sheds are answered immediately (on the caller's thread) with a
    /// retryable `shed` response — bounded memory under overload is the
    /// contract.
    fn dispatch(&self, line: String, out: &Arc<Mutex<dyn Write + Send>>) {
        let mut request = match Request::parse(&line) {
            Ok(r) => r,
            Err(msg) => {
                self.inner.aggregate.add(Counter::RequestsServed, 1);
                self.inner.telemetry.record(0, false);
                write_response(out, &Response::error(Request::salvage_id(&line), msg));
                return;
            }
        };
        // Mint the trace id at admission — before the gate — so even a
        // response shed right here carries an id the client can quote.
        if request.trace_id.is_none() {
            request.trace_id = Some(cr_trace::mint_trace_id());
        }
        if matches!(
            request.op,
            Op::Check | Op::Implies | Op::PinBase | Op::CheckDelta
        ) {
            // Delta requests carry their cost in the diff (plus an optional
            // fallback schema); screen on the total payload either way.
            let schema_len = request.schema.as_deref().map_or(0, str::len)
                + request.diff.iter().map(String::len).sum::<usize>();
            if let Admit::Shed { reason, deadline } =
                self.inner
                    .admission
                    .admit(request.deadline_ms, request.priority, schema_len)
            {
                self.count_shed(deadline);
                let mut response = Response::shed(request.id.clone(), reason);
                response.trace_id = request.trace_id.clone();
                write_response(out, &response);
                return;
            }
        }
        let id = request.id.clone();
        let trace_id = request.trace_id.clone();
        let server = self.clone();
        let writer = Arc::clone(out);
        let enqueued = Instant::now();
        let submitted = self.inner.pool.try_submit(Box::new(move || {
            let queue_delay = enqueued.elapsed();
            // Last line of defense: even a panic that escapes the reasoning
            // path's own containment (e.g. in canonicalization, which runs
            // before it) must still cost the client exactly one error
            // response, never a missing reply.
            let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                server.process_picked(&request, queue_delay)
            }));
            let response = work.unwrap_or_else(|panic| {
                Response::error(request.id.clone(), format!("panic: {}", panic_text(&panic)))
            });
            write_response(&writer, &response);
        }));
        match submitted {
            Ok(()) => {}
            Err(SubmitError::QueueFull) => {
                self.count_shed(false);
                self.inner.admission.note_overload();
                let mut response = Response::shed(id, "server overloaded: request queue is full");
                response.trace_id = trace_id;
                write_response(out, &response);
            }
            Err(SubmitError::ShuttingDown) => {
                let mut response = Response::error(id, "server is shutting down");
                response.trace_id = trace_id;
                write_response(out, &response);
            }
        }
    }

    /// Counts one shed answered outside `process_picked` (admission gate
    /// or full queue).
    fn count_shed(&self, deadline: bool) {
        self.inner.aggregate.add(Counter::RequestsServed, 1);
        self.inner.aggregate.add(Counter::RequestsShed, 1);
        self.inner.telemetry.record(0, true);
        if deadline {
            self.inner.aggregate.add(Counter::DeadlineRejected, 1);
        }
    }

    /// Serves JSON-lines over stdin/stdout until EOF (ctrl-D), a `shutdown`
    /// request, or `stop` turns true (the SIGTERM flag). Drains before
    /// returning.
    pub fn serve_stdio(&self, stop: &AtomicBool) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(std::io::stdout()));
        let mut lines = stdin.lock().lines();
        loop {
            if self.shutdown_requested() || stop.load(Ordering::SeqCst) {
                break;
            }
            // Blocking read: a quiescent stdio server sits here until the
            // client writes, closes the pipe, or a signal interrupts the
            // read (EINTR surfaces as an Err we treat as a stop check).
            match lines.next() {
                None => break,
                Some(Err(_)) => continue,
                Some(Ok(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.dispatch(line, &out);
                }
            }
        }
        self.finish();
        Ok(())
    }

    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves until shutdown is
    /// requested or `stop` turns true. Writes the port file (when
    /// configured) and returns the bound address through `on_bound` before
    /// entering the accept loop, then blocks; drains before returning.
    pub fn serve_tcp(
        &self,
        addr: &str,
        stop: Arc<AtomicBool>,
        on_bound: impl FnOnce(SocketAddr),
    ) -> std::io::Result<()> {
        let (listener, bound) = crate::transport::TcpListenerSource::bind(addr)?;
        *self
            .inner
            .bound_addr
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(bound);
        self.write_port_file();
        on_bound(bound);
        self.serve_listener(Box::new(listener), stop)
    }

    /// The accept loop over any [`crate::transport::Listener`] (TCP in
    /// production; the
    /// simulation substitutes an in-memory one). Serves until shutdown is
    /// requested or `stop` turns true; drains before returning.
    pub fn serve_listener(
        &self,
        mut listener: Box<dyn crate::transport::Listener>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<()> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shutdown_requested() || stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.poll_accept() {
                Ok(Some(conn)) => {
                    let server = self.clone();
                    let stop = Arc::clone(&stop);
                    connections.push(std::thread::spawn(move || {
                        let _ = server.handle_connection(conn, &stop);
                    }));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            connections.retain(|h| !h.is_finished());
        }
        for h in connections {
            let _ = h.join();
        }
        self.finish();
        Ok(())
    }

    /// One connection: read request lines, dispatch to the pool,
    /// responses go back over the same conn (interleaved, correlated by
    /// id). Returns on client EOF, connection error, or server shutdown.
    fn handle_connection(
        &self,
        mut stream: Box<dyn crate::transport::Conn>,
        stop: &AtomicBool,
    ) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(stream.clone_writer()?));
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        loop {
            if self.shutdown_requested() || stop.load(Ordering::SeqCst) {
                break;
            }
            match reader.read_line(&mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    let line = std::mem::take(&mut buf);
                    if !line.trim().is_empty() {
                        self.dispatch(line, &out);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Read timeout: partial data (if any) stays in `buf`;
                    // loop to re-check the shutdown flags.
                    continue;
                }
                Err(_) => break,
            }
        }
        Ok(())
    }
}

/// Drop guard deregistering a request from the in-flight registry even
/// when the reasoning path unwinds.
struct Dereg<'a> {
    registry: &'a InflightRegistry,
    seq: u64,
}

impl Drop for Dereg<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.seq);
    }
}

/// The unsat classes an answer claims: its detail lines minus the `rel `
/// relationship lines. This is the set `cr_core::certify_check` must agree
/// with before a verdict is trusted (returned to a `--certify` client, or
/// written to the durable store).
fn claimed_unsat_classes(detail: &[String]) -> Vec<String> {
    detail
        .iter()
        .filter(|d| !d.starts_with("rel "))
        .cloned()
        .collect()
}

/// Best-effort text of a caught panic payload.
fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn write_response(out: &Arc<Mutex<dyn Write + Send>>, response: &Response) {
    // Chaos: drop the response on the floor *before* taking the writer
    // lock — the client sees a missing reply (and must time out or retry),
    // but the connection's writer is never poisoned.
    cr_faults::point!("server.response.write", |_| ());
    let mut line = response.to_json();
    line.push('\n');
    let mut w = out.lock().expect("response writer poisoned");
    // A dead client can't be helped; dropping the response is correct.
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEETING: &str = "class Speaker; class Discussant isa Speaker; class Talk; \
         relationship Holds (U1: Speaker, U2: Talk); \
         card Speaker in Holds.U1: 1..*; card Talk in Holds.U2: 1..1;";

    fn check_request(id: &str, schema: &str) -> String {
        let mut r = Request::new(id, Op::Check);
        r.schema = Some(schema.to_string());
        r.to_json()
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-server-ha-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ping_stats_and_shutdown() {
        let server = Server::new(ServerConfig::default());
        let pong = server.process_line(&Request::new("p", Op::Ping).to_json());
        assert_eq!(pong.status, Status::Ok);
        assert_eq!(pong.verdict.as_deref(), Some("pong"));
        let stats = server.process_line(&Request::new("s", Op::Stats).to_json());
        assert!(stats
            .detail
            .iter()
            .any(|d| d.starts_with("requests_served=")));
        assert!(stats.detail.iter().any(|d| d == "role=primary"));
        assert!(stats.detail.iter().any(|d| d.starts_with("uptime_ms=")));
        assert_eq!(
            stats
                .detail
                .iter()
                .find(|d| d.starts_with("build_version="))
                .map(String::as_str),
            Some(concat!("build_version=", env!("CARGO_PKG_VERSION")))
        );
        assert!(!server.shutdown_requested());
        let bye = server.process_line(&Request::new("q", Op::Shutdown).to_json());
        assert_eq!(bye.verdict.as_deref(), Some("shutting-down"));
        assert!(server.shutdown_requested());
        server.finish();
    }

    #[test]
    fn second_identical_check_is_served_from_cache() {
        let server = Server::new(ServerConfig::default());
        let first = server.process_line(&check_request("a", MEETING));
        assert_eq!(first.status, Status::Ok);
        assert!(!first.cached);
        let report = first.report.as_ref().unwrap();
        assert_eq!(report.counter("cache_hits"), Some(0));
        assert_eq!(report.counter("cache_misses"), Some(1));

        // Same constraints, different declaration order and whitespace.
        let reordered = "class Talk; class Speaker;\nclass Discussant isa Speaker;\n\
             relationship Holds (U1: Speaker, U2: Talk);\n\
             card Talk   in Holds.U2: 1..1;\ncard Speaker in Holds.U1: 1..*;";
        let second = server.process_line(&check_request("b", reordered));
        assert_eq!(second.status, Status::Ok);
        assert!(second.cached, "canonicalized repeat must hit the cache");
        let report = second.report.as_ref().unwrap();
        assert_eq!(report.counter("cache_hits"), Some(1));
        assert_eq!(first.schema_hash, second.schema_hash);
        assert_eq!(server.aggregate_counter(Counter::CacheHits), 1);
        assert_eq!(server.aggregate_counter(Counter::CacheMisses), 1);
        server.finish();
    }

    #[test]
    fn budget_exceeded_is_not_cached() {
        let server = Server::new(ServerConfig::default());
        let mut starved = Request::new("x", Op::Check);
        starved.schema = Some(MEETING.to_string());
        starved.max_steps = Some(1);
        let r = server.process_line(&starved.to_json());
        assert_eq!(r.status, Status::BudgetExceeded);
        assert!(r.detail[0].starts_with("budget-exceeded stage="));
        assert_eq!(server.cached_verdicts(), 0);
        // The same schema with a real budget then computes fresh.
        let ok = server.process_line(&check_request("y", MEETING));
        assert!(!ok.cached);
        assert_eq!(ok.status, Status::Ok);
        server.finish();
    }

    // Figure 1 minus the conflicting minc: satisfiable until an edit
    // raises C's minimum back to 2 (the paper's ISA/card interaction).
    const FIG1_RELAXED: &str = "class C; class D isa C; relationship R (U1: C, U2: D); \
         card C in R.U1: 0..*; card D in R.U2: 0..1;";

    fn delta_diff(base_dsl: &str, edited_dsl: &str) -> Vec<String> {
        let base = cr_lang::parse_schema(base_dsl).unwrap().canonical_form();
        let edited = cr_lang::parse_schema(edited_dsl).unwrap().canonical_form();
        cr_lang::diff_canonical(&base, &edited).to_lines()
    }

    #[test]
    fn pin_base_then_check_delta_matches_full_check() {
        let server = Server::new(ServerConfig::default());
        let mut pin = Request::new("p", Op::PinBase);
        pin.schema = Some(FIG1_RELAXED.to_string());
        let pinned = server.process_line(&pin.to_json());
        assert_eq!(pinned.status, Status::Ok);
        assert_eq!(pinned.verdict.as_deref(), Some("pinned"));
        let base_hash = pinned.schema_hash.clone().unwrap();
        assert_eq!(base_hash.len(), 32);

        // Tightening edit: minc 0 -> 2 on C flips the schema to unsat.
        let edited = FIG1_RELAXED.replace("card C in R.U1: 0..*", "card C in R.U1: 2..*");
        let mut delta = Request::new("d", Op::CheckDelta);
        delta.base = Some(base_hash.clone());
        delta.diff = delta_diff(FIG1_RELAXED, &edited);
        let verdict = server.process_line(&delta.to_json());
        assert_eq!(verdict.status, Status::Negative);
        assert_eq!(verdict.verdict.as_deref(), Some("unsatisfiable"));
        assert!(!verdict.cached);

        // The from-scratch path agrees on both status and unsat set.
        let scratch = server.process_line(&check_request("s", &edited));
        assert_eq!(scratch.status, Status::Negative);
        let mut want = scratch.detail.clone();
        want.sort();
        let mut got = verdict.detail.clone();
        got.sort();
        assert_eq!(got, want);

        // The same (base, diff) pair is now a delta cache hit.
        let mut again = Request::new("d2", Op::CheckDelta);
        again.base = Some(base_hash.clone());
        again.diff = delta_diff(FIG1_RELAXED, &edited);
        let hit = server.process_line(&again.to_json());
        assert_eq!(hit.status, Status::Negative);
        assert!(hit.cached);

        // The edited schema was auto-pinned: a follow-up edit can use its
        // hash as the next base without re-pinning.
        let relaxed_again = edited.replace("card C in R.U1: 2..*", "card C in R.U1: 1..*");
        let mut chain = Request::new("d3", Op::CheckDelta);
        chain.base = Some(format!(
            "{:032x}",
            cr_core::canonical_text_hash(&cr_lang::parse_schema(&edited).unwrap().canonical_form())
        ));
        chain.diff = delta_diff(&edited, &relaxed_again);
        let chained = server.process_line(&chain.to_json());
        assert_eq!(chained.status, Status::Ok, "{:?}", chained.detail);
        assert!(!chained
            .detail
            .iter()
            .any(|d| d.starts_with("delta-fallback")));

        let stats = server.process_line(&Request::new("st", Op::Stats).to_json());
        assert!(stats.detail.iter().any(|d| d.starts_with("delta_hits=")));
        assert!(stats.detail.iter().any(|d| d.starts_with("pinned_bases=")));
        server.finish();
    }

    #[test]
    fn check_delta_unknown_base_falls_back_or_errors() {
        let server = Server::new(ServerConfig::default());
        let bogus = "0".repeat(32);
        // With a schema along for the ride the verdict still lands — as a
        // plain full check, flagged in the detail.
        let mut with_schema = Request::new("a", Op::CheckDelta);
        with_schema.base = Some(bogus.clone());
        with_schema.schema = Some(MEETING.to_string());
        let r = server.process_line(&with_schema.to_json());
        assert_eq!(r.status, Status::Ok);
        assert!(r
            .detail
            .iter()
            .any(|d| d.contains("delta-fallback") && d.contains("not pinned")));
        // Without one there is nothing to check.
        let mut bare = Request::new("b", Op::CheckDelta);
        bare.base = Some(bogus);
        let r = server.process_line(&bare.to_json());
        assert_eq!(r.status, Status::Error);
        assert!(r.detail[0].contains("pin_base"));
        assert_eq!(server.aggregate_counter(Counter::DeltaFallbacks), 2);
        server.finish();
    }

    #[test]
    fn structural_diff_falls_back_transparently() {
        let server = Server::new(ServerConfig::default());
        let mut pin = Request::new("p", Op::PinBase);
        pin.schema = Some(MEETING.to_string());
        let pinned = server.process_line(&pin.to_json());
        let base_hash = pinned.schema_hash.clone().unwrap();
        let mut delta = Request::new("d", Op::CheckDelta);
        delta.base = Some(base_hash);
        delta.diff = vec!["+\tclass\tChair".to_string()];
        let r = server.process_line(&delta.to_json());
        assert_eq!(r.status, Status::Ok, "{:?}", r.detail);
        assert!(r
            .detail
            .iter()
            .any(|d| d.contains("delta-fallback") && d.contains("structural")));
        assert_eq!(server.aggregate_counter(Counter::DeltaFallbacks), 1);
        server.finish();
    }

    #[test]
    fn certify_flag_re_validates_the_verdict() {
        let server = Server::new(ServerConfig::default());
        let mut sat = Request::new("c", Op::Check);
        sat.schema = Some(MEETING.to_string());
        sat.certify = true;
        let resp = server.process_line(&sat.to_json());
        assert_eq!(resp.status, Status::Ok);
        let report = resp.report.as_ref().unwrap();
        assert!(report.counter("certify_checks").unwrap() > 0);
        assert_eq!(report.counter("certify_failures"), Some(0));

        // A negative verdict certifies through the Farkas chain.
        let mut unsat = Request::new("u", Op::Check);
        unsat.schema = Some(
            "class C; class D isa C; relationship R (U1: C, U2: D); \
             card C in R.U1: 2..*; card D in R.U2: 0..1;"
                .to_string(),
        );
        unsat.certify = true;
        let resp = server.process_line(&unsat.to_json());
        assert_eq!(resp.status, Status::Negative);
        let report = resp.report.as_ref().unwrap();
        assert_eq!(report.counter("certify_failures"), Some(0));
        assert!(report.counter("certify_farkas_steps").unwrap() > 0);
        server.finish();
    }

    #[test]
    fn certified_cache_hit_agrees_with_fresh_run() {
        let server = Server::new(ServerConfig::default());
        let plain = server.process_line(&check_request("a", MEETING));
        assert_eq!(plain.status, Status::Ok);
        // The repeat is served from cache *and* re-certified from source.
        let mut again = Request::new("b", Op::Check);
        again.schema = Some(MEETING.to_string());
        again.certify = true;
        let resp = server.process_line(&again.to_json());
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.cached);
        assert!(
            resp.report
                .as_ref()
                .unwrap()
                .counter("certify_checks")
                .unwrap()
                > 0
        );
        server.finish();
    }

    #[test]
    fn malformed_and_parse_error_requests_get_error_responses() {
        let server = Server::new(ServerConfig::default());
        let bad = server.process_line("{\"v\":1,\"id\":\"e\",\"op\":\"check\"}");
        assert_eq!(bad.status, Status::Error);
        assert_eq!(bad.id, "e");
        let garbled = server.process_line("][");
        assert_eq!(garbled.status, Status::Error);
        assert_eq!(garbled.id, "");
        let syntax = server.process_line(&check_request("s", "class ;"));
        assert_eq!(syntax.status, Status::Error);
        assert!(syntax.detail[0].starts_with("schema:"));
        server.finish();
    }

    #[test]
    fn standby_requires_cache_dir() {
        let err = match Server::open(ServerConfig {
            follow: Some("127.0.0.1:1".to_string()),
            ..ServerConfig::default()
        }) {
            Err(e) => e,
            Ok(_) => panic!("standby without a cache dir must be refused"),
        };
        assert!(err.contains("cache dir"), "got: {err}");
    }

    #[test]
    fn promote_on_primary_is_a_noop() {
        let server = Server::new(ServerConfig::default());
        assert_eq!(server.promote().unwrap(), "already-primary");
        assert_eq!(server.aggregate_counter(Counter::Promotions), 0);
        let resp = server.process_line(&Request::new("p", Op::Promote).to_json());
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.verdict.as_deref(), Some("already-primary"));
        server.finish();
    }

    #[test]
    fn expired_deadline_is_shed_without_touching_a_worker() {
        let server = Server::new(ServerConfig::default());
        let mut r = Request::new("d", Op::Check);
        r.schema = Some(MEETING.to_string());
        r.deadline_ms = Some(0);
        let resp = server.process_request(&r);
        assert_eq!(resp.status, Status::Shed);
        assert!(resp.detail[0].starts_with("deadline"));
        assert_eq!(
            server.aggregate_counter(Counter::CacheMisses),
            0,
            "expired work must not reach the pipeline"
        );
        assert_eq!(server.aggregate_counter(Counter::RequestsShed), 1);
        assert_eq!(server.aggregate_counter(Counter::DeadlineRejected), 1);
        server.finish();
    }

    #[test]
    fn responses_carry_minted_trace_ids_and_hits_name_their_leader() {
        let server = Server::new(ServerConfig::default());
        let first = server.process_line(&check_request("a", MEETING));
        let first_id = first.trace_id.clone().expect("a trace id is minted");
        assert!(cr_trace::is_trace_id(&first_id));
        let report = first.report.as_ref().unwrap();
        assert_eq!(report.trace_id.as_deref(), Some(first_id.as_str()));
        assert!(
            report.leader_trace_id.is_none(),
            "fresh compute has no leader"
        );

        let second = server.process_line(&check_request("b", MEETING));
        let second_id = second.trace_id.clone().unwrap();
        assert_ne!(first_id, second_id, "every request gets its own id");
        let report = second.report.as_ref().unwrap();
        assert_eq!(report.trace_id.as_deref(), Some(second_id.as_str()));
        assert_eq!(
            report.leader_trace_id.as_deref(),
            Some(first_id.as_str()),
            "a cache hit must name the request whose computation it rode"
        );

        // A client-supplied id is honored, never replaced.
        let mut supplied = Request::new("c", Op::Ping);
        supplied.trace_id = Some("00112233445566778899aabbccddeeff".to_string());
        let resp = server.process_request(&supplied);
        assert_eq!(
            resp.trace_id.as_deref(),
            Some("00112233445566778899aabbccddeeff")
        );
        server.finish();
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        use std::io::Read as _;
        let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("send scrape");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read scrape");
        raw
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_and_statusz() {
        let server = Server::new(ServerConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        });
        let addr = server.metrics_addr().expect("metrics listener bound");
        let ok = server.process_line(&check_request("a", MEETING));
        assert_eq!(ok.status, Status::Ok);

        let raw = http_get(addr, "/metrics");
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("crsat_requests_served_total 1\n"), "{body}");
        assert!(body.contains("crsat_request_latency_seconds_count 1\n"));

        let raw = http_get(addr, "/statusz");
        let body = raw.split("\r\n\r\n").nth(1).expect("body");
        let v = cr_trace::json::parse(body).expect("statusz is JSON");
        assert_eq!(
            v.get("role").and_then(cr_trace::json::Value::as_str),
            Some("primary")
        );
        assert_eq!(
            v.get("requests")
                .and_then(|r| r.get("served_total"))
                .and_then(cr_trace::json::Value::as_u64),
            Some(1)
        );

        assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.finish();
    }

    #[test]
    fn standby_serves_replicated_verdicts_and_promotes_to_compute() {
        let dir = tmp("standby");
        {
            let primary = Server::new(ServerConfig {
                cache_dir: Some(dir.clone()),
                ..ServerConfig::default()
            });
            let r = primary.process_line(&check_request("a", MEETING));
            assert_eq!(r.status, Status::Ok);
            primary.finish();
        }
        // A standby over the same directory treats the primary's log as
        // its mirror; point `follow` at a dead address and park the
        // promotion timer so nothing races the assertions.
        let standby = Server::open(ServerConfig {
            cache_dir: Some(dir.clone()),
            follow: Some("127.0.0.1:1".to_string()),
            promote_after_ms: 3_600_000,
            ..ServerConfig::default()
        })
        .expect("standby open");
        assert!(standby.is_standby());
        let hit = standby.process_line(&check_request("b", MEETING));
        assert_eq!(hit.status, Status::Ok, "detail: {:?}", hit.detail);
        assert!(hit.cached, "replicated verdict must be served warm");
        // Novel work is refused honestly, never computed.
        let mut novel = Request::new("c", Op::Check);
        novel.schema = Some("class OnlyHere;".to_string());
        let miss = standby.process_request(&novel);
        assert_eq!(miss.status, Status::Error);
        assert!(miss.detail[0].starts_with("standby:"), "{:?}", miss.detail);
        // Promotion turns the mirror into the store and unlocks compute.
        assert_eq!(standby.promote().unwrap(), "promoted");
        assert!(!standby.is_standby());
        assert_eq!(standby.aggregate_counter(Counter::Promotions), 1);
        let fresh = standby.process_request(&novel);
        assert_eq!(fresh.status, Status::Ok, "detail: {:?}", fresh.detail);
        standby.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
