//! The concurrent reasoning service: request processing, the stdio and TCP
//! transports, and graceful shutdown.
//!
//! One [`Server`] owns a [`WorkerPool`], a [`VerdictCache`], a shared
//! [`CancelToken`], and a server-lifetime aggregate [`Tracer`]. Transports
//! (stdio loop, TCP acceptor) only move bytes: every request line becomes a
//! pool job that calls [`Server::process_line`] and writes the response
//! line to its connection's shared writer. Responses therefore interleave
//! across requests of one connection — clients correlate by `id`.
//!
//! Shutdown: a `shutdown` request, stdin EOF (ctrl-D), or SIGTERM/SIGINT
//! (see [`crate::signal`]) makes the transports stop reading, after which
//! [`Server::finish`] drains the pool — queued and in-flight requests
//! complete and flush their responses. A *second* SIGTERM/SIGINT trips the
//! shared [`CancelToken`], so in-flight reasoning aborts at its next
//! governor check and reports `budget-exceeded` instead of stalling
//! shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cr_core::{Budget, CancelToken};
use cr_trace::{Counter, NullSink, RunReport, Tracer};

use crate::cache::{CacheKey, CachedVerdict, VerdictCache};
use crate::eval;
use crate::persist::{PersistentStore, StoreRecovery};
use crate::pool::{SubmitError, WorkerPool};
use crate::protocol::{Op, Request, Response, Status};

/// Tunables for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (default: available parallelism, capped at 8).
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue rejects with an
    /// overload error response rather than buffering unboundedly.
    pub queue_capacity: usize,
    /// Approximate verdict-cache capacity, in entries.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Default per-request deadline when the request names none.
    pub default_timeout_ms: Option<u64>,
    /// Default per-request step budget when the request names none.
    pub default_max_steps: Option<u64>,
    /// Directory for the durable verdict store (`None` = memory-only).
    /// When set, certified `check` verdicts are appended to
    /// `<dir>/verdicts.log` and rehydrated into the cache on boot, so a
    /// restarted server answers previously settled questions warm.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            workers: parallelism.min(8),
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            default_timeout_ms: None,
            default_max_steps: None,
            cache_dir: None,
        }
    }
}

struct Inner {
    config: ServerConfig,
    pool: WorkerPool,
    cache: VerdictCache,
    /// Durable verdict store (present iff `config.cache_dir` is set).
    store: Option<PersistentStore>,
    /// Persist failures swallowed so far. A failed append never fails the
    /// request — the verdict was already computed and certified — but it
    /// must not vanish either; `stats` surfaces this count.
    store_errors: AtomicU64,
    cancel: CancelToken,
    shutdown: AtomicBool,
    /// Server-lifetime aggregate counters (cache traffic, requests served);
    /// the `stats` op snapshots this tracer.
    aggregate: Tracer,
}

/// The service. Cheap to clone (an `Arc`); all state is shared.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Builds a server (spawning its worker threads immediately). Panics if
    /// `config.cache_dir` names an unopenable store — use [`Server::open`]
    /// to handle that as an error.
    pub fn new(config: ServerConfig) -> Server {
        Server::open(config).expect("verdict store")
    }

    /// Builds a server, opening (and recovering) the durable verdict store
    /// when `config.cache_dir` is set and rehydrating the in-memory cache
    /// from it — a restarted daemon answers previously certified questions
    /// warm. Store recovery details are available via
    /// [`Server::store_recovery`] for the caller to report.
    pub fn open(config: ServerConfig) -> Result<Server, String> {
        let store = match &config.cache_dir {
            Some(dir) => Some(PersistentStore::open(dir)?),
            None => None,
        };
        let cache = VerdictCache::new(config.cache_capacity, config.cache_shards);
        if let Some(store) = &store {
            // Rehydrate. Store order is log order (oldest first), so under
            // LRU pressure the cache keeps the most recently persisted
            // verdicts; the rest stay reachable through the read-through.
            for (canonical, question, verdict) in store.entries() {
                let shard_hash = cr_core::canonical_text_hash(&canonical);
                cache.insert(
                    shard_hash,
                    CacheKey {
                        canonical,
                        question,
                    },
                    verdict,
                );
            }
        }
        Ok(Server {
            inner: Arc::new(Inner {
                pool: WorkerPool::new(config.workers, config.queue_capacity),
                cache,
                store,
                store_errors: AtomicU64::new(0),
                cancel: CancelToken::new(),
                shutdown: AtomicBool::new(false),
                aggregate: Tracer::new(Box::new(NullSink)),
                config,
            }),
        })
    }

    /// What store recovery found at boot (`None` when running without a
    /// `cache_dir`). The CLI reports truncation so an operator can tell a
    /// clean boot from a crash-recovered one.
    pub fn store_recovery(&self) -> Option<StoreRecovery> {
        self.inner.store.as_ref().map(|s| s.recovery())
    }

    /// Number of live verdicts in the durable store (`None` when running
    /// without one).
    pub fn persisted_verdicts(&self) -> Option<usize> {
        self.inner.store.as_ref().map(|s| s.len())
    }

    /// The server-lifetime aggregate report — what a transport emits as the
    /// final RunReport when it drains (EOF, `shutdown` op, or signal: all
    /// paths converge in [`Server::finish`]).
    pub fn final_report(&self, outcome: &str) -> RunReport {
        self.inner.aggregate.report("serve", outcome)
    }

    /// The shared cancellation token threaded into every request budget.
    /// Tripping it aborts all in-flight reasoning at the next governor
    /// check.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown: transports stop reading; call
    /// [`Server::finish`] to drain.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drains queued and in-flight work and joins the workers, then flushes
    /// the durable store. Idempotent.
    pub fn finish(&self) {
        self.request_shutdown();
        self.inner.pool.shutdown_drain();
        if let Some(store) = &self.inner.store {
            if store.flush().is_err() {
                self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current number of cached verdicts (stats/test aid).
    pub fn cached_verdicts(&self) -> usize {
        self.inner.cache.len()
    }

    /// Aggregate counter value (stats/test aid).
    pub fn aggregate_counter(&self, c: Counter) -> u64 {
        self.inner.aggregate.counter(c)
    }

    /// Processes one request line to one response line. This is the whole
    /// service in synchronous form — transports wrap it in pool jobs, tests
    /// can call it directly.
    pub fn process_line(&self, line: &str) -> Response {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(msg) => {
                self.inner.aggregate.add(Counter::RequestsServed, 1);
                return Response::error(Request::salvage_id(line), msg);
            }
        };
        self.process_request(&request)
    }

    /// Processes an already-parsed request (the `crsat batch` entry point —
    /// no JSON round-trip needed for local work).
    pub fn process_request(&self, request: &Request) -> Response {
        let response = self.process(request);
        self.inner.aggregate.add(Counter::RequestsServed, 1);
        response
    }

    /// Submits a job to the server's worker pool, blocking while the
    /// bounded queue is full. This is the local (daemon-less) path:
    /// `crsat batch` fans file checks out over the same pool the daemon
    /// uses, with no client to push back on.
    pub fn submit(&self, job: crate::pool::Job) -> Result<(), SubmitError> {
        self.inner.pool.submit_blocking(job)
    }

    /// Submits a job without blocking, refusing with
    /// [`SubmitError::QueueFull`] under backpressure. Callers that can
    /// re-create the job (`crsat batch`) retry with backoff instead of
    /// parking a thread on the queue condvar — which also routes them
    /// through the overload path the chaos harness exercises.
    pub fn try_submit(&self, job: crate::pool::Job) -> Result<(), SubmitError> {
        self.inner.pool.try_submit(job)
    }

    fn process(&self, request: &Request) -> Response {
        match request.op {
            Op::Ping => Response {
                id: request.id.clone(),
                status: Status::Ok,
                verdict: Some("pong".to_string()),
                detail: Vec::new(),
                cached: false,
                schema_hash: None,
                report: None,
            },
            Op::Stats => self.stats_response(&request.id),
            Op::Shutdown => {
                self.request_shutdown();
                Response {
                    id: request.id.clone(),
                    status: Status::Ok,
                    verdict: Some("shutting-down".to_string()),
                    detail: Vec::new(),
                    cached: false,
                    schema_hash: None,
                    report: None,
                }
            }
            Op::Check | Op::Implies => self.reason(request),
        }
    }

    /// The reasoning path: parse schema → cache lookup → (on miss) run the
    /// governed pipeline → cache fill → response with embedded RunReport.
    fn reason(&self, request: &Request) -> Response {
        // Per-request observability: the embedded RunReport accounts for
        // exactly this request's work (including whether the verdict came
        // from cache).
        let tracer = Tracer::new(Box::new(NullSink));
        let mut budget = Budget::unlimited()
            .with_tracer(&tracer)
            .with_cancel_token(&self.inner.cancel);
        if let Some(ms) = request.timeout_ms.or(self.inner.config.default_timeout_ms) {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(steps) = request.max_steps.or(self.inner.config.default_max_steps) {
            budget = budget.with_max_steps(steps);
        }

        let source = request.schema.as_deref().unwrap_or_default();
        let schema = match cr_lang::parse_schema(source) {
            Ok(s) => s,
            Err(e) => {
                return Response::error(request.id.clone(), format!("schema:{e}"));
            }
        };
        let canonical = schema.canonical_form();
        let schema_hash = cr_core::canonical_hash(&schema);
        let question = match request.op {
            Op::Check => "check".to_string(),
            Op::Implies => format!("implies {}", request.query.join(" ")),
            _ => unreachable!("reason() only sees check/implies"),
        };
        let key = CacheKey {
            canonical,
            question,
        };

        // Everything downstream of the parse — cache traffic, the reasoning
        // pipeline, certification — runs under catch_unwind: a panic (a
        // bug, or an injected fault) must cost exactly one response, not a
        // worker's accumulated trace counters. The tracer and budget stay
        // outside, so on abort the partial per-request report survives.
        let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match self.inner.cache.get(schema_hash, &key) {
                Some(hit) => {
                    tracer.add(Counter::CacheHits, 1);
                    self.inner.aggregate.add(Counter::CacheHits, 1);
                    (
                        eval::Answer {
                            status: hit.status,
                            verdict: hit.verdict,
                            detail: hit.detail,
                        },
                        true,
                    )
                }
                None => {
                    // Read-through: an LRU eviction must not force a
                    // recomputation while the verdict sits on disk.
                    if let Some(hit) = self
                        .inner
                        .store
                        .as_ref()
                        .and_then(|s| s.lookup(&key.canonical, &key.question))
                    {
                        tracer.add(Counter::StoreHits, 1);
                        self.inner.aggregate.add(Counter::StoreHits, 1);
                        let answer = eval::Answer {
                            status: hit.status,
                            verdict: hit.verdict.clone(),
                            detail: hit.detail.clone(),
                        };
                        self.inner.cache.insert(schema_hash, key, hit);
                        return (answer, true);
                    }
                    tracer.add(Counter::CacheMisses, 1);
                    self.inner.aggregate.add(Counter::CacheMisses, 1);
                    let answer = match request.op {
                        Op::Check => eval::check(&schema, &budget),
                        Op::Implies => eval::implies(&schema, &request.query, &budget),
                        _ => unreachable!("reason() only sees check/implies"),
                    };
                    if answer.cacheable() {
                        let verdict = CachedVerdict {
                            status: answer.status,
                            verdict: answer.verdict.clone(),
                            detail: answer.detail.clone(),
                        };
                        if request.op == Op::Check {
                            self.persist_certified(&schema, &budget, &key, &verdict, &tracer);
                        }
                        let evicted = self.inner.cache.insert(schema_hash, key, verdict);
                        if evicted > 0 {
                            tracer.add(Counter::CacheEvictions, evicted);
                            self.inner.aggregate.add(Counter::CacheEvictions, evicted);
                        }
                    }
                    (answer, false)
                }
            }
        }));

        let (mut answer, cached) = match work {
            Ok(result) => result,
            Err(panic) => {
                let msg = panic_text(&panic);
                let mut report = cr_core::run_report(&budget, request.op.as_str(), "aborted");
                report.aborted = true;
                report.target = format!("{schema_hash:032x}");
                return Response {
                    id: request.id.clone(),
                    status: Status::Error,
                    verdict: None,
                    detail: vec![format!("panic: {msg}")],
                    cached: false,
                    schema_hash: Some(format!("{schema_hash:032x}")),
                    report: Some(report),
                };
            }
        };

        if request.certify && request.op == Op::Check {
            answer = self.certify_answer(&schema, &budget, answer);
        }

        let mut report = cr_core::run_report(&budget, request.op.as_str(), answer.status.as_str());
        report.target = format!("{schema_hash:032x}");
        Response {
            id: request.id.clone(),
            status: answer.status,
            verdict: (!answer.verdict.is_empty()).then(|| answer.verdict.clone()),
            detail: answer.detail,
            cached,
            schema_hash: Some(format!("{schema_hash:032x}")),
            report: Some(report),
        }
    }

    /// Re-validates a `check` answer through `cr_core::certify_check`: the
    /// schema is re-reasoned from its source text (so a corrupted cache
    /// entry is caught too) and the independent certificate chain must both
    /// pass and agree with the answer being returned. Errors and budget
    /// trips are passed through unchanged — there is nothing to certify.
    fn certify_answer(
        &self,
        schema: &cr_core::Schema,
        budget: &Budget,
        answer: eval::Answer,
    ) -> eval::Answer {
        if !matches!(answer.status, Status::Ok | Status::Negative) {
            return answer;
        }
        let certified = match cr_core::certify_check(schema, budget) {
            Ok(report) => report,
            Err(e) => {
                return match eval::budget_line(&e) {
                    Some(line) => eval::Answer {
                        status: Status::BudgetExceeded,
                        verdict: String::new(),
                        detail: vec![line],
                    },
                    None => eval::Answer {
                        status: Status::Error,
                        verdict: String::new(),
                        detail: vec![format!("certify: {e}")],
                    },
                };
            }
        };
        let claimed_unsat = claimed_unsat_classes(&answer.detail);
        if !certified.ok() {
            return eval::Answer {
                status: Status::Error,
                verdict: String::new(),
                detail: certified
                    .failures
                    .iter()
                    .map(|f| format!("certify: {f}"))
                    .collect(),
            };
        }
        if certified.unsat_classes != claimed_unsat {
            return eval::Answer {
                status: Status::Error,
                verdict: String::new(),
                detail: vec![format!(
                    "certify: verdict mismatch (answer claims unsat [{}], certificates say [{}])",
                    claimed_unsat.join(", "),
                    certified.unsat_classes.join(", ")
                )],
            };
        }
        answer
    }

    /// Durably records a freshly computed `check` verdict — but only after
    /// `cr_core::certify_check` independently re-validates it and its
    /// certified unsat set agrees with the answer. An uncertifiable verdict
    /// is still served and cached in memory (the governor may simply have
    /// no budget left for the certificate pass); it just never reaches
    /// disk, so everything a warm restart serves was once proven.
    fn persist_certified(
        &self,
        schema: &cr_core::Schema,
        budget: &Budget,
        key: &CacheKey,
        verdict: &CachedVerdict,
        tracer: &Tracer,
    ) {
        let Some(store) = &self.inner.store else {
            return;
        };
        let certified = match cr_core::certify_check(schema, budget) {
            Ok(report) => report,
            Err(_) => return,
        };
        if !certified.ok() || certified.unsat_classes != claimed_unsat_classes(&verdict.detail) {
            return;
        }
        match store.persist(&key.canonical, &key.question, verdict) {
            Ok(outcome) => {
                tracer.add(Counter::StoreWrites, 1);
                self.inner.aggregate.add(Counter::StoreWrites, 1);
                if outcome.compacted {
                    tracer.add(Counter::StoreCompactions, 1);
                    self.inner.aggregate.add(Counter::StoreCompactions, 1);
                }
            }
            Err(_) => {
                self.inner.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn stats_response(&self, id: &str) -> Response {
        let agg = &self.inner.aggregate;
        let mut detail = vec![
            format!("requests_served={}", agg.counter(Counter::RequestsServed)),
            format!("cache_hits={}", agg.counter(Counter::CacheHits)),
            format!("cache_misses={}", agg.counter(Counter::CacheMisses)),
            format!("cache_evictions={}", agg.counter(Counter::CacheEvictions)),
            format!("cache_entries={}", self.inner.cache.len()),
            format!("workers={}", self.inner.config.workers),
            format!("queue_capacity={}", self.inner.config.queue_capacity),
        ];
        if let Some(store) = &self.inner.store {
            detail.push(format!("store_entries={}", store.len()));
            detail.push(format!("store_hits={}", agg.counter(Counter::StoreHits)));
            detail.push(format!(
                "store_writes={}",
                agg.counter(Counter::StoreWrites)
            ));
            detail.push(format!(
                "store_compactions={}",
                agg.counter(Counter::StoreCompactions)
            ));
            detail.push(format!(
                "store_errors={}",
                self.inner.store_errors.load(Ordering::Relaxed)
            ));
        }
        Response {
            id: id.to_string(),
            status: Status::Ok,
            verdict: Some("stats".to_string()),
            detail,
            cached: false,
            schema_hash: None,
            report: Some(agg.report("stats", "ok")),
        }
    }

    /// Submits a request line to the pool; the response line (with trailing
    /// newline) is written to `out`. A full queue is answered immediately
    /// (on the caller's thread) with an overload error response — bounded
    /// memory under overload is the contract.
    fn dispatch(&self, line: String, out: &Arc<Mutex<dyn Write + Send>>) {
        let server = self.clone();
        let writer = Arc::clone(out);
        let job_line = line.clone();
        let submitted = self.inner.pool.try_submit(Box::new(move || {
            // Last line of defense: even a panic that escapes the reasoning
            // path's own containment (e.g. in canonicalization, which runs
            // before it) must still cost the client exactly one error
            // response, never a missing reply.
            let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                server.process_line(&job_line)
            }));
            let response = work.unwrap_or_else(|panic| {
                Response::error(
                    Request::salvage_id(&job_line),
                    format!("panic: {}", panic_text(&panic)),
                )
            });
            write_response(&writer, &response);
        }));
        match submitted {
            Ok(()) => {}
            Err(SubmitError::QueueFull) => {
                self.inner.aggregate.add(Counter::RequestsServed, 1);
                write_response(
                    out,
                    &Response::error(
                        Request::salvage_id(&line),
                        "server overloaded: request queue is full",
                    ),
                );
            }
            Err(SubmitError::ShuttingDown) => {
                write_response(
                    out,
                    &Response::error(Request::salvage_id(&line), "server is shutting down"),
                );
            }
        }
    }

    /// Serves JSON-lines over stdin/stdout until EOF (ctrl-D), a `shutdown`
    /// request, or `stop` turns true (the SIGTERM flag). Drains before
    /// returning.
    pub fn serve_stdio(&self, stop: &AtomicBool) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(std::io::stdout()));
        let mut lines = stdin.lock().lines();
        loop {
            if self.shutdown_requested() || stop.load(Ordering::SeqCst) {
                break;
            }
            // Blocking read: a quiescent stdio server sits here until the
            // client writes, closes the pipe, or a signal interrupts the
            // read (EINTR surfaces as an Err we treat as a stop check).
            match lines.next() {
                None => break,
                Some(Err(_)) => continue,
                Some(Ok(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.dispatch(line, &out);
                }
            }
        }
        self.finish();
        Ok(())
    }

    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves until shutdown is
    /// requested or `stop` turns true. Returns the bound address through
    /// `on_bound` before entering the accept loop, then blocks; drains
    /// before returning.
    pub fn serve_tcp(
        &self,
        addr: &str,
        stop: Arc<AtomicBool>,
        on_bound: impl FnOnce(SocketAddr),
    ) -> std::io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        on_bound(listener.local_addr()?);
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shutdown_requested() || stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = self.clone();
                    let stop = Arc::clone(&stop);
                    connections.push(std::thread::spawn(move || {
                        let _ = server.handle_connection(stream, &stop);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            connections.retain(|h| !h.is_finished());
        }
        for h in connections {
            let _ = h.join();
        }
        self.finish();
        Ok(())
    }

    /// One TCP connection: read request lines, dispatch to the pool,
    /// responses go back over the same socket (interleaved, correlated by
    /// id). Returns on client EOF, connection error, or server shutdown.
    fn handle_connection(&self, stream: TcpStream, stop: &AtomicBool) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(stream.try_clone()?));
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        loop {
            if self.shutdown_requested() || stop.load(Ordering::SeqCst) {
                break;
            }
            match reader.read_line(&mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    let line = std::mem::take(&mut buf);
                    if !line.trim().is_empty() {
                        self.dispatch(line, &out);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Read timeout: partial data (if any) stays in `buf`;
                    // loop to re-check the shutdown flags.
                    continue;
                }
                Err(_) => break,
            }
        }
        Ok(())
    }
}

/// The unsat classes an answer claims: its detail lines minus the `rel `
/// relationship lines. This is the set `cr_core::certify_check` must agree
/// with before a verdict is trusted (returned to a `--certify` client, or
/// written to the durable store).
fn claimed_unsat_classes(detail: &[String]) -> Vec<String> {
    detail
        .iter()
        .filter(|d| !d.starts_with("rel "))
        .cloned()
        .collect()
}

/// Best-effort text of a caught panic payload.
fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn write_response(out: &Arc<Mutex<dyn Write + Send>>, response: &Response) {
    // Chaos: drop the response on the floor *before* taking the writer
    // lock — the client sees a missing reply (and must time out or retry),
    // but the connection's writer is never poisoned.
    cr_faults::point!("server.response.write", |_| ());
    let mut line = response.to_json();
    line.push('\n');
    let mut w = out.lock().expect("response writer poisoned");
    // A dead client can't be helped; dropping the response is correct.
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEETING: &str = "class Speaker; class Discussant isa Speaker; class Talk; \
         relationship Holds (U1: Speaker, U2: Talk); \
         card Speaker in Holds.U1: 1..*; card Talk in Holds.U2: 1..1;";

    fn check_request(id: &str, schema: &str) -> String {
        let mut r = Request::new(id, Op::Check);
        r.schema = Some(schema.to_string());
        r.to_json()
    }

    #[test]
    fn ping_stats_and_shutdown() {
        let server = Server::new(ServerConfig::default());
        let pong = server.process_line(&Request::new("p", Op::Ping).to_json());
        assert_eq!(pong.status, Status::Ok);
        assert_eq!(pong.verdict.as_deref(), Some("pong"));
        let stats = server.process_line(&Request::new("s", Op::Stats).to_json());
        assert!(stats
            .detail
            .iter()
            .any(|d| d.starts_with("requests_served=")));
        assert!(!server.shutdown_requested());
        let bye = server.process_line(&Request::new("q", Op::Shutdown).to_json());
        assert_eq!(bye.verdict.as_deref(), Some("shutting-down"));
        assert!(server.shutdown_requested());
        server.finish();
    }

    #[test]
    fn second_identical_check_is_served_from_cache() {
        let server = Server::new(ServerConfig::default());
        let first = server.process_line(&check_request("a", MEETING));
        assert_eq!(first.status, Status::Ok);
        assert!(!first.cached);
        let report = first.report.as_ref().unwrap();
        assert_eq!(report.counter("cache_hits"), Some(0));
        assert_eq!(report.counter("cache_misses"), Some(1));

        // Same constraints, different declaration order and whitespace.
        let reordered = "class Talk; class Speaker;\nclass Discussant isa Speaker;\n\
             relationship Holds (U1: Speaker, U2: Talk);\n\
             card Talk   in Holds.U2: 1..1;\ncard Speaker in Holds.U1: 1..*;";
        let second = server.process_line(&check_request("b", reordered));
        assert_eq!(second.status, Status::Ok);
        assert!(second.cached, "canonicalized repeat must hit the cache");
        let report = second.report.as_ref().unwrap();
        assert_eq!(report.counter("cache_hits"), Some(1));
        assert_eq!(first.schema_hash, second.schema_hash);
        assert_eq!(server.aggregate_counter(Counter::CacheHits), 1);
        assert_eq!(server.aggregate_counter(Counter::CacheMisses), 1);
        server.finish();
    }

    #[test]
    fn budget_exceeded_is_not_cached() {
        let server = Server::new(ServerConfig::default());
        let mut starved = Request::new("x", Op::Check);
        starved.schema = Some(MEETING.to_string());
        starved.max_steps = Some(1);
        let r = server.process_line(&starved.to_json());
        assert_eq!(r.status, Status::BudgetExceeded);
        assert!(r.detail[0].starts_with("budget-exceeded stage="));
        assert_eq!(server.cached_verdicts(), 0);
        // The same schema with a real budget then computes fresh.
        let ok = server.process_line(&check_request("y", MEETING));
        assert!(!ok.cached);
        assert_eq!(ok.status, Status::Ok);
        server.finish();
    }

    #[test]
    fn certify_flag_re_validates_the_verdict() {
        let server = Server::new(ServerConfig::default());
        let mut sat = Request::new("c", Op::Check);
        sat.schema = Some(MEETING.to_string());
        sat.certify = true;
        let resp = server.process_line(&sat.to_json());
        assert_eq!(resp.status, Status::Ok);
        let report = resp.report.as_ref().unwrap();
        assert!(report.counter("certify_checks").unwrap() > 0);
        assert_eq!(report.counter("certify_failures"), Some(0));

        // A negative verdict certifies through the Farkas chain.
        let mut unsat = Request::new("u", Op::Check);
        unsat.schema = Some(
            "class C; class D isa C; relationship R (U1: C, U2: D); \
             card C in R.U1: 2..*; card D in R.U2: 0..1;"
                .to_string(),
        );
        unsat.certify = true;
        let resp = server.process_line(&unsat.to_json());
        assert_eq!(resp.status, Status::Negative);
        let report = resp.report.as_ref().unwrap();
        assert_eq!(report.counter("certify_failures"), Some(0));
        assert!(report.counter("certify_farkas_steps").unwrap() > 0);
        server.finish();
    }

    #[test]
    fn certified_cache_hit_agrees_with_fresh_run() {
        let server = Server::new(ServerConfig::default());
        let plain = server.process_line(&check_request("a", MEETING));
        assert_eq!(plain.status, Status::Ok);
        // The repeat is served from cache *and* re-certified from source.
        let mut again = Request::new("b", Op::Check);
        again.schema = Some(MEETING.to_string());
        again.certify = true;
        let resp = server.process_line(&again.to_json());
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.cached);
        assert!(
            resp.report
                .as_ref()
                .unwrap()
                .counter("certify_checks")
                .unwrap()
                > 0
        );
        server.finish();
    }

    #[test]
    fn malformed_and_parse_error_requests_get_error_responses() {
        let server = Server::new(ServerConfig::default());
        let bad = server.process_line("{\"v\":1,\"id\":\"e\",\"op\":\"check\"}");
        assert_eq!(bad.status, Status::Error);
        assert_eq!(bad.id, "e");
        let garbled = server.process_line("][");
        assert_eq!(garbled.status, Status::Error);
        assert_eq!(garbled.id, "");
        let syntax = server.process_line(&check_request("s", "class ;"));
        assert_eq!(syntax.status, Status::Error);
        assert!(syntax.detail[0].starts_with("schema:"));
        server.finish();
    }
}
