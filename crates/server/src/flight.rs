//! Request coalescing (singleflight): concurrent requests for the same
//! (canonical form, question) join one in-flight computation.
//!
//! The first arrival becomes the *leader* and computes; arrivals while
//! the leader runs become *followers* and block on a condvar until the
//! leader publishes its answer. Only conclusive, cacheable verdicts are
//! shared — a leader that errors, trips its budget, or panics publishes
//! "nothing" and every follower falls back to computing for itself, so a
//! follower can never inherit an outcome produced under someone else's
//! budget. Followers always wait under their own deadline; a timed-out
//! follower also computes for itself.
//!
//! Deadlock-free by construction: a follower only ever waits on a leader
//! that is *already running* on another worker (the leader registers
//! before it starts computing and publishes on every exit path,
//! including unwind, via the guard's `Drop`).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cr_core::Clock;

use crate::cache::{CacheKey, CachedVerdict};

enum FlightState {
    Running,
    /// The leader's published answer: `Some` only for conclusive,
    /// cacheable verdicts; `None` tells followers to compute themselves.
    Done(Option<CachedVerdict>),
}

/// One in-flight computation: the leader's eventual answer and the
/// condvar followers park on.
pub struct Flight {
    clock: Clock,
    state: Mutex<FlightState>,
    done: Condvar,
}

/// The table of in-flight computations. Follower deadlines read the
/// injected [`Clock`] so they run on virtual time under deterministic
/// simulation (where the single sim thread never actually parks: the
/// leader always publishes synchronously before a follower could wait).
#[derive(Default)]
pub struct Inflight {
    clock: Clock,
    flights: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

/// What `begin` decided for this request.
pub enum Entry<'a> {
    /// First arrival: compute, then `publish` through the guard.
    Leader(LeaderGuard<'a>),
    /// Another request is already computing this key: `wait` on it.
    Follower(Arc<Flight>),
}

/// Leadership of one in-flight key. Publishes `None` on drop if the
/// leader never published (panic safety: followers are always released).
pub struct LeaderGuard<'a> {
    inflight: &'a Inflight,
    key: CacheKey,
    published: bool,
}

impl Inflight {
    /// A table whose follower waits read `clock`.
    pub fn with_clock(clock: Clock) -> Inflight {
        Inflight {
            clock,
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Joins or starts the flight for `key`.
    pub fn begin(&self, key: CacheKey) -> Entry<'_> {
        let mut flights = self.lock();
        match flights.get(&key) {
            Some(flight) => Entry::Follower(Arc::clone(flight)),
            None => {
                flights.insert(
                    key.clone(),
                    Arc::new(Flight {
                        clock: self.clock.clone(),
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    }),
                );
                Entry::Leader(LeaderGuard {
                    inflight: self,
                    key,
                    published: false,
                })
            }
        }
    }

    /// Number of in-flight keys (stats/test aid).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Arc<Flight>>> {
        self.flights.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn finish(&self, key: &CacheKey, answer: Option<CachedVerdict>) {
        let flight = self.lock().remove(key);
        if let Some(flight) = flight {
            let mut state = flight.state.lock().unwrap_or_else(|e| e.into_inner());
            *state = FlightState::Done(answer);
            flight.done.notify_all();
        }
    }
}

impl LeaderGuard<'_> {
    /// Publishes the leader's answer (pass `None` for outcomes followers
    /// must not inherit) and releases every follower.
    pub fn publish(mut self, answer: Option<CachedVerdict>) {
        self.published = true;
        self.inflight.finish(&self.key.clone(), answer);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            // Leader unwound without publishing: release followers with
            // "compute it yourself".
            self.inflight.finish(&self.key.clone(), None);
        }
    }
}

impl Flight {
    /// Follower side: waits until the leader publishes or `deadline`
    /// passes. `None` means timed out (or the leader published nothing):
    /// compute for yourself.
    pub fn wait(&self, deadline: Duration) -> Option<CachedVerdict> {
        let until = self.clock.now().saturating_add(deadline);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let FlightState::Done(answer) = &*state {
                return answer.clone();
            }
            let now = self.clock.now();
            if now >= until {
                return None;
            }
            let remaining = until - now;
            let (next, timeout) = self
                .done
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if timeout.timed_out() {
                if let FlightState::Done(answer) = &*state {
                    return answer.clone();
                }
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;

    fn key(tag: &str) -> CacheKey {
        CacheKey {
            canonical: format!("schema-{tag}"),
            question: "check".to_string(),
        }
    }

    fn verdict(tag: &str) -> CachedVerdict {
        CachedVerdict {
            status: Status::Ok,
            verdict: format!("satisfiable-{tag}"),
            detail: Vec::new(),
            trace_id: None,
        }
    }

    #[test]
    fn followers_receive_the_leaders_answer() {
        let inflight = Arc::new(Inflight::default());
        let Entry::Leader(leader) = inflight.begin(key("a")) else {
            panic!("first arrival must lead");
        };
        let mut followers = Vec::new();
        for _ in 0..4 {
            let Entry::Follower(flight) = inflight.begin(key("a")) else {
                panic!("second arrival must follow");
            };
            followers.push(std::thread::spawn(move || {
                flight.wait(Duration::from_secs(10))
            }));
        }
        leader.publish(Some(verdict("a")));
        for f in followers {
            assert_eq!(f.join().unwrap(), Some(verdict("a")));
        }
        assert!(inflight.is_empty(), "finished flights must be removed");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let inflight = Inflight::default();
        let Entry::Leader(a) = inflight.begin(key("a")) else {
            panic!("lead a");
        };
        let Entry::Leader(b) = inflight.begin(key("b")) else {
            panic!("distinct key must lead its own flight");
        };
        a.publish(Some(verdict("a")));
        b.publish(None);
        assert!(inflight.is_empty());
    }

    #[test]
    fn dropped_leader_releases_followers_empty_handed() {
        let inflight = Inflight::default();
        {
            let Entry::Leader(_leader) = inflight.begin(key("x")) else {
                panic!("lead");
            };
            // Simulated panic: the guard drops without publishing.
        }
        assert!(inflight.is_empty());
        // The key is free again: the next arrival leads.
        assert!(matches!(inflight.begin(key("x")), Entry::Leader(_)));
    }

    #[test]
    fn follower_times_out_against_a_stuck_leader() {
        let inflight = Inflight::default();
        let Entry::Leader(_leader) = inflight.begin(key("slow")) else {
            panic!("lead");
        };
        let Entry::Follower(flight) = inflight.begin(key("slow")) else {
            panic!("follow");
        };
        assert_eq!(flight.wait(Duration::from_millis(20)), None);
    }
}
