//! A fixed-size worker thread pool with a bounded request queue.
//!
//! Hand-rolled on `Mutex` + `Condvar` (std only). The queue bound is the
//! service's backpressure: when it is full, [`WorkerPool::try_submit`]
//! refuses immediately (the server turns that into an overload error
//! response instead of buffering unboundedly), while
//! [`WorkerPool::submit_blocking`] waits for space (what `crsat batch`
//! wants — local work, no client to push back on).
//!
//! Shutdown is cooperative and two-flavored:
//!
//! * [`shutdown_drain`](WorkerPool::shutdown_drain) — stop accepting new
//!   jobs, run everything already queued, join the workers (SIGTERM /
//!   ctrl-D path);
//! * [`shutdown_now`](WorkerPool::shutdown_now) — additionally discard the
//!   queue; jobs already *running* still finish (in-flight reasoning is
//!   interrupted separately, via the `CancelToken` the server threads into
//!   every request budget).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The bounded queue is full (backpressure; retry or reject upstream).
    QueueFull,
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a job (or shutdown) is available.
    job_ready: Condvar,
    /// Signals blocked submitters that queue space freed up.
    space_ready: Condvar,
    capacity: usize,
}

/// The pool. Dropping it without calling a shutdown method drains and
/// joins (so tests can't leak threads).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Monotonic worker-name counter: respawned workers get fresh names,
    /// so thread names in a crash dump distinguish generations.
    next_worker: AtomicUsize,
}

impl WorkerPool {
    /// Spawns `workers` threads servicing a queue bounded at
    /// `queue_capacity` jobs (both clamped to at least 1).
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            capacity: queue_capacity.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| spawn_worker(&shared, i))
            .collect::<Vec<_>>();
        WorkerPool {
            next_worker: AtomicUsize::new(handles.len()),
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Number of worker threads still running (a worker that panicked on
    /// startup or died outside a job's `catch_unwind` is not running).
    pub fn alive_workers(&self) -> usize {
        self.workers
            .lock()
            .expect("pool poisoned")
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Joins dead worker threads and spawns replacements, restoring the
    /// pool to its configured size. Returns how many were respawned (0
    /// during/after shutdown: dead workers stay dead once drain starts).
    /// This is the supervisor's repair hook — a worker lost to a panic
    /// that escaped job containment must not silently shrink the pool
    /// forever.
    pub fn respawn_dead(&self) -> u64 {
        if self.shared.state.lock().expect("pool poisoned").shutdown {
            return 0;
        }
        let mut workers = self.workers.lock().expect("pool poisoned");
        let mut respawned = 0;
        let mut alive = Vec::with_capacity(workers.len());
        for handle in workers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
                let id = self.next_worker.fetch_add(1, Ordering::Relaxed);
                alive.push(spawn_worker(&self.shared, id));
                respawned += 1;
            } else {
                alive.push(handle);
            }
        }
        *workers = alive;
        respawned
    }

    /// Number of jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool poisoned").jobs.len()
    }

    /// Enqueues `job`, refusing immediately when the queue is full.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        // Chaos: simulate a full queue before touching real state, so the
        // overload path is exercised without actually saturating workers.
        cr_faults::point!("server.queue.push", |_| Err(SubmitError::QueueFull));
        let mut state = self.shared.state.lock().expect("pool poisoned");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Enqueues `job`, waiting for queue space if necessary.
    pub fn submit_blocking(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool poisoned");
        loop {
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if state.jobs.len() < self.shared.capacity {
                state.jobs.push_back(job);
                drop(state);
                self.shared.job_ready.notify_one();
                return Ok(());
            }
            state = self.shared.space_ready.wait(state).expect("pool poisoned");
        }
    }

    /// Stops accepting new jobs, runs everything already queued, and joins
    /// the workers. Idempotent.
    pub fn shutdown_drain(&self) {
        self.shutdown(false);
    }

    /// Stops accepting new jobs, discards the queue, and joins the workers
    /// once in-flight jobs finish. Idempotent.
    pub fn shutdown_now(&self) {
        self.shutdown(true);
    }

    fn shutdown(&self, discard_queue: bool) {
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.shutdown = true;
            if discard_queue {
                state.jobs.clear();
            }
        }
        self.shared.job_ready.notify_all();
        self.shared.space_ready.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("pool poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_drain();
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("cr-worker-{id}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn worker thread")
}

fn worker_loop(shared: &Shared) {
    // Chaos: kill this worker at startup (use an nth-hit spec such as
    // `2#panic` so at least one worker survives; the pool keeps serving on
    // the remaining threads).
    cr_faults::point!("server.worker.start");
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.job_ready.wait(state).expect("pool poisoned");
            }
        };
        shared.space_ready.notify_one();
        // A panicking job must not take the worker (and the whole pool's
        // throughput) with it; the panic is contained to the one request.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit_blocking(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.shutdown_drain();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn try_submit_refuses_when_full() {
        // One worker, blocked; capacity 1.
        let pool = WorkerPool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap(); // worker is now busy
        pool.try_submit(Box::new(|| {})).unwrap(); // fills the queue
        let err = pool.try_submit(Box::new(|| {})).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        release_tx.send(()).unwrap();
        pool.shutdown_drain();
    }

    #[test]
    fn drain_runs_queued_jobs_but_rejects_new_ones() {
        let pool = WorkerPool::new(1, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.shutdown_drain();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(
            pool.try_submit(Box::new(|| {})).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn respawn_restores_the_configured_size() {
        let pool = WorkerPool::new(3, 8);
        assert_eq!(pool.alive_workers(), 3);
        assert_eq!(pool.respawn_dead(), 0, "healthy pool needs no repair");
        // Kill one worker outside job containment by making the worker
        // thread itself exit: there is no public hook for that, so this
        // test drives the repair path against threads that finished
        // naturally after shutdown — respawn must then refuse.
        pool.shutdown_drain();
        assert_eq!(
            pool.respawn_dead(),
            0,
            "shutdown pools must not resurrect workers"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.try_submit(Box::new(|| panic!("request handler bug")))
            .unwrap();
        let c = Arc::clone(&counter);
        pool.submit_blocking(Box::new(move || {
            c.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
        pool.shutdown_drain();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
