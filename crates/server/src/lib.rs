//! `cr-server`: a long-running reasoning service for CR schemas.
//!
//! The reasoning procedures in this workspace (finite satisfiability and
//! constraint implication over ISA + cardinality schemas, after
//! Calvanese–Lenzerini ICDE'94) are worst-case exponential in the schema
//! expansion — exactly the profile that rewards a resident daemon with a
//! verdict cache over a fork-per-question CLI. This crate provides that
//! daemon, std-only:
//!
//! * [`protocol`] — a versioned JSON-lines request/response protocol
//!   (`{"v":1,"id":…,"op":"check"|"implies"|"ping"|"stats"|"shutdown",…}`)
//!   spoken identically over TCP and stdio, built on `cr-trace`'s
//!   hand-rolled JSON writer/parser;
//! * [`pool`] — a fixed-size worker thread pool with a bounded queue
//!   (backpressure, not unbounded buffering, under overload);
//! * [`cache`] — a sharded LRU verdict cache keyed by
//!   [`cr_core::canonical_form`], so reordered/reformatted copies of the
//!   same schema share one entry;
//! * [`eval`] — the bridge onto `cr-core`'s governed reasoning entry
//!   points, verdict-identical to `crsat check` / `crsat implies`;
//! * [`persist`] — the durable side of the cache: a crash-safe `cr-store`
//!   log of *certified* verdicts, rehydrated on boot so a restarted daemon
//!   answers previously settled questions warm;
//! * [`Server`] — ties the above together; every response can embed a
//!   `cr-trace` `RunReport` whose `cache_hits` / `cache_misses` counters
//!   prove where the verdict came from;
//! * [`signal`] — SIGTERM/SIGINT → graceful drain; a second signal aborts
//!   in-flight reasoning via per-request cancel tokens and the budget
//!   governor.
//!
//! High availability (this crate's serving layer is expected to survive
//! crashes, overload, and its own bugs):
//!
//! * [`repl`] — primary→standby replication by byte-level log shipping
//!   (`replicate`/`promote` ops); a warm standby promotes itself when the
//!   primary's heartbeat lapses, losing no acknowledged verdict;
//! * [`supervise`] — worker respawn, wedge detection (deadline + grace →
//!   cancel), and quarantine of schemas that crash the pipeline;
//! * [`admission`] — deadline-aware admission control and AIMD
//!   priority-based load shedding (`shed` responses are retryable, with
//!   the shared [`backoff_delay`] schedule);
//! * [`flight`] — coalescing of concurrent identical requests onto one
//!   computation;
//! * [`metrics`] — the live telemetry plane: sliding-window time series
//!   over every response, scraped through a hand-rolled HTTP endpoint
//!   (`/metrics` Prometheus text, `/statusz` JSON), plus end-to-end
//!   trace-id propagation: ids minted at admission ride the response,
//!   its embedded report, the verdict cache, the durable log, and
//!   replicated chunks.
//!
//! The `crsat serve` and `crsat batch` subcommands in `cr-cli` are thin
//! shells over this crate.

#![deny(unsafe_code)] // sole exception: the `signal(2)` binding in `signal`
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod eval;
pub mod flight;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod protocol;
pub mod repl;
pub mod signal;
pub mod supervise;
pub mod transport;

mod server;

pub use admission::{backoff_delay, Admission, Admit};
pub use cache::{CacheKey, CachedVerdict, VerdictCache};
pub use metrics::{MetricsView, SharedSink, Telemetry};
pub use persist::StoreRecovery;
pub use pool::{Job, SubmitError, WorkerPool};
pub use protocol::{Op, ReplChunk, Request, Response, Status, PROTOCOL_VERSION};
pub use server::{FollowerStep, Server, ServerConfig};
pub use transport::{Conn, Connector, Listener, TcpConn, TcpConnector, TcpListenerSource};
