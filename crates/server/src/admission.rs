//! Admission control: deadline screening, cost estimation, and adaptive
//! (AIMD) load shedding.
//!
//! Every `check`/`implies` request passes through [`Admission::admit`]
//! before it is queued. A request is refused — with the retryable `shed`
//! status, never a wrong answer — when:
//!
//! 1. its `deadline_ms` has already expired (or is zero) on arrival;
//! 2. the current queue delay alone would consume its whole deadline;
//! 3. the *estimated compute cost* for a schema of its size (an EWMA of
//!    recent fresh-compute wall times, bucketed by source length) cannot
//!    fit in what would remain of the deadline after queueing; or
//! 4. its priority falls in the band the overload gate is currently
//!    shedding.
//!
//! The gate is AIMD, driven by observed queue delay: when the EWMA of
//! time-in-queue exceeds the target, the shed threshold drops
//! multiplicatively (9 → 4 → 2 → 1 → 0: each cut halves the admitted
//! priority band, shedding the least-important half first); while the
//! queue stays calm it recovers additively, one priority band per
//! supervisor relax tick. Threshold 9 (= `MAX_PRIORITY`) admits
//! everything; 0 admits only the most important band.
//!
//! Cost screening (rule 3) only engages while the gate is depressed —
//! under no load a mispredicted estimate must not reject work the worker
//! pool could happily attempt, and a budget trip downstream already
//! reports `budget-exceeded` honestly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use cr_core::Clock;

use crate::protocol::MAX_PRIORITY;

/// Queue-delay EWMA smoothing factor, in percent (α = 0.2).
const EWMA_ALPHA_PCT: u64 = 20;

/// Minimum spacing between multiplicative cuts, so one burst of queued
/// requests (which all report the same bad delay at pickup) counts as one
/// overload signal, not ten.
const CUT_COOLDOWN: Duration = Duration::from_millis(250);

/// Source-length bucket boundaries (bytes) for the cost model. Schemas in
/// the same bucket are assumed cost-comparable; the reasoner's spiky
/// worst-case EXPTIME behaviour is exactly why this is an *estimate* used
/// only to refuse work that provably cannot fit its deadline.
const COST_BUCKETS: [usize; 6] = [256, 1024, 4096, 16_384, 65_536, usize::MAX];

/// What [`Admission::admit`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// Queue it.
    Accept,
    /// Refuse with `shed`.
    Shed {
        /// Client-visible reason line.
        reason: String,
        /// True when the refusal was deadline-driven (expired or cannot
        /// fit) rather than pure overload shedding — the server counts
        /// these separately.
        deadline: bool,
    },
}

impl Admit {
    fn shed(reason: String, deadline: bool) -> Admit {
        Admit::Shed { reason, deadline }
    }
}

/// Shared admission state (one per server).
pub struct Admission {
    /// Highest priority value still admitted; `MAX_PRIORITY` = gate open.
    shed_threshold: AtomicU64,
    /// Queue-delay EWMA, microseconds.
    queue_delay_us: AtomicU64,
    /// Queue delay above which the gate tightens, microseconds.
    target_us: u64,
    /// Caller-supplied time source: the cut cooldown must run on virtual
    /// time under deterministic simulation, not the wall clock.
    clock: Clock,
    /// Clock reading at the last multiplicative cut (rate limiter).
    last_cut: Mutex<Option<Duration>>,
    /// Fresh-compute wall-time EWMA per source-length bucket, µs.
    /// Zero = no observation yet.
    cost_us: [AtomicU64; COST_BUCKETS.len()],
}

impl Admission {
    /// Creates the gate with a queue-delay target (ms) on the real clock.
    pub fn new(shed_target_ms: u64) -> Admission {
        Admission::with_clock(shed_target_ms, Clock::monotonic())
    }

    /// Creates the gate on an explicit time source.
    pub fn with_clock(shed_target_ms: u64, clock: Clock) -> Admission {
        Admission {
            shed_threshold: AtomicU64::new(u64::from(MAX_PRIORITY)),
            queue_delay_us: AtomicU64::new(0),
            target_us: shed_target_ms.saturating_mul(1000),
            clock,
            last_cut: Mutex::new(None),
            cost_us: Default::default(),
        }
    }

    /// Admission decision for a `check`/`implies` request.
    ///
    /// `deadline_ms` is the request's declared end-to-end deadline (if
    /// any), `priority` its 0..=9 priority, `schema_len` the DSL source
    /// length in bytes.
    pub fn admit(&self, deadline_ms: Option<u64>, priority: u8, schema_len: usize) -> Admit {
        cr_faults::point!("server.admission.shed", |p: Option<String>| Admit::shed(
            p.unwrap_or_else(|| "injected shed".to_string()),
            false
        ));
        let queue_us = self.queue_delay_us.load(Ordering::Relaxed);
        if let Some(d) = deadline_ms {
            let deadline_us = d.saturating_mul(1000);
            if d == 0 {
                return Admit::shed("deadline expired on arrival".to_string(), true);
            }
            if queue_us >= deadline_us {
                return Admit::shed(
                    format!(
                        "deadline {d}ms cannot be met: queue delay is {}ms",
                        queue_us / 1000
                    ),
                    true,
                );
            }
            // Cost screen, only while the gate is already depressed: a
            // request whose *estimated* compute time does not fit in the
            // deadline minus expected queueing is refused up front rather
            // than burning a worker to report budget-exceeded later.
            if self.threshold() < MAX_PRIORITY {
                let est_us = self.cost_us[bucket_of(schema_len)].load(Ordering::Relaxed);
                if est_us > 0 && queue_us.saturating_add(est_us) > deadline_us {
                    return Admit::shed(
                        format!(
                            "deadline {d}ms cannot fit estimated cost {}ms (queue {}ms)",
                            est_us / 1000,
                            queue_us / 1000
                        ),
                        true,
                    );
                }
            }
        }
        let threshold = self.threshold();
        if priority > threshold {
            return Admit::shed(
                format!("overload: shedding priority > {threshold} (request priority {priority})"),
                false,
            );
        }
        Admit::Accept
    }

    /// Feeds one observed time-in-queue sample (measured at job pickup)
    /// and tightens the gate multiplicatively if the smoothed delay is
    /// over target.
    pub fn note_queue_delay(&self, delay: Duration) {
        let sample = u64::try_from(delay.as_micros()).unwrap_or(u64::MAX);
        let prev = self.queue_delay_us.load(Ordering::Relaxed);
        let ewma = if prev == 0 {
            sample
        } else {
            (prev * (100 - EWMA_ALPHA_PCT) + sample * EWMA_ALPHA_PCT) / 100
        };
        self.queue_delay_us.store(ewma, Ordering::Relaxed);
        if ewma > self.target_us {
            self.cut();
        }
    }

    /// A hard overload signal (the bounded queue refused a job): tighten
    /// the gate as if the queue delay were over target. Rate-limited like
    /// every multiplicative cut.
    pub fn note_overload(&self) {
        // Pull the delay estimate up to the target floor too, so the
        // deadline screen reflects that the queue is saturated even if no
        // pickup sample has reported it yet.
        let d = self.queue_delay_us.load(Ordering::Relaxed);
        if d < self.target_us {
            self.queue_delay_us.store(self.target_us, Ordering::Relaxed);
        }
        self.cut();
    }

    /// Additive-increase step, called from each supervisor tick: decay
    /// the queue-delay estimate (an idle queue produces no pickup
    /// samples, and a stale spike must not hold the gate shut — or keep
    /// shedding short-deadline work — forever), and once the smoothed
    /// delay is comfortably under target, re-admit one more priority
    /// band. Under real load the pickup samples keep pushing the EWMA
    /// back up, so the gate stays where the traffic says it should be.
    pub fn maybe_relax(&self) {
        let decayed = self.queue_delay_us.load(Ordering::Relaxed) / 2;
        self.queue_delay_us.store(decayed, Ordering::Relaxed);
        if decayed <= self.target_us / 2 {
            let t = self.shed_threshold.load(Ordering::Relaxed);
            if t < u64::from(MAX_PRIORITY) {
                self.shed_threshold.store(t + 1, Ordering::Relaxed);
            }
        }
    }

    /// Feeds one fresh-compute wall time for a schema of `schema_len`
    /// bytes into the cost model.
    pub fn note_compute_cost(&self, schema_len: usize, wall: Duration) {
        let sample = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        let slot = &self.cost_us[bucket_of(schema_len)];
        let prev = slot.load(Ordering::Relaxed);
        let ewma = if prev == 0 {
            sample
        } else {
            (prev * (100 - EWMA_ALPHA_PCT) + sample * EWMA_ALPHA_PCT) / 100
        };
        slot.store(ewma, Ordering::Relaxed);
    }

    /// Current shed threshold (9 = gate open).
    pub fn threshold(&self) -> u8 {
        u8::try_from(self.shed_threshold.load(Ordering::Relaxed)).unwrap_or(MAX_PRIORITY)
    }

    /// Current queue-delay EWMA, microseconds (stats surface).
    pub fn queue_delay_us(&self) -> u64 {
        self.queue_delay_us.load(Ordering::Relaxed)
    }

    /// Multiplicative decrease, rate-limited to one cut per cooldown.
    fn cut(&self) {
        let mut last = self.last_cut.lock().unwrap_or_else(|e| e.into_inner());
        let now = self.clock.now();
        if let Some(at) = *last {
            if now.saturating_sub(at) < CUT_COOLDOWN {
                return;
            }
        }
        *last = Some(now);
        let t = self.shed_threshold.load(Ordering::Relaxed);
        self.shed_threshold.store(t / 2, Ordering::Relaxed);
    }
}

fn bucket_of(schema_len: usize) -> usize {
    COST_BUCKETS
        .iter()
        .position(|&limit| schema_len <= limit)
        .unwrap_or(COST_BUCKETS.len() - 1)
}

/// Retry backoff for a shed (or queue-full) response, attempt `n` (0-based):
/// a jittered exponential delay in `[B(n), 1.5·B(n)]` with
/// `B(n) = min(10·2ⁿ, 1000)` ms. The jitter source is a tiny seeded
/// xorshift so tests are reproducible; `ci/serve_client.py` implements the
/// *same algorithm* (same base, cap, and jitter band) and a repo test
/// asserts the two stay in agreement.
pub fn backoff_delay(seed: &mut u64, attempt: u32) -> Duration {
    let base = 10u64.saturating_mul(1u64 << attempt.min(16)).min(1000);
    // xorshift64
    let mut x = *seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *seed = x;
    Duration::from_millis(base + x % (base / 2 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_gate_admits_everything_without_deadlines() {
        let a = Admission::new(50);
        assert_eq!(a.admit(None, 0, 10), Admit::Accept);
        assert_eq!(a.admit(None, MAX_PRIORITY, 1 << 20), Admit::Accept);
        assert_eq!(a.threshold(), MAX_PRIORITY);
    }

    #[test]
    fn expired_on_arrival_is_shed() {
        let a = Admission::new(50);
        let Admit::Shed { reason, deadline } = a.admit(Some(0), 0, 10) else {
            panic!("deadline 0 must shed");
        };
        assert!(reason.contains("expired"));
        assert!(deadline, "expiry is a deadline-driven shed");
    }

    #[test]
    fn queue_delay_alone_can_doom_a_deadline() {
        let a = Admission::new(50);
        // Drive the EWMA to ~200ms of queue delay.
        for _ in 0..64 {
            a.note_queue_delay(Duration::from_millis(200));
        }
        assert!(matches!(
            a.admit(Some(100), 0, 10),
            Admit::Shed { deadline: true, .. }
        ));
        assert!(matches!(a.admit(Some(60_000), 0, 10), Admit::Accept));
    }

    #[test]
    fn overload_cuts_multiplicatively_and_recovers_additively() {
        let a = Admission::new(1); // 1ms target: trivially exceeded
        for _ in 0..8 {
            a.note_queue_delay(Duration::from_millis(500));
            std::thread::sleep(Duration::from_millis(260)); // past cooldown
            if a.threshold() == 0 {
                break;
            }
        }
        assert!(a.threshold() < MAX_PRIORITY, "gate must have tightened");
        let tightened = a.threshold();
        // High numbers shed first; an overload shed is not deadline-driven.
        assert!(matches!(
            a.admit(None, MAX_PRIORITY, 10),
            Admit::Shed {
                deadline: false,
                ..
            }
        ));
        assert!(matches!(a.admit(None, 0, 10), Admit::Accept));
        // Calm queue: relax one band per tick, eventually reopening.
        for _ in 0..64 {
            a.maybe_relax();
        }
        assert_eq!(a.threshold(), MAX_PRIORITY);
        assert!(a.threshold() > tightened);
    }

    #[test]
    fn cut_is_rate_limited() {
        let a = Admission::new(1);
        for _ in 0..10 {
            a.note_queue_delay(Duration::from_millis(500));
        }
        // A burst of bad samples within the cooldown = one cut (9 -> 4).
        assert_eq!(a.threshold(), 4);
    }

    #[test]
    fn cost_screen_engages_only_while_gate_is_depressed() {
        let a = Admission::new(1);
        a.note_compute_cost(100, Duration::from_millis(900));
        // Gate open: the 900ms estimate must not shed a 200ms deadline.
        assert!(matches!(a.admit(Some(200), 0, 100), Admit::Accept));
        // Depress the gate (queue delay ~500ms).
        for _ in 0..10 {
            a.note_queue_delay(Duration::from_millis(500));
        }
        assert!(a.threshold() < MAX_PRIORITY);
        // A 1s deadline survives the queue-delay screen (500ms < 1s) but
        // not queue + estimated cost (500ms + 900ms > 1s).
        let Admit::Shed { reason, deadline } = a.admit(Some(1000), 0, 100) else {
            panic!("estimated cost over deadline must shed under load");
        };
        assert!(reason.contains("estimated cost"), "{reason}");
        assert!(deadline);
    }

    #[test]
    fn backoff_delay_respects_documented_bounds() {
        let mut seed = 0x5eed_cafe;
        for attempt in 0..12 {
            let base = 10u64.saturating_mul(1 << attempt.min(16)).min(1000);
            for _ in 0..32 {
                let d = backoff_delay(&mut seed, attempt).as_millis() as u64;
                assert!(d >= base, "attempt {attempt}: {d} < {base}");
                assert!(d <= base + base / 2, "attempt {attempt}: {d} > 1.5x{base}");
            }
        }
    }
}
