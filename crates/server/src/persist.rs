//! The durable side of the verdict cache: a [`cr_store::Store`] holding
//! certified verdicts keyed by (canonical form, question).
//!
//! Trust model: **nothing enters the store without a certificate.** The
//! server only persists `check` verdicts that `cr_core::certify_check`
//! re-validated and that agree with the certified unsat-class set, so a
//! record read back after a crash is as trustworthy as a fresh run —
//! integrity in transit is the log's CRC framing, integrity of *meaning*
//! is the certificate gate at write time. Rehydration therefore does not
//! re-certify; a torn tail is truncated by the log layer before any
//! record reaches us.
//!
//! Record layout (inside one CRC-framed log record):
//!
//! * key: `canonical_len:u32le canonical_bytes question_bytes`
//! * value: JSON `{"status":"ok","verdict":"satisfiable","detail":[…]}`
//!
//! The store is single-writer; this wrapper adds the `Mutex` (poison-
//! recovering, like the cache shards: the store's own state is valid
//! after any panic that unwound through a lock hold).

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use cr_store::{PutOutcome, Store, Vfs};
use cr_trace::json::{self, write_escaped, Value};

use crate::cache::CachedVerdict;
use crate::protocol::Status;

/// What recovery found when the store was opened (surfaced by the CLI as
/// a boot diagnostic, and asserted by the crash-recovery CI job).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreRecovery {
    /// Intact records replayed.
    pub recovered_records: u64,
    /// Bytes discarded from a torn/corrupt tail.
    pub truncated_bytes: u64,
    /// Whether the file header was unrecognized and the log rebuilt.
    pub rebuilt: bool,
}

/// A mutex-wrapped verdict store plus its recovery report.
pub(crate) struct PersistentStore {
    store: Mutex<Store>,
    recovery: StoreRecovery,
}

impl PersistentStore {
    /// Opens (creating as needed) `dir/verdicts.log` on the real
    /// filesystem with the default compaction threshold.
    #[cfg(test)]
    pub(crate) fn open(dir: &Path) -> Result<PersistentStore, String> {
        PersistentStore::open_on(cr_store::std_vfs(), dir, None)
    }

    /// Opens against an explicit filesystem and optional compaction
    /// threshold (the simulation injects a virtual disk and a tiny
    /// threshold to force compaction-triggered epoch resets).
    pub(crate) fn open_on(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        compact_threshold: Option<u64>,
    ) -> Result<PersistentStore, String> {
        vfs.create_dir_all(dir)
            .map_err(|e| format!("cache-dir {}: {e}", dir.display()))?;
        let path = dir.join("verdicts.log");
        let threshold = compact_threshold.unwrap_or(cr_store::DEFAULT_COMPACT_THRESHOLD);
        let store = Store::open_on(vfs, &path, threshold)
            .map_err(|e| format!("store {}: {e}", path.display()))?;
        let stats = store.stats();
        Ok(PersistentStore {
            recovery: StoreRecovery {
                recovered_records: stats.recovered_records,
                truncated_bytes: stats.truncated_bytes,
                rebuilt: stats.rebuilt,
            },
            store: Mutex::new(store),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The recovery report from this open.
    pub(crate) fn recovery(&self) -> StoreRecovery {
        self.recovery
    }

    /// Live persisted verdicts.
    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }

    /// Looks up a persisted verdict.
    pub(crate) fn lookup(&self, canonical: &str, question: &str) -> Option<CachedVerdict> {
        let key = encode_key(canonical, question);
        let store = self.lock();
        decode_verdict(store.get(&key)?)
    }

    /// Durably records a verdict (append + fsync). The caller has already
    /// certified it — see the module docs.
    pub(crate) fn persist(
        &self,
        canonical: &str,
        question: &str,
        verdict: &CachedVerdict,
    ) -> io::Result<PutOutcome> {
        let key = encode_key(canonical, question);
        let value = encode_verdict(verdict);
        let mut store = self.lock();
        let outcome = store.put(&key, value.as_bytes())?;
        store.sync()?;
        Ok(outcome)
    }

    /// Forces buffered appends to disk (drain-time flush; appends already
    /// sync individually, so this is a belt-and-suspenders no-op unless a
    /// sync failed mid-run).
    pub(crate) fn flush(&self) -> io::Result<()> {
        self.lock().sync()
    }

    /// Forces a compaction regardless of the threshold (admin hook;
    /// the simulation uses it to exercise epoch-reset resyncs).
    pub(crate) fn compact(&self) -> io::Result<()> {
        self.lock().compact()
    }

    /// Current log length in bytes (replication position high-water mark).
    pub(crate) fn log_bytes(&self) -> u64 {
        self.lock().log_bytes()
    }

    /// Current log epoch (compaction count). Replication offsets are only
    /// comparable within one epoch: compaction rewrites the file.
    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch()
    }

    /// Reads up to `max_len` raw log bytes starting at `offset` for
    /// shipping to a standby; returns the bytes and the current log length.
    pub(crate) fn read_range(&self, offset: u64, max_len: usize) -> io::Result<(Vec<u8>, u64)> {
        self.lock().read_range(offset, max_len)
    }

    /// Decodes every persisted entry for boot-time cache rehydration.
    /// Entries that fail to decode (future formats) are skipped, not
    /// fatal.
    pub(crate) fn entries(&self) -> Vec<(String, String, CachedVerdict)> {
        let store = self.lock();
        let mut out = Vec::with_capacity(store.len());
        for (key, value) in store.iter() {
            let Some((canonical, question)) = decode_key(key) else {
                continue;
            };
            let Some(verdict) = decode_verdict(value) else {
                continue;
            };
            out.push((canonical.to_string(), question.to_string(), verdict));
        }
        out
    }
}

fn encode_key(canonical: &str, question: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(4 + canonical.len() + question.len());
    key.extend_from_slice(&(canonical.len() as u32).to_le_bytes());
    key.extend_from_slice(canonical.as_bytes());
    key.extend_from_slice(question.as_bytes());
    key
}

/// Splits a store key back into (canonical, question). Also used by the
/// standby to warm its cache from replicated log records.
pub(crate) fn decode_key(key: &[u8]) -> Option<(&str, &str)> {
    let clen = u32::from_le_bytes(key.get(0..4)?.try_into().ok()?) as usize;
    let canonical = std::str::from_utf8(key.get(4..4 + clen)?).ok()?;
    let question = std::str::from_utf8(key.get(4 + clen..)?).ok()?;
    Some((canonical, question))
}

fn encode_verdict(verdict: &CachedVerdict) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"status\":");
    write_escaped(&mut out, verdict.status.as_str());
    out.push_str(",\"verdict\":");
    write_escaped(&mut out, &verdict.verdict);
    out.push_str(",\"detail\":[");
    for (i, d) in verdict.detail.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, d);
    }
    out.push(']');
    if let Some(id) = &verdict.trace_id {
        out.push_str(",\"trace_id\":");
        write_escaped(&mut out, id);
    }
    out.push('}');
    out
}

/// Decodes a stored verdict value. Also used by the standby to warm its
/// cache from replicated log records.
pub(crate) fn decode_verdict(value: &[u8]) -> Option<CachedVerdict> {
    let text = std::str::from_utf8(value).ok()?;
    let v = json::parse(text).ok()?;
    let status = match v.get("status").and_then(Value::as_str)? {
        "ok" => Status::Ok,
        "negative" => Status::Negative,
        // Only conclusive verdicts are ever persisted; anything else is a
        // future format this build doesn't serve.
        _ => return None,
    };
    let verdict = v.get("verdict").and_then(Value::as_str)?.to_string();
    let mut detail = Vec::new();
    for d in v.get("detail").and_then(Value::as_arr)? {
        detail.push(d.as_str()?.to_string());
    }
    let trace_id = v
        .get("trace_id")
        .and_then(Value::as_str)
        .map(str::to_string);
    Some(CachedVerdict {
        status,
        verdict,
        detail,
        trace_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let h = tag.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let dir = std::env::temp_dir().join(format!("cr-server-persist-{tag}-{h:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn verdict(status: Status, verdict: &str, detail: &[&str]) -> CachedVerdict {
        CachedVerdict {
            status,
            verdict: verdict.to_string(),
            detail: detail.iter().map(|s| s.to_string()).collect(),
            trace_id: None,
        }
    }

    #[test]
    fn persisted_verdicts_survive_reopen() {
        let dir = tmp("reopen");
        let canonical = "class\tA\nclass\tB\n";
        {
            let store = PersistentStore::open(&dir).expect("open");
            store
                .persist(canonical, "check", &verdict(Status::Ok, "satisfiable", &[]))
                .expect("persist sat");
            store
                .persist(
                    canonical,
                    "implies q",
                    &verdict(Status::Negative, "unsatisfiable", &["B", "rel R"]),
                )
                .expect("persist unsat");
        }
        let store = PersistentStore::open(&dir).expect("reopen");
        assert_eq!(store.recovery().truncated_bytes, 0);
        assert_eq!(store.len(), 2);
        let sat = store.lookup(canonical, "check").expect("sat survives");
        assert_eq!(sat.status, Status::Ok);
        assert_eq!(sat.verdict, "satisfiable");
        let unsat = store
            .lookup(canonical, "implies q")
            .expect("unsat survives");
        assert_eq!(unsat.detail, vec!["B".to_string(), "rel R".to_string()]);
        assert_eq!(store.lookup(canonical, "other"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_roundtrip_for_rehydration() {
        let dir = tmp("entries");
        let store = PersistentStore::open(&dir).expect("open");
        store
            .persist("c1\n", "check", &verdict(Status::Ok, "satisfiable", &[]))
            .expect("persist");
        store
            .persist(
                "c2\n",
                "check",
                &verdict(Status::Negative, "unsatisfiable", &["X"]),
            )
            .expect("persist");
        let mut entries = store.entries();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "c1\n");
        assert_eq!(entries[0].1, "check");
        assert_eq!(entries[1].2.detail, vec!["X".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_id_rides_the_persisted_record() {
        let dir = tmp("traceid");
        let canonical = "class A;\n";
        let id = "00112233445566778899aabbccddeeff";
        {
            let store = PersistentStore::open(&dir).expect("open");
            let mut v = verdict(Status::Ok, "satisfiable", &[]);
            v.trace_id = Some(id.to_string());
            store.persist(canonical, "check", &v).expect("persist");
        }
        // Survives a reopen: the id is in the record bytes, not memory.
        let store = PersistentStore::open(&dir).expect("reopen");
        let got = store.lookup(canonical, "check").expect("lookup");
        assert_eq!(got.trace_id.as_deref(), Some(id));
        // Pre-trace records (no trace_id key) still decode.
        assert_eq!(
            decode_verdict(br#"{"status":"ok","verdict":"satisfiable","detail":[]}"#)
                .expect("legacy record decodes")
                .trace_id,
            None
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_drops_only_the_last_verdict() {
        let dir = tmp("torn");
        {
            let store = PersistentStore::open(&dir).expect("open");
            for i in 0..4 {
                store
                    .persist(
                        &format!("schema-{i}\n"),
                        "check",
                        &verdict(Status::Ok, "satisfiable", &[]),
                    )
                    .expect("persist");
            }
        }
        let path = dir.join("verdicts.log");
        let image = std::fs::read(&path).expect("read log");
        std::fs::write(&path, &image[..image.len() - 3]).expect("tear tail");

        let store = PersistentStore::open(&dir).expect("recover");
        assert!(store.recovery().truncated_bytes > 0);
        assert_eq!(store.len(), 3, "exactly the torn record is lost");
        for i in 0..3 {
            assert!(store.lookup(&format!("schema-{i}\n"), "check").is_some());
        }
        assert_eq!(store.lookup("schema-3\n", "check"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
