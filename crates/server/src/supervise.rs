//! Worker supervision: wedge detection for in-flight requests and
//! quarantine of poison (crash-looping) schemas.
//!
//! Two registries, both consulted by the supervisor thread the server
//! runs alongside its worker pool:
//!
//! * [`InflightRegistry`] — every `check`/`implies` request registers its
//!   per-request [`CancelToken`] on pickup. A request that declared a
//!   deadline gets a *wedge time*: deadline + grace. If it is still
//!   running past that, the supervisor trips its token — the budget
//!   governor then surfaces an honest `budget-exceeded`, never a wrong
//!   verdict. Requests without a deadline are never wedge-tripped: from
//!   outside, a legitimate EXPTIME run and a wedge are indistinguishable,
//!   and only the client knows how long it is willing to wait.
//! * [`PoisonTracker`] — schemas (by canonical hash) whose evaluation has
//!   *panicked* repeatedly are quarantined: further requests for them get
//!   an immediate error instead of crash-looping a worker. Panics, not
//!   budget trips — a slow schema is the workload, a panicking one is a
//!   bug being retried forever.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::Duration;

use cr_core::budget::CancelToken;
use cr_core::Clock;

/// Pipeline panics for one schema before it is quarantined.
pub const POISON_THRESHOLD: u32 = 3;

/// Extra time past a request's declared deadline before the supervisor
/// calls it wedged and trips its cancel token. Generous on purpose: the
/// budget governor should normally win this race; the supervisor is the
/// backstop for a worker stuck somewhere the governor is not consulted.
pub const WEDGE_GRACE: Duration = Duration::from_millis(1000);

struct InflightEntry {
    cancel: CancelToken,
    /// Clock reading past which the supervisor may declare this request
    /// wedged (requests without a deadline have none and are never
    /// tripped).
    wedge_at: Option<Duration>,
}

/// Registry of currently-executing requests, keyed by a server-assigned
/// sequence number. Wedge timers read the injected [`Clock`] so they run
/// on virtual time under deterministic simulation.
#[derive(Default)]
pub struct InflightRegistry {
    clock: Clock,
    inner: Mutex<HashMap<u64, InflightEntry>>,
}

impl InflightRegistry {
    /// A registry whose wedge timers read `clock`.
    pub fn with_clock(clock: Clock) -> InflightRegistry {
        InflightRegistry {
            clock,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a picked-up request. `deadline_left` is what remains of
    /// its declared deadline (None = no deadline, never wedge-tripped).
    pub fn register(&self, seq: u64, cancel: CancelToken, deadline_left: Option<Duration>) {
        let entry = InflightEntry {
            cancel,
            wedge_at: deadline_left.map(|d| self.clock.now().saturating_add(d + WEDGE_GRACE)),
        };
        self.lock().insert(seq, entry);
    }

    /// Removes a finished request.
    pub fn deregister(&self, seq: u64) {
        self.lock().remove(&seq);
    }

    /// Trips the cancel token of every request past its wedge time;
    /// returns how many were tripped. Tripped entries stay registered
    /// (the worker is still on them) but are not tripped twice.
    pub fn trip_wedged(&self) -> u64 {
        let now = self.clock.now();
        let mut tripped = 0;
        for entry in self.lock().values_mut() {
            if let Some(at) = entry.wedge_at {
                if now >= at && !entry.cancel.is_cancelled() {
                    entry.cancel.cancel();
                    tripped += 1;
                }
            }
        }
        tripped
    }

    /// Trips every in-flight request's token (drain/shutdown path).
    pub fn cancel_all(&self) -> u64 {
        let mut tripped = 0;
        for entry in self.lock().values() {
            if !entry.cancel.is_cancelled() {
                entry.cancel.cancel();
                tripped += 1;
            }
        }
        tripped
    }

    /// Currently registered requests (stats surface).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no request is executing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, InflightEntry>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Tracks schemas whose evaluation panics, quarantining repeat offenders
/// by canonical hash.
#[derive(Default)]
pub struct PoisonTracker {
    inner: Mutex<PoisonState>,
}

#[derive(Default)]
struct PoisonState {
    crashes: HashMap<u128, u32>,
    quarantined: HashSet<u128>,
}

impl PoisonTracker {
    /// Records one pipeline panic for `schema_hash`; returns true when
    /// this crossing quarantined the schema.
    pub fn note_crash(&self, schema_hash: u128) -> bool {
        let mut state = self.lock();
        let count = state.crashes.entry(schema_hash).or_insert(0);
        *count += 1;
        if *count >= POISON_THRESHOLD && !state.quarantined.contains(&schema_hash) {
            state.quarantined.insert(schema_hash);
            return true;
        }
        false
    }

    /// True when `schema_hash` is quarantined: reject it up front instead
    /// of handing it to a worker again.
    pub fn is_quarantined(&self, schema_hash: u128) -> bool {
        self.lock().quarantined.contains(&schema_hash)
    }

    /// Quarantined schemas so far (stats surface).
    pub fn quarantined_count(&self) -> usize {
        self.lock().quarantined.len()
    }

    /// The quarantined canonical hashes, sorted (the `/statusz`
    /// quarantine list — operators need *which* schemas are poisoned,
    /// not just how many).
    pub fn quarantined_hashes(&self) -> Vec<u128> {
        let mut hashes: Vec<u128> = self.lock().quarantined.iter().copied().collect();
        hashes.sort_unstable();
        hashes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoisonState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wedge_trips_only_past_deadline_plus_grace() {
        let reg = InflightRegistry::default();
        let with_deadline = CancelToken::new();
        let without = CancelToken::new();
        // Already past its wedge time: deadline_left of zero plus a grace
        // we can't wait out in a test — register with a tiny negative-ish
        // remainder by using Duration::ZERO and checking after grace.
        reg.register(1, with_deadline.clone(), Some(Duration::ZERO));
        reg.register(2, without.clone(), None);
        assert_eq!(reg.trip_wedged(), 0, "grace must hold first");
        std::thread::sleep(WEDGE_GRACE + Duration::from_millis(50));
        assert_eq!(reg.trip_wedged(), 1);
        assert!(with_deadline.is_cancelled());
        assert!(
            !without.is_cancelled(),
            "no deadline means never wedge-tripped"
        );
        // Idempotent: an already-tripped entry is not counted again.
        assert_eq!(reg.trip_wedged(), 0);
        reg.deregister(1);
        reg.deregister(2);
        assert!(reg.is_empty());
    }

    #[test]
    fn cancel_all_trips_everything_once() {
        let reg = InflightRegistry::default();
        let a = CancelToken::new();
        let b = CancelToken::new();
        reg.register(1, a.clone(), None);
        reg.register(2, b.clone(), Some(Duration::from_secs(60)));
        assert_eq!(reg.cancel_all(), 2);
        assert!(a.is_cancelled() && b.is_cancelled());
        assert_eq!(reg.cancel_all(), 0);
    }

    #[test]
    fn poison_quarantines_on_the_threshold_crossing() {
        let tracker = PoisonTracker::default();
        let hash = 0xfeed_beefu128;
        for _ in 0..POISON_THRESHOLD - 1 {
            assert!(!tracker.note_crash(hash));
            assert!(!tracker.is_quarantined(hash));
        }
        assert!(tracker.note_crash(hash), "threshold crossing quarantines");
        assert!(tracker.is_quarantined(hash));
        // Further crashes don't re-announce the quarantine.
        assert!(!tracker.note_crash(hash));
        assert_eq!(tracker.quarantined_count(), 1);
        assert_eq!(tracker.quarantined_hashes(), vec![hash]);
        assert!(!tracker.is_quarantined(0x0dd_ba11));
    }
}
